//! Frequency assignment — the paper's motivating application.
//!
//! Transmitters in a dense urban cell are 'very close' (graph-adjacent:
//! frequencies ≥ 2 apart) or 'close' (distance 2: frequencies must differ).
//! We synthesize a dense transmitter network (diameter 2), assign
//! frequencies with the TSP pipeline, and compare channel usage across
//! solvers and against the greedy assignment a naive planner would use.
//!
//! Run with: `cargo run --release --example frequency_assignment`

use dclab::core::solver::solve_heuristic_with;
use dclab::prelude::*;
use dclab::tsp::driver::HeuristicConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    let p = PVec::l21();

    println!("=== frequency assignment on synthetic transmitter networks ===\n");
    println!(
        "{:>5} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "n", "m", "exact", "approx", "chainedLK", "greedy"
    );

    for n in [8usize, 12, 16, 20] {
        // Urban cell: dense random network, resampled to diameter ≤ 2.
        let g = dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, n, 0.55, 2);
        let exact = solve_exact(&g, &p).expect("diameter-2 instance");
        let approx = solve_approx15(&g, &p).unwrap();
        let heur = solve_heuristic(&g, &p).unwrap();
        let greedy = solve_greedy(&g, &p);
        for sol in [&exact, &approx, &heur, &greedy] {
            assert!(sol.labeling.validate(&g, &p).is_ok(), "invalid assignment");
        }
        println!(
            "{:>5} {:>7} {:>9} {:>9} {:>9} {:>9}",
            n,
            g.m(),
            exact.span,
            approx.span,
            heur.span,
            greedy.span
        );
    }

    // A larger deployment where exact search is hopeless: heuristic only.
    println!("\nlarge deployment (exact intractable):");
    let g = dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, 300, 0.24, 2);
    let cfg = HeuristicConfig::default();
    let heur = solve_heuristic_with(&g, &p, &cfg).unwrap();
    let greedy = solve_greedy(&g, &p);
    assert!(heur.labeling.validate(&g, &p).is_ok());
    println!(
        "  n={} m={}: chained-LK span {} vs greedy span {} ({}% saved)",
        g.n(),
        g.m(),
        heur.span,
        greedy.span,
        (greedy.span.saturating_sub(heur.span)) * 100 / greedy.span.max(1)
    );
    println!("\nfrequencies are labels: channel count = span + 1");
}
