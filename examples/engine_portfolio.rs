//! The engine front door: one request API over every route, with `Auto`
//! portfolio dispatch, lower-bound certificates, and deterministic batch
//! fan-out.
//!
//! Run with: `cargo run --release --example engine_portfolio`

use dclab::prelude::*;

fn main() {
    // 1) One request, Auto dispatch: small diameter-2 instance → Held–Karp.
    let g = dclab::graph::generators::classic::petersen();
    let report = solve(&SolveRequest::new(g, PVec::l21())).expect("in scope");
    println!(
        "Petersen L(2,1): span {} via {} (optimal: {}, reduction computed {}×)",
        report.solution.span,
        report.strategy_used,
        report.optimal,
        report.stats.reductions_computed
    );

    // 2) Past the exact guard: a benign 30-vertex multipartite instance.
    //    Auto picks the Corollary 2 PIP route and still proves optimality.
    let g = dclab::graph::generators::classic::complete_multipartite(&[10, 8, 7, 5]);
    let report = solve(&SolveRequest::new(g, PVec::l21())).expect("in scope");
    println!(
        "K(10,8,7,5) L(2,1): span {} via {} (lower bound {})",
        report.solution.span, report.strategy_used, report.lower_bound
    );
    for note in &report.stats.notes {
        println!("  note: {note}");
    }

    // 3) Explicit strategy + budget control.
    let g = dclab::graph::generators::classic::petersen();
    let tight = SolveRequest::new(g, PVec::l21())
        .with_strategy(Strategy::BranchBound)
        .with_budget(Budget {
            node_budget: Some(3),
            ..Budget::default()
        });
    match solve(&tight) {
        Err(EngineError::Guard(e)) => println!("tight budget refused as expected: {e}"),
        other => println!("unexpected: {other:?}"),
    }

    // 4) Batch fan-out: deterministic reports regardless of DCLAB_THREADS.
    let requests: Vec<SolveRequest> = (4..12)
        .map(|n| SolveRequest::new(dclab::graph::generators::classic::complete(n), PVec::l21()))
        .collect();
    let reports = solve_batch(&requests);
    println!("batch of {} complete graphs:", reports.len());
    for (n, r) in (4..12).zip(&reports) {
        let r = r.as_ref().expect("complete graphs are in scope");
        println!(
            "  K{n}: span {} ({}, json: {} bytes)",
            r.solution.span,
            r.strategy_used,
            r.to_json().len()
        );
    }
}
