//! Optimality certificates at scale.
//!
//! Beyond n ≈ 24 the exact Held–Karp route is out of reach, but the
//! reduction still pays off twice: chained-LK produces a labeling, and the
//! TSP lower-bound machinery (chain / degree / MST / Held–Karp 1-tree
//! ascent) produces a certificate of how far from optimal it can be. On
//! most diameter-2 instances the two meet: the heuristic solution is
//! *provably* optimal with no exact search at all.
//!
//! Run with: `cargo run --release --example certificates`

use dclab::core::bounds::{chain_bound, degree_bound, held_karp_bound, mst_bound};
use dclab::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7_777);
    let p = PVec::l21();

    println!("heuristic span vs lower-bound ladder, L(2,1) on diameter-2 graphs\n");
    println!(
        "{:>6} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>9} {:>10}",
        "n", "m", "chain", "degree", "MST", "HK1tree", "heuristic", "certified"
    );

    for n in [50usize, 120, 250, 500] {
        let density = (2.8 * (n as f64).ln() / n as f64).sqrt().min(0.6);
        let g =
            dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, n, density, 2);
        let heur = solve_heuristic(&g, &p).expect("diameter-2 instance");
        assert!(heur.labeling.validate(&g, &p).is_ok());

        let chain = chain_bound(&g, &p).unwrap();
        let degree = degree_bound(&g, &p);
        let mst = mst_bound(&g, &p).unwrap();
        let hk = held_karp_bound(&g, &p, 100).unwrap();
        let best_lb = chain.max(degree).max(mst).max(hk);
        let certified = if heur.span == best_lb {
            "OPTIMAL".to_string()
        } else {
            format!(
                "≤{}·opt",
                (heur.span as f64 / best_lb as f64 * 100.0).round() / 100.0
            )
        };
        println!(
            "{:>6} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>9} {:>10}",
            n,
            g.m(),
            chain,
            degree,
            mst,
            hk,
            heur.span,
            certified
        );
    }

    // A structured family where the chain bound is NOT tight: unbalanced
    // complete multipartite (the optimum needs t-1 expensive crossings the
    // chain bound cannot see; the MST bound recovers them exactly).
    println!("\nunbalanced multipartite (chain bound loose, MST bound exact):");
    for parts in [vec![40usize, 20, 10, 5, 5], vec![2; 60]] {
        let g = dclab::graph::generators::classic::complete_multipartite(&parts);
        let n = g.n() as u64;
        let t = parts.len() as u64;
        let optimal = (n - 1) + (t - 1); // Corollary 2 closed form
        let heur = solve_heuristic(&g, &p).unwrap();
        let chain = chain_bound(&g, &p).unwrap();
        let mst = mst_bound(&g, &p).unwrap();
        println!(
            "  {} parts, n={}: optimal {}, heuristic {}, chain bound {}, MST bound {}",
            parts.len(),
            n,
            optimal,
            heur.span,
            chain,
            mst
        );
        assert!(mst <= optimal && heur.span >= optimal);
    }
    println!("\nthe MST bound recovers the crossing costs the chain bound misses.");
}
