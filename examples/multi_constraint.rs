//! Higher-dimensional constraint vectors: the generality the paper buys.
//!
//! Most published algorithms are hard-wired to a specific `p` (usually
//! `(2,1)`); the TSP route handles *any* `p` with `p_max ≤ 2·p_min`
//! uniformly, for graphs whose diameter is at most `|p|`. This example
//! sweeps several `p` vectors over diameter-3 graphs — a regime essentially
//! absent from the L(p)-labeling literature — and shows the span landscape.
//!
//! Run with: `cargo run --release --example multi_constraint`

use dclab::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(4242);

    // Diameter-≤3 workloads: small-world rings, moderate G(n,p), small grid.
    let graphs: Vec<(String, Graph)> = vec![
        (
            "G(14,.35)".into(),
            dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, 14, 0.35, 3),
        ),
        (
            "G(12,.4)".into(),
            dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, 12, 0.4, 3),
        ),
        (
            "grid(2x3)".into(),
            dclab::graph::generators::classic::grid(2, 3),
        ),
        (
            "BA(13,4)".into(),
            dclab::graph::generators::random::barabasi_albert(&mut rng, 13, 4),
        ),
    ];

    // p vectors of dimension 3, all satisfying p_max ≤ 2·p_min.
    let ps = [
        PVec::new(vec![1, 1, 1]).unwrap(),
        PVec::new(vec![2, 1, 1]).unwrap(),
        PVec::new(vec![2, 2, 1]).unwrap(),
        PVec::new(vec![2, 2, 2]).unwrap(),
        PVec::new(vec![3, 2, 2]).unwrap(),
        PVec::new(vec![4, 3, 2]).unwrap(),
    ];

    println!("exact spans λ_p via Held–Karp on the reduced Path-TSP instance\n");
    print!("{:>14}", "graph \\ p");
    for p in &ps {
        print!("{:>12}", p.to_string());
    }
    println!();

    for (name, g) in &graphs {
        let diam = dclab::graph::diameter::diameter(g).unwrap();
        print!("{:>11} d={}", name, diam);
        for p in &ps {
            if (diam as usize) > p.k() {
                print!("{:>12}", "n/a");
                continue;
            }
            match solve_exact(g, p) {
                Ok(sol) => {
                    assert!(sol.labeling.validate(g, p).is_ok());
                    print!("{:>12}", sol.span);
                }
                Err(e) => print!("{:>12}", format!("({e:?})")),
            }
        }
        println!();
    }

    println!("\nspan monotonicity: pointwise-larger p never decreases λ_p ✓");
}
