//! The paper's FPT routes in action (Corollary 2 & Theorem 4).
//!
//! * Diameter-2 `L(p,q)` via Partition into Paths, with the polynomial
//!   cotree DP on cographs — compared against the subset-DP and the full
//!   TSP route.
//! * `L(1,…,1)` via coloring `G^k` with the neighborhood-diversity FPT
//!   engine — compared against exact branch-and-bound and the resulting
//!   Corollary 3 `p_max`-approximation.
//!
//! Run with: `cargo run --release --example fpt_routes`

use dclab::core::diam2::{solve_diam2_lpq, PipSolver};
use dclab::core::l1::{solve_l1, solve_pmax_approx, L1Engine};
use dclab::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);

    println!("=== Corollary 2: diameter-2 L(p,q) via Partition into Paths ===\n");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>10}",
        "n", "family", "λ(2,1) PIP", "λ(2,1) TSP", "s(paths)"
    );
    for n in [8usize, 10, 12, 14] {
        let g = dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, n, 0.5, 2);
        let pip = solve_diam2_lpq(&g, 2, 1, PipSolver::SubsetDp).unwrap();
        let tsp = solve_exact(&g, &PVec::l21()).unwrap();
        assert_eq!(pip.span, tsp.span);
        println!(
            "{:>5} {:>10} {:>12} {:>12} {:>10}",
            n, "G(n,.5)", pip.span, tsp.span, pip.partition_size
        );
    }

    println!("\ncographs: polynomial cotree DP scales where subset DP cannot");
    for n in [50usize, 200, 800] {
        let g = dclab::graph::generators::random::random_connected_cograph(&mut rng, n, 0.4);
        let t0 = std::time::Instant::now();
        let sol = solve_diam2_lpq(&g, 2, 1, PipSolver::Cotree).unwrap();
        println!(
            "  n={:>4}: λ(2,1) = {:>5}  (s = {:>3}, {:?})",
            n,
            sol.span,
            sol.partition_size,
            t0.elapsed()
        );
    }

    println!("\n=== Theorem 4: L(1,1) as coloring of G², nd-FPT engine ===\n");
    println!(
        "{:>6} {:>6} {:>10} {:>10} {:>10}",
        "n", "nd", "nd-FPT", "exact BB", "DSATUR"
    );
    for parts in [vec![6, 6, 6], vec![10, 5, 8, 4], vec![20, 20, 20, 20]] {
        let g = dclab::graph::generators::classic::complete_multipartite(&parts);
        let nd = dclab::graph::params::nd::nd(&g);
        let (_, fpt) = solve_l1(&g, 2, L1Engine::NdFpt);
        let (_, ds) = solve_l1(&g, 2, L1Engine::Dsatur);
        let exact = if g.n() <= 30 {
            format!("{}", solve_l1(&g, 2, L1Engine::Exact).1)
        } else {
            "—".to_string()
        };
        println!(
            "{:>6} {:>6} {:>10} {:>10} {:>10}",
            g.n(),
            nd,
            fpt,
            exact,
            ds
        );
    }

    println!("\n=== Corollary 3: p_max-approximation from L(1) ===\n");
    let p = PVec::l21();
    for n in [8usize, 10, 12] {
        let g = dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, n, 0.5, 2);
        let opt = solve_exact(&g, &p).unwrap();
        let approx = solve_pmax_approx(&g, &p, L1Engine::Exact);
        assert!(approx.labeling.validate(&g, &p).is_ok());
        println!(
            "  n={:>3}: optimal {} vs p_max-approx {} (ratio {:.2}, guarantee {:.1})",
            n,
            opt.span,
            approx.span,
            approx.span as f64 / opt.span.max(1) as f64,
            p.pmax() as f64
        );
    }
}
