//! Quickstart: label a small-diameter graph with L(2,1) via the TSP
//! reduction, three ways (exact / 1.5-approx / heuristic), and verify.
//!
//! Run with: `cargo run --release --example quickstart`

use dclab::core::reduction::labeling_from_order;
use dclab::prelude::*;

fn main() {
    // The Petersen graph: 10 vertices, 3-regular, diameter 2 — squarely in
    // Theorem 2's scope for p = (2, 1).
    let g = dclab::graph::generators::classic::petersen();
    let p = PVec::l21();
    println!(
        "graph: Petersen (n={}, m={}), constraint: {p}",
        g.n(),
        g.m()
    );

    // 1) The reduction itself (Theorem 2): a complete weighted graph H.
    let reduced = reduce_to_path_tsp(&g, &p).expect("Petersen is eligible");
    println!(
        "reduced to Path TSP on {} cities; metric: {}",
        reduced.tsp.n(),
        reduced.tsp.is_metric()
    );

    // 2) Exact optimum via Held–Karp (Corollary 1).
    let exact = solve_exact(&g, &p).expect("within exact size guard");
    println!("exact span (Held–Karp):        λ = {}", exact.span);
    assert!(exact.labeling.validate(&g, &p).is_ok());

    // 3) Polynomial 1.5-approximation (Christofides/Hoogeveen).
    let approx = solve_approx15(&g, &p).expect("eligible");
    println!("1.5-approximation:             λ ≤ {}", approx.span);
    assert!(approx.labeling.validate(&g, &p).is_ok());
    assert!(2 * approx.span <= 3 * exact.span);

    // 4) Practical heuristic (chained Lin–Kernighan-style, parallel).
    let heur = solve_heuristic(&g, &p).expect("eligible");
    println!("chained-LK heuristic:          λ ≤ {}", heur.span);
    assert!(heur.labeling.validate(&g, &p).is_ok());

    // 5) Greedy baseline for contrast (no reduction).
    let greedy = solve_greedy(&g, &p);
    println!("greedy first-fit baseline:     λ ≤ {}", greedy.span);

    // The optimal labeling, vertex by vertex.
    println!("\noptimal labeling (span {}):", exact.span);
    for v in 0..g.n() {
        println!("  vertex {v}: label {}", exact.labeling.label(v));
    }

    // Recover the same labeling manually from the TSP path (Claim 1).
    let manual = labeling_from_order(&reduced, &exact.order);
    assert_eq!(manual.span(), exact.span);
    println!("\nClaim 1 prefix-sum recovery matches: ✓");
}
