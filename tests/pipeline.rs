//! End-to-end integration tests across all workspace crates:
//! generators → reduction → TSP solvers → labeling recovery → validation.

use dclab::core::baseline::exact::exact_labeling_bruteforce;
use dclab::core::diam2::{solve_diam2_lpq, PipSolver};
use dclab::core::l1::{solve_l1, L1Engine};
use dclab::core::solver::SolveError;
use dclab::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn diam2_graph(rng: &mut StdRng, n: usize) -> Graph {
    dclab::graph::generators::random::gnp_with_diameter_at_most(rng, n, 0.5, 2)
}

#[test]
fn full_pipeline_agreement_ladder() {
    // exact == independent oracle ≤ approx ≤ 1.5·exact; heuristic ≥ exact;
    // all labelings valid.
    let mut rng = StdRng::seed_from_u64(1001);
    for trial in 0..8 {
        let g = diam2_graph(&mut rng, 9);
        for p in [PVec::l21(), PVec::lpq(3, 2).unwrap(), PVec::ones(2)] {
            let exact = solve_exact(&g, &p).unwrap();
            let (_, oracle) = exact_labeling_bruteforce(&g, &p);
            assert_eq!(exact.span, oracle, "trial={trial} {p}");
            let approx = solve_approx15(&g, &p).unwrap();
            let heur = solve_heuristic(&g, &p).unwrap();
            let greedy = solve_greedy(&g, &p);
            for sol in [&exact, &approx, &heur, &greedy] {
                assert!(sol.labeling.validate(&g, &p).is_ok());
                assert_eq!(sol.labeling.span(), sol.span);
            }
            assert!(exact.span <= approx.span && 2 * approx.span <= 3 * exact.span);
            assert!(exact.span <= heur.span);
            assert!(exact.span <= greedy.span);
        }
    }
}

#[test]
fn reduction_span_invariant_under_relabeling() {
    let mut rng = StdRng::seed_from_u64(1002);
    for _ in 0..6 {
        let g = diam2_graph(&mut rng, 10);
        let perm = dclab::graph::generators::random::random_permutation(&mut rng, 10);
        let h = g.relabeled(&perm);
        let p = PVec::l21();
        assert_eq!(
            solve_exact(&g, &p).unwrap().span,
            solve_exact(&h, &p).unwrap().span
        );
    }
}

#[test]
fn diam2_pip_and_tsp_routes_agree_both_orders() {
    let mut rng = StdRng::seed_from_u64(1003);
    for _ in 0..6 {
        let g = diam2_graph(&mut rng, 10);
        // p ≤ q and p > q (both smooth).
        for (p, q) in [(1u64, 2u64), (2, 1), (2, 2), (3, 2), (2, 3), (4, 4)] {
            let pv = PVec::lpq(p, q).unwrap();
            if !pv.is_smooth() {
                continue;
            }
            let tsp = solve_exact(&g, &pv).unwrap();
            let pip = solve_diam2_lpq(&g, p, q, PipSolver::SubsetDp).unwrap();
            assert_eq!(tsp.span, pip.span, "p={p} q={q}");
        }
    }
}

#[test]
fn l1_route_agrees_with_tsp_route_on_diam2() {
    // L(1,1) on diameter-2 graphs: coloring of G² == TSP reduction.
    let mut rng = StdRng::seed_from_u64(1004);
    for _ in 0..6 {
        let g = diam2_graph(&mut rng, 9);
        let p = PVec::ones(2);
        let via_tsp = solve_exact(&g, &p).unwrap();
        let (_, via_coloring) = solve_l1(&g, 2, L1Engine::Exact);
        let (_, via_nd) = solve_l1(&g, 2, L1Engine::NdFpt);
        assert_eq!(via_tsp.span, via_coloring);
        assert_eq!(via_tsp.span, via_nd);
    }
}

#[test]
fn error_paths_are_reported() {
    let p = PVec::l21();
    // Disconnected.
    let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
    assert!(matches!(solve_exact(&g, &p), Err(SolveError::Reduction(_))));
    // Diameter too large.
    let path = dclab::graph::generators::classic::path(6);
    assert!(matches!(
        solve_exact(&path, &p),
        Err(SolveError::Reduction(_))
    ));
    // Non-smooth p.
    let star = dclab::graph::generators::classic::star(5);
    let bad_p = PVec::lpq(7, 1).unwrap();
    assert!(matches!(
        solve_exact(&star, &bad_p),
        Err(SolveError::Reduction(_))
    ));
}

#[test]
fn scaling_identity_lambda_cp_equals_c_lambda_p() {
    // λ_{c·p} = c·λ_p (used by Corollary 3's proof).
    let mut rng = StdRng::seed_from_u64(1005);
    for _ in 0..5 {
        let g = diam2_graph(&mut rng, 8);
        let p = PVec::l21();
        let base = solve_exact(&g, &p).unwrap().span;
        for c in [2u64, 3, 5] {
            let scaled = p.scaled(c).unwrap();
            let got = solve_exact(&g, &scaled).unwrap().span;
            assert_eq!(got, c * base, "c={c}");
        }
    }
}

#[test]
fn heuristic_solves_sizes_exact_cannot() {
    let mut rng = StdRng::seed_from_u64(1006);
    let g = dclab::graph::generators::random::gnp_with_diameter_at_most(&mut rng, 120, 0.35, 2);
    let p = PVec::l21();
    assert!(matches!(
        solve_exact(&g, &p),
        Err(SolveError::TooLargeForExact { .. })
    ));
    let heur = solve_heuristic(&g, &p).unwrap();
    assert!(heur.labeling.validate(&g, &p).is_ok());
    // Lower bound: (n-1)·p_min.
    assert!(heur.span >= (g.n() as u64 - 1) * p.pmin());
}

#[test]
fn all_p_dimensions_work_when_diameter_allows() {
    let mut rng = StdRng::seed_from_u64(1007);
    // Watts-Strogatz with diameter ≤ 4, k = 4 constraint vectors.
    for _ in 0..3 {
        let g = dclab::graph::generators::random::watts_strogatz(&mut rng, 13, 4, 0.3);
        let diam = match dclab::graph::diameter::diameter(&g) {
            Some(d) => d,
            None => continue,
        };
        let p = PVec::new(vec![2; diam as usize]).unwrap();
        let sol = solve_exact(&g, &p).unwrap();
        assert!(sol.labeling.validate(&g, &p).is_ok());
        // All-equal p: λ = 2·(n-1) exactly (every step costs 2).
        assert_eq!(sol.span, 2 * (g.n() as u64 - 1));
    }
}
