//! Property-based test suites (proptest) over the core invariants of the
//! paper and the substrates.

use dclab::core::reduction::{reduce_to_path_tsp, reduce_unchecked, span_for_permutation};
use dclab::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random connected graph from a seed (proptest shrinks over the seed and
/// size, which is good enough for graph-shaped inputs).
fn connected_graph(seed: u64, n: usize, density: f64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    dclab::graph::generators::random::connected_gnp(&mut rng, n, density.max(0.45))
}

fn smooth_pvec(raw: (u64, u64, u64)) -> PVec {
    // Force p_max ≤ 2·p_min by clamping entries into [base, 2·base].
    let base = 1 + raw.0 % 4;
    let e2 = base + raw.1 % (base + 1);
    let e3 = base + raw.2 % (base + 1);
    PVec::new(vec![e2.min(2 * base), e3.min(2 * base), base]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The reduced instance is metric whenever p is smooth (Theorem 2's
    /// triangle-inequality argument).
    #[test]
    fn reduced_instance_is_metric(seed in any::<u64>(), raw in any::<(u64, u64, u64)>()) {
        let g = connected_graph(seed, 8, 0.5);
        let p = smooth_pvec(raw);
        prop_assume!(dclab::graph::diameter::diameter(&g).unwrap() as usize <= p.k());
        let r = reduce_to_path_tsp(&g, &p).unwrap();
        prop_assert!(r.tsp.is_metric());
        if let Some((min, max)) = r.tsp.weight_range() {
            prop_assert!(min >= p.pmin() && max <= 2 * p.pmin());
        }
    }

    /// Claim 1: for ANY permutation π, the minimal span of a labeling
    /// sorted by π equals the weight of the Hamiltonian path π in H.
    /// The left side is computed with the full max-over-predecessors
    /// formula, independent of Claim 1's telescoping argument.
    #[test]
    fn claim1_per_permutation(seed in any::<u64>(), perm_seed in any::<u64>()) {
        let g = connected_graph(seed, 8, 0.5);
        let p = PVec::l21();
        prop_assume!(dclab::graph::diameter::diameter(&g).unwrap() as usize <= p.k());
        let r = reduce_to_path_tsp(&g, &p).unwrap();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        let perm: Vec<u32> = dclab::graph::generators::random::random_permutation(&mut rng, 8)
            .into_iter().map(|v| v as u32).collect();
        // Independent computation of λ_p(G, π).
        let dist = dclab::graph::DistanceMatrix::compute(&g);
        let mut labels = [0u64; 8];
        let mut span = 0u64;
        for (i, &vi) in perm.iter().enumerate() {
            let mut l = 0u64;
            for &vj in &perm[..i] {
                let d = dist.get(vj as usize, vi as usize);
                l = l.max(labels[vj as usize] + p.at_distance(d));
            }
            labels[vi as usize] = l;
            span = span.max(l);
        }
        prop_assert_eq!(span, span_for_permutation(&r, &perm));
    }

    /// Without smoothness, the Path-TSP optimum is still a lower bound on
    /// the true span.
    #[test]
    fn tsp_lower_bounds_span_without_smoothness(seed in any::<u64>(), big in 3u64..9) {
        let g = connected_graph(seed, 7, 0.55);
        let p = PVec::lpq(big, 1).unwrap(); // non-smooth for big ≥ 3
        prop_assume!(dclab::graph::diameter::diameter(&g).unwrap() as usize <= p.k());
        let r = reduce_unchecked(&g, &p).unwrap();
        let (_, tsp_opt) = dclab::tsp::exact::held_karp_path(&r.tsp);
        let (_, true_opt) = dclab::core::baseline::exact::exact_labeling_bruteforce(&g, &p);
        prop_assert!(tsp_opt <= true_opt);
    }

    /// Span is monotone under pointwise-increasing p.
    #[test]
    fn span_monotone_in_p(seed in any::<u64>()) {
        let g = connected_graph(seed, 8, 0.5);
        prop_assume!(dclab::graph::diameter::diameter(&g) == Some(2));
        let small = PVec::lpq(2, 1).unwrap();
        let large = PVec::lpq(2, 2).unwrap();
        let a = solve_exact(&g, &small).unwrap().span;
        let b = solve_exact(&g, &large).unwrap().span;
        prop_assert!(a <= b);
    }

    /// Exact solver output always validates and is never beaten by any
    /// solver on the same instance.
    #[test]
    fn exact_is_floor(seed in any::<u64>()) {
        let g = connected_graph(seed, 9, 0.5);
        let p = PVec::l21();
        prop_assume!(dclab::graph::diameter::diameter(&g).unwrap() as usize <= p.k());
        let exact = solve_exact(&g, &p).unwrap();
        prop_assert!(exact.labeling.validate(&g, &p).is_ok());
        let heur = solve_heuristic(&g, &p).unwrap();
        let approx = solve_approx15(&g, &p).unwrap();
        prop_assert!(heur.span >= exact.span);
        prop_assert!(approx.span >= exact.span);
        prop_assert!(2 * approx.span <= 3 * exact.span);
    }

    /// Complement is an involution and partitions the edge set.
    #[test]
    fn complement_involution(seed in any::<u64>(), n in 2usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = dclab::graph::generators::random::gnp(&mut rng, n, 0.5);
        let c = dclab::graph::ops::complement(&g);
        prop_assert_eq!(g.m() + c.m(), n * (n - 1) / 2);
        prop_assert_eq!(dclab::graph::ops::complement(&c), g);
    }

    /// nd(G^k) never exceeds nd(G) (Fiala et al., cited in Theorem 4's
    /// proof), for connected G.
    #[test]
    fn nd_of_power_does_not_grow(seed in any::<u64>(), k in 2u32..4) {
        let g = connected_graph(seed, 9, 0.5);
        let gk = dclab::graph::ops::power(&g, k);
        prop_assert!(
            dclab::graph::params::nd::nd(&gk) <= dclab::graph::params::nd::nd(&g)
        );
    }

    /// APSP matrices are symmetric with zero diagonal and obey the triangle
    /// inequality.
    #[test]
    fn apsp_valid(seed in any::<u64>(), n in 2usize..14) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = dclab::graph::generators::random::gnp(&mut rng, n, 0.4);
        let d = dclab::graph::DistanceMatrix::compute(&g);
        prop_assert!(d.validate().is_ok());
    }

    /// Labelings produced by every solver stay valid after normalization.
    #[test]
    fn normalization_preserves_validity(seed in any::<u64>()) {
        let g = connected_graph(seed, 8, 0.5);
        let p = PVec::l21();
        prop_assume!(dclab::graph::diameter::diameter(&g).unwrap() as usize <= p.k());
        let sol = solve_greedy(&g, &p);
        let norm = sol.labeling.normalized();
        prop_assert!(norm.validate(&g, &p).is_ok());
        prop_assert!(norm.span() <= sol.labeling.span());
    }

    /// Prop. 2 corollary on the nd side: nd(G²) ≤ nd(G) ≤ n, and the
    /// nd partition is a modular partition.
    #[test]
    fn nd_partition_is_modular(seed in any::<u64>(), n in 3usize..11) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = dclab::graph::generators::random::gnp(&mut rng, n, 0.5);
        let ndp = dclab::graph::params::nd::neighborhood_diversity(&g);
        prop_assert!(dclab::graph::params::modules::is_modular_partition(&g, &ndp.classes));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TSP local search invariants: tours stay permutations and weights
    /// only decrease, across 2-opt, Or-opt, and double-bridge kicks.
    #[test]
    fn localsearch_invariants(seed in any::<u64>(), n in 8usize..40) {
        use dclab::tsp::localsearch::{local_opt, LocalSearchConfig, TourState};
        use dclab::tsp::tour::{cycle_weight, is_permutation};
        let mut rng = StdRng::seed_from_u64(seed);
        let inst = dclab::tsp::TspInstance::from_fn(n, |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(2654435761).wrapping_add(b.wrapping_mul(40503)) ^ seed) % 500 + 1
        });
        let start = dclab::tsp::construct::nearest_neighbor(&inst, 0);
        let before = cycle_weight(&inst, &start);
        let mut state = TourState::new(start);
        let nl = inst.candidate_lists(8);
        let gain = local_opt(&inst, &mut state, &nl, &LocalSearchConfig::default());
        prop_assert!(is_permutation(n, &state.order));
        prop_assert_eq!(cycle_weight(&inst, &state.order) + gain, before);
        let kicked = dclab::tsp::lk::double_bridge(&state.order, &mut rng);
        prop_assert!(is_permutation(n, &kicked));
    }

    /// Matching backends agree on optimality for small even sets.
    #[test]
    fn matching_backends_agree(seed in any::<u64>(), half in 1usize..7) {
        use dclab::tsp::matching::*;
        let k = 2 * half;
        let w = move |a: usize, b: usize| {
            let (a, b) = (a.min(b) as u64, a.max(b) as u64);
            (a.wrapping_mul(7919).wrapping_add(b.wrapping_mul(104729)) ^ seed) % 300 + 1
        };
        let dp = exact_dp::min_weight_perfect_matching_dp(k, &w);
        let bl = blossom::min_weight_perfect_matching_blossom(k, &w);
        prop_assert!(is_perfect_matching(k, &dp));
        prop_assert!(is_perfect_matching(k, &bl));
        prop_assert_eq!(matching_weight(&dp, &w), matching_weight(&bl, &w));
    }
}
