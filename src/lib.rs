//! # dclab — Distance-Constrained Labeling via TSP
//!
//! Umbrella crate re-exporting the whole workspace: a faithful, from-scratch
//! reproduction of *"Solving Distance-constrained Labeling Problems for
//! Small Diameter Graphs via TSP"* (Hanaka, Ono, Sugiyama — IPDPS 2023).
//!
//! ```
//! use dclab::prelude::*;
//!
//! // A diameter-2 graph and the classic L(2,1) constraint vector.
//! let g = dclab::graph::generators::classic::petersen();
//! let p = PVec::new(vec![2, 1]).unwrap();
//!
//! // Theorem 2: reduce to Metric Path TSP and solve exactly (Held–Karp).
//! let solution = solve_exact(&g, &p).unwrap();
//! assert_eq!(solution.span, 9); // λ_{2,1}(Petersen) = 9
//! assert!(solution.labeling.validate(&g, &p).is_ok());
//! ```

pub use dclab_core as core;
pub use dclab_engine as engine;
pub use dclab_graph as graph;
pub use dclab_par as par;
pub use dclab_store as store;
pub use dclab_tsp as tsp;

/// Convenient glob-import surface for examples and downstream users.
pub mod prelude {
    pub use dclab_core::labeling::Labeling;
    pub use dclab_core::pvec::PVec;
    pub use dclab_core::reduction::reduce_to_path_tsp;
    pub use dclab_core::solver::{
        solve_approx15, solve_exact, solve_greedy, solve_heuristic, Solution,
    };
    pub use dclab_engine::{
        solve, solve_batch, Budget, EngineError, SolveReport, SolveRequest, Strategy,
    };
    pub use dclab_graph::Graph;
}
