//! End-to-end tests for the `dclab` binary: guard failures must exit
//! non-zero with the `GuardError` message on stderr, successes must print
//! a JSON `SolveReport`, and `--help` must document the thread precedence.

use std::path::PathBuf;
use std::process::{Command, Output};

use dclab_graph::generators::classic;
use dclab_graph::io as graph_io;

fn dclab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dclab"))
        .args(args)
        .output()
        .expect("run dclab binary")
}

/// Write an instance file under a test-unique temp directory.
fn write_instance(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dclab-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write instance");
    path
}

#[test]
fn oversized_exact_instance_fails_with_guard_error_on_stderr() {
    // n = 30 > EXACT_MAX_N with an explicit exact request → GuardError.
    let path = write_instance(
        "oversized.edges",
        &graph_io::write_edge_list(&classic::complete(30)),
    );
    let out = dclab(&["solve", path.to_str().unwrap(), "--strategy", "exact"]);
    assert!(!out.status.success(), "guard failure must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("exceeds the exact-solver guard"),
        "GuardError message surfaces on stderr, got: {stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "no report on stdout for a failed solve"
    );
}

#[test]
fn degenerate_instance_fails_with_reduction_error_on_stderr() {
    // Diameter > 2: the Theorem 2 reduction refuses the instance.
    let path = write_instance(
        "degenerate.edges",
        &graph_io::write_edge_list(&classic::path(9)),
    );
    let out = dclab(&["solve", path.to_str().unwrap(), "--strategy", "exact"]);
    assert!(!out.status.success(), "degenerate instance exits non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr explains: {stderr}");
}

#[test]
fn solve_succeeds_and_prints_json_report() {
    let path = write_instance(
        "petersen.edges",
        &graph_io::write_edge_list(&classic::petersen()),
    );
    let out = dclab(&["solve", path.to_str().unwrap(), "--p", "2,1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"span\":9"),
        "λ_2,1(Petersen) = 9: {stdout}"
    );
}

#[test]
fn threads_flag_accepted_and_zero_rejected() {
    let path = write_instance(
        "k5.edges",
        &graph_io::write_edge_list(&classic::complete(5)),
    );
    let ok = dclab(&["solve", path.to_str().unwrap(), "--threads", "2"]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let bad = dclab(&["solve", path.to_str().unwrap(), "--threads", "0"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--threads"));
}

#[test]
fn help_documents_thread_precedence_and_serve() {
    let out = dclab(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("--threads beats the DCLAB_THREADS"),
        "help states the precedence contract: {stdout}"
    );
    assert!(
        stdout.contains("dclab serve"),
        "help covers serve: {stdout}"
    );
}
