//! End-to-end tests for the `dclab` binary: guard failures must exit
//! non-zero with the `GuardError` message on stderr, successes must print
//! a JSON `SolveReport`, and `--help` must document the thread precedence.

use std::path::PathBuf;
use std::process::{Command, Output};

use dclab_graph::generators::classic;
use dclab_graph::io as graph_io;

fn dclab(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dclab"))
        .args(args)
        .output()
        .expect("run dclab binary")
}

/// Write an instance file under a test-unique temp directory.
fn write_instance(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dclab-cli-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write instance");
    path
}

#[test]
fn oversized_exact_instance_fails_with_guard_error_on_stderr() {
    // n = 30 > EXACT_MAX_N with an explicit exact request → GuardError.
    let path = write_instance(
        "oversized.edges",
        &graph_io::write_edge_list(&classic::complete(30)),
    );
    let out = dclab(&["solve", path.to_str().unwrap(), "--strategy", "exact"]);
    assert!(!out.status.success(), "guard failure must exit non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("exceeds the exact-solver guard"),
        "GuardError message surfaces on stderr, got: {stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "no report on stdout for a failed solve"
    );
}

#[test]
fn degenerate_instance_fails_with_reduction_error_on_stderr() {
    // Diameter > 2: the Theorem 2 reduction refuses the instance.
    let path = write_instance(
        "degenerate.edges",
        &graph_io::write_edge_list(&classic::path(9)),
    );
    let out = dclab(&["solve", path.to_str().unwrap(), "--strategy", "exact"]);
    assert!(!out.status.success(), "degenerate instance exits non-zero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error:"), "stderr explains: {stderr}");
}

#[test]
fn solve_succeeds_and_prints_json_report() {
    let path = write_instance(
        "petersen.edges",
        &graph_io::write_edge_list(&classic::petersen()),
    );
    let out = dclab(&["solve", path.to_str().unwrap(), "--p", "2,1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"span\":9"),
        "λ_2,1(Petersen) = 9: {stdout}"
    );
}

#[test]
fn threads_flag_accepted_and_zero_rejected() {
    let path = write_instance(
        "k5.edges",
        &graph_io::write_edge_list(&classic::complete(5)),
    );
    let ok = dclab(&["solve", path.to_str().unwrap(), "--threads", "2"]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let bad = dclab(&["solve", path.to_str().unwrap(), "--threads", "0"]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--threads"));
}

#[test]
fn help_documents_thread_precedence_and_serve() {
    let out = dclab(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("--threads beats the DCLAB_THREADS"),
        "help states the precedence contract: {stdout}"
    );
    assert!(
        stdout.contains("dclab serve"),
        "help covers serve: {stdout}"
    );
    assert!(stdout.contains("dclab gen"), "help covers gen: {stdout}");
    assert!(
        stdout.contains("--store"),
        "help covers the archive flags: {stdout}"
    );
}

/// A test-unique scratch directory.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dclab-cli-e2e-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn gen_writes_seeded_corpora_and_is_deterministic() {
    let dir = scratch("gen");
    let corpus = dir.join("corpus");
    let out = dclab(&[
        "gen",
        "gnp",
        "--n",
        "10",
        "--prob",
        "0.6",
        "--max-diameter",
        "2",
        "--seed",
        "11",
        "--count",
        "3",
        "--out",
        corpus.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut names: Vec<String> = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec!["gnp-s11-0.edges", "gnp-s11-1.edges", "gnp-s11-2.edges"]
    );
    // Single instance to stdout, deterministic under the seed.
    let a = dclab(&["gen", "tree", "--n", "9", "--seed", "4"]);
    let b = dclab(&["gen", "tree", "--n", "9", "--seed", "4"]);
    assert!(a.status.success());
    assert_eq!(a.stdout, b.stdout, "same seed → same bytes");
    assert_eq!(
        String::from_utf8_lossy(&a.stdout).lines().count(),
        9,
        "`n 9` header plus the 8 edges of a 9-vertex tree"
    );
    // DIMACS output honors --format.
    let d = dclab(&["gen", "petersen", "--format", "dimacs"]);
    assert!(String::from_utf8_lossy(&d.stdout).contains("p edge 10 15"));
    // Unknown family is a hard error.
    let bad = dclab(&["gen", "frobnicate"]);
    assert!(!bad.status.success());
}

#[test]
fn solve_and_batch_populate_and_reuse_the_same_archive() {
    let dir = scratch("store");
    let corpus = dir.join("corpus");
    let archive = dir.join("archive.dcst");
    let archive_s = archive.to_str().unwrap();
    let gen = dclab(&[
        "gen",
        "gnp",
        "--n",
        "11",
        "--prob",
        "0.6",
        "--max-diameter",
        "2",
        "--seed",
        "21",
        "--count",
        "3",
        "--out",
        corpus.to_str().unwrap(),
    ]);
    assert!(gen.status.success());

    // Batch populates the archive (all misses)…
    let cold = dclab(&[
        "batch",
        corpus.to_str().unwrap(),
        "--strategy",
        "greedy",
        "--store",
        archive_s,
    ]);
    assert!(
        cold.status.success(),
        "{}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_out = String::from_utf8_lossy(&cold.stdout);
    assert_eq!(
        cold_out.matches("\"store\":\"miss\"").count(),
        3,
        "{cold_out}"
    );

    // …a second batch run is pure lookups with identical reports…
    let warm = dclab(&[
        "batch",
        corpus.to_str().unwrap(),
        "--strategy",
        "greedy",
        "--store",
        archive_s,
    ]);
    let warm_out = String::from_utf8_lossy(&warm.stdout);
    assert_eq!(
        warm_out.matches("\"store\":\"hit\"").count(),
        3,
        "{warm_out}"
    );
    assert_eq!(
        cold_out.replace("miss", "hit"),
        warm_out,
        "bit-identical reports"
    );

    // …and `solve` of one member hits the same archive.
    let one = corpus.join("gnp-s21-0.edges");
    let solo = dclab(&[
        "solve",
        one.to_str().unwrap(),
        "--strategy",
        "greedy",
        "--store",
        archive_s,
    ]);
    assert!(String::from_utf8_lossy(&solo.stdout).contains("\"store\":\"hit\""));

    // stats / export / import / compact manage the archive.
    let stats = dclab(&["store", "stats", archive_s]);
    let stats_out = String::from_utf8_lossy(&stats.stdout);
    assert!(stats_out.contains("\"records\":3"), "{stats_out}");
    assert!(stats_out.contains("\"clean_footer\":true"), "{stats_out}");
    assert!(stats_out.contains("\"greedy\":3"), "{stats_out}");

    let dump = dir.join("dump.dcst");
    let exp = dclab(&["store", "export", archive_s, dump.to_str().unwrap()]);
    assert!(String::from_utf8_lossy(&exp.stdout).contains("\"exported\":3"));
    let fresh = dir.join("fresh.dcst");
    let imp = dclab(&[
        "store",
        "import",
        fresh.to_str().unwrap(),
        dump.to_str().unwrap(),
    ]);
    let imp_out = String::from_utf8_lossy(&imp.stdout);
    assert!(imp_out.contains("\"added\":3"), "{imp_out}");
    let comp = dclab(&["store", "compact", archive_s]);
    assert!(String::from_utf8_lossy(&comp.stdout).contains("\"generation\":1"));

    // Unknown subcommand fails loudly.
    let bad = dclab(&["store", "frobnicate", archive_s]);
    assert!(!bad.status.success());

    // Inspection of a nonexistent archive is an error, not a silently
    // created empty file.
    let typo = dir.join("no-such.dcst");
    let missing = dclab(&["store", "stats", typo.to_str().unwrap()]);
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("no such archive"));
    assert!(!typo.exists(), "stats must not create the archive");
}
