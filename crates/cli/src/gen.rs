//! `dclab gen` — expose `graph::generators` on the command line: seeded,
//! reproducible instance corpora (edge-list or DIMACS) without ad-hoc
//! scripts, for the store, the loadgen, and the experiments alike.

use dclab_graph::generators::{classic, random};
use dclab_graph::io as graph_io;
use dclab_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub const GEN_HELP: &str = "\
usage: dclab gen <family> [FLAGS]

FAMILIES (deterministic):
  path | cycle | complete | star | wheel | petersen     --n N
  grid                                                  --rows R --cols C
  bipartite                                             --a A --b B
  multipartite                                          --parts a,b,c,...
  split                                                 --clique K --indep I

FAMILIES (seeded random; vary with --seed):
  gnp        --n N --prob P [--max-diameter D]   Erdős–Rényi G(n,p)
  gnm        --n N --edges M                     uniform G(n,m)
  tree       --n N                               uniform labelled tree
  ba         --n N --attach M                    Barabási–Albert
  ws         --n N --k K --beta B                Watts–Strogatz
  cograph    --n N --join-prob P                 connected random cograph
  rsplit     --clique K --indep I --cross P      random split graph
  smalldiam  --n N --core C [--extra P]          core–periphery, diameter 2;
             (--target-n N overrides --n)        sized for oracle-scale runs

FLAGS:
  --seed S              RNG seed (default 42; instance i uses seed S+i)
  --count C             instances to generate (default 1)
  --out PATH            output file (count 1) or directory (count > 1);
                        default: stdout (count 1 only)
  --format FMT          edgelist | dimacs (default edgelist)
";

struct GenOpts {
    n: usize,
    prob: f64,
    edges: usize,
    attach: usize,
    k: usize,
    beta: f64,
    join_prob: f64,
    clique: usize,
    indep: usize,
    cross: f64,
    rows: usize,
    cols: usize,
    a: usize,
    b: usize,
    parts: Vec<usize>,
    target_n: Option<usize>,
    core: usize,
    extra: f64,
    max_diameter: Option<u32>,
    seed: u64,
    count: usize,
    out: Option<String>,
    format: graph_io::Format,
}

impl Default for GenOpts {
    fn default() -> Self {
        GenOpts {
            n: 16,
            prob: 0.5,
            edges: 24,
            attach: 3,
            k: 4,
            beta: 0.2,
            join_prob: 0.6,
            clique: 4,
            indep: 8,
            cross: 0.4,
            rows: 4,
            cols: 4,
            a: 4,
            b: 4,
            parts: vec![3, 3, 3],
            target_n: None,
            core: 64,
            extra: 0.0,
            max_diameter: None,
            seed: 42,
            count: 1,
            out: None,
            format: graph_io::Format::EdgeList,
        }
    }
}

fn parse_gen_opts(args: &[String]) -> Result<(Option<String>, GenOpts), String> {
    let mut family = None;
    let mut opts = GenOpts::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let parse_usize = |name: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("bad {name}: {e}"))
        };
        let parse_f64 = |name: &str, v: String| -> Result<f64, String> {
            v.parse().map_err(|e| format!("bad {name}: {e}"))
        };
        match arg.as_str() {
            "--n" => opts.n = parse_usize("--n", value("--n")?)?,
            "--prob" => opts.prob = parse_f64("--prob", value("--prob")?)?,
            "--edges" => opts.edges = parse_usize("--edges", value("--edges")?)?,
            "--attach" => opts.attach = parse_usize("--attach", value("--attach")?)?,
            "--k" => opts.k = parse_usize("--k", value("--k")?)?,
            "--beta" => opts.beta = parse_f64("--beta", value("--beta")?)?,
            "--join-prob" => opts.join_prob = parse_f64("--join-prob", value("--join-prob")?)?,
            "--clique" => opts.clique = parse_usize("--clique", value("--clique")?)?,
            "--indep" => opts.indep = parse_usize("--indep", value("--indep")?)?,
            "--cross" => opts.cross = parse_f64("--cross", value("--cross")?)?,
            "--rows" => opts.rows = parse_usize("--rows", value("--rows")?)?,
            "--cols" => opts.cols = parse_usize("--cols", value("--cols")?)?,
            "--a" => opts.a = parse_usize("--a", value("--a")?)?,
            "--b" => opts.b = parse_usize("--b", value("--b")?)?,
            "--parts" => {
                let raw = value("--parts")?;
                let parts: Result<Vec<usize>, _> =
                    raw.split(',').map(|t| t.trim().parse::<usize>()).collect();
                opts.parts = parts.map_err(|e| format!("bad --parts '{raw}': {e}"))?;
            }
            "--target-n" => opts.target_n = Some(parse_usize("--target-n", value("--target-n")?)?),
            "--core" => opts.core = parse_usize("--core", value("--core")?)?,
            "--extra" => opts.extra = parse_f64("--extra", value("--extra")?)?,
            "--max-diameter" => {
                opts.max_diameter = Some(
                    value("--max-diameter")?
                        .parse()
                        .map_err(|e| format!("bad --max-diameter: {e}"))?,
                )
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--count" => opts.count = parse_usize("--count", value("--count")?)?,
            "--out" => opts.out = Some(value("--out")?),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "edgelist" | "edge-list" => graph_io::Format::EdgeList,
                    "dimacs" | "col" => graph_io::Format::Dimacs,
                    other => return Err(format!("unknown format '{other}'")),
                }
            }
            flag if flag.starts_with("--") => return Err(format!("unknown gen flag '{flag}'")),
            name => {
                if family.replace(name.to_string()).is_some() {
                    return Err("gen takes exactly one family".into());
                }
            }
        }
    }
    Ok((family, opts))
}

fn build(family: &str, opts: &GenOpts, seed: u64) -> Result<Graph, String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = match family {
        "path" => classic::path(opts.n),
        "cycle" => classic::cycle(opts.n.max(3)),
        "complete" => classic::complete(opts.n),
        "star" => classic::star(opts.n),
        "wheel" => classic::wheel(opts.n.max(4)),
        "petersen" => classic::petersen(),
        "grid" => classic::grid(opts.rows, opts.cols),
        "bipartite" => classic::complete_bipartite(opts.a, opts.b),
        "multipartite" => classic::complete_multipartite(&opts.parts),
        "split" => classic::split_graph(opts.clique.max(1), opts.indep),
        "gnp" => match opts.max_diameter {
            Some(d) => random::gnp_with_diameter_at_most(&mut rng, opts.n, opts.prob, d),
            None => random::gnp(&mut rng, opts.n, opts.prob),
        },
        "gnm" => {
            let max = opts.n * opts.n.saturating_sub(1) / 2;
            if opts.edges > max {
                return Err(format!(
                    "--edges {} exceeds max {max} for n={}",
                    opts.edges, opts.n
                ));
            }
            random::gnm(&mut rng, opts.n, opts.edges)
        }
        "tree" => random::random_tree(&mut rng, opts.n),
        "ba" => {
            if opts.attach == 0 || opts.n <= opts.attach {
                return Err("ba needs --attach ≥ 1 and --n > --attach".into());
            }
            random::barabasi_albert(&mut rng, opts.n, opts.attach)
        }
        "ws" => {
            if !opts.k.is_multiple_of(2) || opts.k >= opts.n {
                return Err("ws needs an even --k < --n".into());
            }
            random::watts_strogatz(&mut rng, opts.n, opts.k, opts.beta)
        }
        "cograph" => random::random_connected_cograph(&mut rng, opts.n, opts.join_prob),
        "smalldiam" => {
            let n = opts.target_n.unwrap_or(opts.n);
            if opts.core == 0 {
                return Err("smalldiam needs --core ≥ 1".into());
            }
            random::core_periphery(&mut rng, n, opts.core, opts.extra)
        }
        "rsplit" => random::random_split(&mut rng, opts.clique.max(1), opts.indep, opts.cross),
        other => {
            return Err(format!(
                "unknown family '{other}' (run `dclab gen` with no family for the list)"
            ))
        }
    };
    Ok(g)
}

fn extension(format: graph_io::Format) -> &'static str {
    match format {
        graph_io::Format::EdgeList => "edges",
        graph_io::Format::Dimacs => "col",
    }
}

/// `dclab gen <family> [flags]` — generate one instance to stdout/file, or
/// a `--count` corpus into a directory.
pub fn gen_cmd(args: &[String]) -> Result<(), String> {
    let (family, opts) = parse_gen_opts(args)?;
    let Some(family) = family else {
        print!("{GEN_HELP}");
        return Ok(());
    };
    if opts.count == 0 {
        return Err("--count must be at least 1".into());
    }
    if opts.count == 1 {
        let g = build(&family, &opts, opts.seed)?;
        let text = graph_io::serialize(&g, opts.format);
        match &opts.out {
            Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?,
            None => print!("{text}"),
        }
        return Ok(());
    }
    let dir = opts.out.as_deref().ok_or("--count > 1 needs --out <dir>")?;
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let width = opts.count.to_string().len();
    for i in 0..opts.count {
        let g = build(&family, &opts, opts.seed.wrapping_add(i as u64))?;
        let name = format!(
            "{family}-s{}-{i:0width$}.{}",
            opts.seed,
            extension(opts.format),
            width = width
        );
        let path = std::path::Path::new(dir).join(&name);
        std::fs::write(&path, graph_io::serialize(&g, opts.format))
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    eprintln!("wrote {} {} instances to {dir}", opts.count, family);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn families_build_deterministically() {
        for family in [
            "path",
            "cycle",
            "complete",
            "star",
            "wheel",
            "petersen",
            "grid",
            "bipartite",
            "multipartite",
            "split",
            "gnp",
            "gnm",
            "tree",
            "ba",
            "ws",
            "cograph",
            "rsplit",
            "smalldiam",
        ] {
            let opts = GenOpts::default();
            let a = build(family, &opts, 7).unwrap_or_else(|e| panic!("{family}: {e}"));
            let b = build(family, &opts, 7).unwrap();
            assert_eq!(a, b, "{family} deterministic under seed");
            a.validate().unwrap_or_else(|e| panic!("{family}: {e}"));
        }
    }

    #[test]
    fn gnp_with_diameter_cap_respects_it() {
        let opts = GenOpts {
            n: 14,
            prob: 0.6,
            max_diameter: Some(2),
            ..GenOpts::default()
        };
        let g = build("gnp", &opts, 3).unwrap();
        assert!(dclab_graph::diameter::diameter(&g).unwrap() <= 2);
    }

    #[test]
    fn smalldiam_target_n_overrides_n_and_stays_diameter_two() {
        let opts = GenOpts {
            target_n: Some(300),
            core: 16,
            extra: 0.02,
            ..GenOpts::default()
        };
        let g = build("smalldiam", &opts, 9).unwrap();
        assert_eq!(g.n(), 300);
        assert_eq!(dclab_graph::diameter::diameter(&g).unwrap(), 2);
        assert!(build(
            "smalldiam",
            &GenOpts {
                core: 0,
                ..GenOpts::default()
            },
            1
        )
        .is_err());
    }

    #[test]
    fn bad_flags_and_families_are_rejected() {
        assert!(parse_gen_opts(&args(&["gnp", "--frobnicate", "1"])).is_err());
        assert!(parse_gen_opts(&args(&["gnp", "--n"])).is_err());
        let opts = GenOpts::default();
        assert!(build("nope", &opts, 1).is_err());
        assert!(build(
            "ws",
            &GenOpts {
                k: 3,
                ..GenOpts::default()
            },
            1
        )
        .is_err());
    }
}
