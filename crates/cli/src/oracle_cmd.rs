//! `dclab oracle` — build and inspect hub-label distance oracles offline.
//!
//! `build` parses an instance file, runs the pruned-landmark-labeling
//! construction, prints one JSON stats line, and (with `--out`) writes the
//! serialized labels so later runs can skip the build. `stats` re-reads a
//! serialized label file and prints the same shape without rebuilding.

use dclab_engine::json::Obj;
use dclab_graph::io;
use dclab_oracle::{dense_matrix_bytes, dense_pipeline_bytes, HubLabels};

/// One deterministic JSON line describing a label set.
fn stats_line(file: &str, action: &str, labels: &HubLabels, m: Option<usize>) -> String {
    let n = labels.n();
    let entries = labels.label_entries() as u64;
    let obj = Obj::new()
        .str("file", file)
        .str("action", action)
        .usize("n", n);
    let obj = match m {
        Some(m) => obj.usize("m", m),
        None => obj,
    };
    obj.u64("label_entries", entries)
        .u64("avg_label_size", entries.checked_div(n as u64).unwrap_or(0))
        .usize("max_label_size", labels.max_label_len())
        .u64("footprint_bytes", labels.footprint_bytes())
        .u64("dense_matrix_bytes", dense_matrix_bytes(n))
        .u64("dense_pipeline_bytes", dense_pipeline_bytes(n))
        .finish()
}

/// Positional args plus the `--out` and `--format` flag values.
struct OracleFlags {
    positional: Vec<String>,
    out: Option<String>,
    format: Option<io::Format>,
}

fn parse_flags(args: &[String]) -> Result<OracleFlags, String> {
    let mut positional = Vec::new();
    let mut out = None;
    let mut format = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--out" => out = Some(flag_value("--out")?),
            "--format" => {
                format = Some(match flag_value("--format")?.as_str() {
                    "edgelist" | "edge-list" => io::Format::EdgeList,
                    "dimacs" | "col" => io::Format::Dimacs,
                    other => return Err(format!("unknown format '{other}'")),
                })
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => positional.push(arg.clone()),
        }
    }
    Ok(OracleFlags {
        positional,
        out,
        format,
    })
}

const USAGE: &str = "usage: dclab oracle build <instance> [--out labels.dcor] \
                     [--format edgelist|dimacs]\n       dclab oracle stats <labels.dcor>";

/// `dclab oracle build|stats ...` (see module docs).
pub fn oracle_cmd(args: &[String]) -> Result<(), String> {
    let OracleFlags {
        positional,
        out,
        format,
    } = parse_flags(args)?;
    let [action, file] = positional.as_slice() else {
        return Err(USAGE.into());
    };
    match action.as_str() {
        "build" => {
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let format = format.unwrap_or_else(|| io::Format::from_path(file));
            let graph = io::parse(&text, format).map_err(|e| format!("{file}: {e}"))?;
            let labels = HubLabels::build(&graph).map_err(|e| e.to_string())?;
            if let Some(out) = &out {
                std::fs::write(out, labels.to_bytes()).map_err(|e| format!("{out}: {e}"))?;
                eprintln!(
                    "wrote {} label entries ({} bytes) to {out}",
                    labels.label_entries(),
                    labels.footprint_bytes()
                );
            }
            println!("{}", stats_line(file, "build", &labels, Some(graph.m())));
            Ok(())
        }
        "stats" => {
            if out.is_some() {
                return Err("--out only applies to `oracle build`".into());
            }
            let bytes = std::fs::read(file).map_err(|e| format!("{file}: {e}"))?;
            let labels = HubLabels::from_bytes(&bytes).map_err(|e| format!("{file}: {e}"))?;
            println!("{}", stats_line(file, "stats", &labels, None));
            Ok(())
        }
        other => Err(format!("unknown oracle action '{other}'\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclab_graph::generators::classic;

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dclab-oracle-cmd-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    #[test]
    fn build_then_stats_round_trips_through_the_label_file() {
        let dir = temp_dir();
        let instance = dir.join("petersen.edges");
        std::fs::write(&instance, io::write_edge_list(&classic::petersen())).unwrap();
        let labels_path = dir.join("petersen.dcor");
        oracle_cmd(&[
            "build".into(),
            instance.to_str().unwrap().to_string(),
            "--out".into(),
            labels_path.to_str().unwrap().to_string(),
        ])
        .expect("build succeeds");
        // The serialized labels decode to an exact oracle.
        let bytes = std::fs::read(&labels_path).unwrap();
        let labels = HubLabels::from_bytes(&bytes).expect("decodes");
        assert_eq!(labels.n(), 10);
        assert_eq!(labels.query(0, 0), 0);
        oracle_cmd(&["stats".into(), labels_path.to_str().unwrap().to_string()])
            .expect("stats succeeds");
    }

    #[test]
    fn bad_usage_is_an_error_not_a_panic() {
        assert!(oracle_cmd(&[]).is_err());
        assert!(oracle_cmd(&["build".into()]).is_err());
        assert!(oracle_cmd(&["frobnicate".into(), "x".into()]).is_err());
        assert!(oracle_cmd(&["stats".into(), "/nonexistent/labels.dcor".into()]).is_err());
    }
}
