//! `dclab` — experiment driver.
//!
//! Regenerates every table of `EXPERIMENTS.md`:
//!
//! ```text
//! dclab e1   # reduction correctness (Thm 2 / Claim 1 / Fig. 1)
//! dclab e2   # exact scaling (Cor 1a: Held–Karp vs oracle)
//! dclab e3   # 1.5-approximation quality (Cor 1b)
//! dclab e4   # heuristic quality & speed at scale (§I-A practical route)
//! dclab e5   # diameter-2 L(p,q) via Partition into Paths (Cor 2 / Fig. 2)
//! dclab e6   # L(1,1) via coloring G², nd-FPT engine (Thm 4)
//! dclab e7   # p_max-approximation measured ratios (Cor 3)
//! dclab e8   # ablations (neighbor lists, don't-look bits, kicks, matching)
//! dclab all  # everything
//! ```
//!
//! `--quick` shrinks the sweeps for smoke runs.

mod experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let run = |name: &str| which == "all" || which == name;
    let mut ran = false;
    if run("e1") {
        experiments::e1_reduction::run(quick);
        ran = true;
    }
    if run("e2") {
        experiments::e2_exact_scaling::run(quick);
        ran = true;
    }
    if run("e3") {
        experiments::e3_approx::run(quick);
        ran = true;
    }
    if run("e4") {
        experiments::e4_heuristics::run(quick);
        ran = true;
    }
    if run("e5") {
        experiments::e5_diam2::run(quick);
        ran = true;
    }
    if run("e6") {
        experiments::e6_l1::run(quick);
        ran = true;
    }
    if run("e7") {
        experiments::e7_pmax::run(quick);
        ran = true;
    }
    if run("e8") {
        experiments::e8_ablation::run(quick);
        ran = true;
    }
    if !ran {
        eprintln!("unknown experiment '{which}'; use e1..e8 or all (optionally --quick)");
        std::process::exit(2);
    }
}
