//! `dclab` — unified CLI: engine-backed instance solving plus the paper's
//! experiment tables.
//!
//! ```text
//! dclab solve <file> [--p 2,1] [--strategy auto] [--format edgelist|dimacs]
//!                    [--node-budget N] [--restarts N]
//!      # solve one instance file, print a JSON SolveReport line
//! dclab batch <dir>  [same flags]
//!      # solve every instance file in <dir> in parallel (DCLAB_THREADS),
//!      # one JSON line per instance, deterministic order
//! dclab serve [--addr host:port] [--workers N] [--cache-mb M]
//!             [--store-path archive] [--cluster a,b,...] [--legacy-blocking]
//!      # long-running HTTP solve service with a canonical-instance report
//!      # cache (POST /solve, POST /batch, GET /healthz, GET /metrics);
//!      # epoll-reactor core on Linux (thousands of keep-alive connections
//!      # on a handful of workers); --cluster consistent-hashes canonical
//!      # instances across replicas; --store-path warm-boots the cache from
//!      # a persistent archive and write-behinds fresh solves
//! dclab loadgen --addrs a,b [--connections N] [--duration-ms D]
//!      # concurrent multi-replica soak against running servers; prints
//!      # latency percentiles, hit rate, routing tallies as one JSON line
//! dclab gen <family> [--n N] [--seed S] [--count C] [--out PATH]
//!      # seeded instance corpora from graph::generators (gnp, trees,
//!      # split graphs, classic families, ...)
//! dclab store stats|compact|export|import <archive> [args]
//!      # manage a persistent solution archive offline
//! dclab oracle build|stats <file> [--out labels.dcor]
//!      # build a hub-label distance oracle offline / inspect a label file
//! dclab trace export --chrome <trace.json> [--out PATH]
//!      # convert a solve trace (from `solve --trace` or
//!      # GET /debug/traces/<id>) to Chrome trace_event JSON
//!
//! dclab e1   # reduction correctness (Thm 2 / Claim 1 / Fig. 1)
//! dclab e2   # exact scaling (Cor 1a: Held–Karp vs oracle)
//! dclab e3   # 1.5-approximation quality (Cor 1b)
//! dclab e4   # heuristic quality & speed at scale (§I-A practical route)
//! dclab e5   # diameter-2 L(p,q) via Partition into Paths (Cor 2 / Fig. 2)
//! dclab e6   # L(1,1) via coloring G², nd-FPT engine (Thm 4)
//! dclab e7   # p_max-approximation measured ratios (Cor 3)
//! dclab e8   # ablations (neighbor lists, don't-look bits, kicks, matching)
//! dclab all  # every experiment
//! ```
//!
//! `--quick` shrinks the experiment sweeps for smoke runs.

mod bench_gate;
mod commands;
mod experiments;
mod gen;
mod oracle_cmd;
mod store_cmd;
mod trace_cmd;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h")
        || args.first().map(String::as_str) == Some("help")
    {
        print!("{}", commands::HELP);
        return;
    }
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    match which {
        "solve" | "batch" | "serve" | "loadgen" | "gen" | "store" | "oracle" | "trace"
        | "bench-gate" => {
            let rest: Vec<String> = args
                .iter()
                .skip_while(|a| a.as_str() != which)
                .skip(1)
                .cloned()
                .collect();
            let result = match which {
                "solve" => commands::solve_cmd(&rest),
                "batch" => commands::batch_cmd(&rest),
                "gen" => gen::gen_cmd(&rest),
                "store" => store_cmd::store_cmd(&rest),
                "oracle" => oracle_cmd::oracle_cmd(&rest),
                "trace" => trace_cmd::trace_cmd(&rest),
                "bench-gate" => bench_gate::bench_gate_cmd(&rest),
                "loadgen" => commands::loadgen_cmd(&rest),
                _ => commands::serve_cmd(&rest),
            };
            if let Err(e) = result {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        _ => run_experiments(which, &args),
    }
}

fn run_experiments(which: &str, args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let run = |name: &str| which == "all" || which == name;
    let mut ran = false;
    if run("e1") {
        experiments::e1_reduction::run(quick);
        ran = true;
    }
    if run("e2") {
        experiments::e2_exact_scaling::run(quick);
        ran = true;
    }
    if run("e3") {
        experiments::e3_approx::run(quick);
        ran = true;
    }
    if run("e4") {
        experiments::e4_heuristics::run(quick);
        ran = true;
    }
    if run("e5") {
        experiments::e5_diam2::run(quick);
        ran = true;
    }
    if run("e6") {
        experiments::e6_l1::run(quick);
        ran = true;
    }
    if run("e7") {
        experiments::e7_pmax::run(quick);
        ran = true;
    }
    if run("e8") {
        experiments::e8_ablation::run(quick);
        ran = true;
    }
    if !ran {
        eprintln!(
            "unknown command '{which}'; use solve <file>, batch <dir>, serve, gen, store, \
             oracle, trace, bench-gate, e1..e8 or all (experiments take --quick; see --help)"
        );
        std::process::exit(2);
    }
}
