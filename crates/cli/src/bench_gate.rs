//! `dclab bench-gate` — the CI perf-regression gate.
//!
//! Compares freshly produced `BENCH_*.json` bench output (typically the
//! quick-mode run from the `bench-smoke` CI job) against the committed
//! baselines and fails when a named headline metric regressed beyond its
//! tolerance. The gated metrics are deliberately few and load-bearing:
//!
//! | metric                        | file               | dir    | tol |
//! |-------------------------------|--------------------|--------|-----|
//! | `apsp_speedup_smalldiam_1024` | BENCH_apsp.json    | higher | 30% |
//! | `store_appends_per_sec`       | BENCH_store.json   | higher | 70% |
//! | `store_warm_hit_rate`         | BENCH_store.json   | higher |  5% |
//! | `anytime_race_win_rate`       | BENCH_anytime.json | higher | 30% |
//! | `anytime_race_median_span`    | BENCH_anytime.json | lower  | 30% |
//! | `anytime_gap_at_50ms`         | BENCH_anytime.json | lower  | 70% |
//! | `race_proved_n512`            | BENCH_anytime.json | higher | 30% |
//! | `localsearch_speedup_n512`    | BENCH_localsearch.json | higher | 70% |
//! | `serve_p99_us`                | BENCH_serve.json   | lower  | 70% |
//! | `serve_conns_sustained`       | BENCH_serve.json   | higher | 30% |
//! | `trace_disabled_rounds_per_s` | BENCH_trace.json   | higher | 70% |
//! | `oracle_bytes_per_vertex`     | BENCH_oracle.json  | lower  | 70% |
//! | `oracle_query_ns`             | BENCH_oracle.json  | lower  | 70% |
//!
//! The anytime metrics are computed by `e13_anytime` over the *gated*
//! deadline's cells only (same instance count in quick and full mode), so
//! the quick-mode CI output is directly comparable to the committed
//! full-mode baseline; at five cells the 30% win-rate tolerance forgives
//! one lost cell and fails on two.
//!
//! Ratios and rates (APSP speedup, hit rate, win rate, span) are
//! machine-relative, so the default 30% tolerance is meaningful across
//! runners; raw throughput (`appends_per_sec`) varies wildly between
//! hardware generations, so its gate is a loose 70% — a catastrophic-drop
//! detector, not a micro-benchmark. The local-search speedup is also a
//! ratio, but how far the chunked branch-free scan beats the scalar
//! oracle depends on the runner's vector units and cache, so it gets the
//! same loose 70% gate: a full-mode baseline near 5× fails CI only if the
//! quick-mode run drops below ~1.5× — i.e. the vectorized path stopped
//! being a speedup at all.
//!
//! A metric missing from the *baseline* is skipped with a note (first run
//! after a new bench lands); a metric missing from the *current* output
//! fails the gate (the bench silently stopped reporting it).

use dclab_engine::json::{parse, Obj, Value};

pub const GATE_HELP: &str = "\
usage: dclab bench-gate --baseline <dir> [--current <dir>] [--tolerance F]

  --baseline <dir>    directory holding the committed BENCH_*.json baselines
  --current <dir>     directory holding the fresh bench output (default .)
  --tolerance F       override the default per-metric tolerance (0 < F < 1)

Exits non-zero if any headline metric regressed beyond its tolerance.
";

/// One gated headline metric.
struct MetricSpec {
    name: &'static str,
    file: &'static str,
    higher_is_better: bool,
    /// Allowed fractional regression (0.30 = fail past 30%).
    tolerance: f64,
    extract: fn(&Value) -> Option<f64>,
}

/// Mean ns/iter of one criterion-style result id.
fn mean_ns(doc: &Value, id: &str) -> Option<f64> {
    doc.get("results")?
        .as_arr()?
        .iter()
        .find(|r| r.get("id").and_then(Value::as_str) == Some(id))?
        .get("mean_ns")?
        .as_f64()
}

fn apsp_speedup(doc: &Value) -> Option<f64> {
    let scalar = mean_ns(doc, "e11_apsp_smalldiam/scalar/1024")?;
    let bit64 = mean_ns(doc, "e11_apsp_smalldiam/bit64/1024")?;
    (bit64 > 0.0).then(|| scalar / bit64)
}

const METRICS: &[MetricSpec] = &[
    MetricSpec {
        name: "apsp_speedup_smalldiam_1024",
        file: "BENCH_apsp.json",
        higher_is_better: true,
        tolerance: 0.30,
        extract: apsp_speedup,
    },
    MetricSpec {
        name: "store_appends_per_sec",
        file: "BENCH_store.json",
        higher_is_better: true,
        tolerance: 0.70,
        extract: |doc| doc.get("appends_per_sec").and_then(Value::as_f64),
    },
    MetricSpec {
        name: "store_warm_hit_rate",
        file: "BENCH_store.json",
        higher_is_better: true,
        tolerance: 0.05,
        extract: |doc| doc.get("warm_hit_rate").and_then(Value::as_f64),
    },
    MetricSpec {
        name: "anytime_race_win_rate",
        file: "BENCH_anytime.json",
        higher_is_better: true,
        tolerance: 0.30,
        extract: |doc| doc.get("race_win_rate").and_then(Value::as_f64),
    },
    MetricSpec {
        name: "anytime_race_median_span",
        file: "BENCH_anytime.json",
        higher_is_better: false,
        tolerance: 0.30,
        extract: |doc| doc.get("race_median_span").and_then(Value::as_f64),
    },
    // Worst certified optimality gap over the gated deadline's cells.
    // Greedy spans and Held–Karp bounds are deterministic, so the gap
    // only moves when an instance flips between proved (gap 0) and
    // timed-out — the loose 70% gate fails only when a timed-out harvest
    // lands meaningfully above the committed certificate.
    MetricSpec {
        name: "anytime_gap_at_50ms",
        file: "BENCH_anytime.json",
        higher_is_better: false,
        tolerance: 0.70,
        extract: |doc| doc.get("anytime_gap_at_50ms").and_then(Value::as_f64),
    },
    // Instances the race *proved* optimal at the gated deadline. The
    // 30% gate on a baseline of 2 fails below 2 — the same floor the
    // e13 acceptance assertion enforces, restated as a trend gate.
    MetricSpec {
        name: "race_proved_n512",
        file: "BENCH_anytime.json",
        higher_is_better: true,
        tolerance: 0.30,
        extract: |doc| doc.get("race_proved_n512").and_then(Value::as_f64),
    },
    MetricSpec {
        name: "localsearch_speedup_n512",
        file: "BENCH_localsearch.json",
        higher_is_better: true,
        tolerance: 0.70,
        extract: |doc| doc.get("speedup").and_then(Value::as_f64),
    },
    // Tail latency of the mixed serve corpus: raw wall time, so runner-
    // dependent like the throughput gates — 70% is a catastrophic-drop
    // detector (a tail that triples fails, scheduler jitter does not).
    MetricSpec {
        name: "serve_p99_us",
        file: "BENCH_serve.json",
        higher_is_better: false,
        tolerance: 0.70,
        extract: |doc| doc.get("serve_p99_us").and_then(Value::as_f64),
    },
    // Concurrent keep-alive connections the reactor sustained in the
    // capacity probe. Nearly deterministic (bounded by the probe cap and
    // the connection budget, not wall time), so a tight 30% gate: it
    // fails if the reactor regresses toward worker-pinned capacity.
    MetricSpec {
        name: "serve_conns_sustained",
        file: "BENCH_serve.json",
        higher_is_better: true,
        tolerance: 0.30,
        extract: |doc| doc.get("serve_conns_sustained").and_then(Value::as_f64),
    },
    // Solve throughput with tracing *disabled*: guards the zero-cost
    // contract of `Trace::disabled()` against accidental always-on
    // instrumentation (raw throughput → loose 70% gate).
    MetricSpec {
        name: "trace_disabled_rounds_per_s",
        file: "BENCH_trace.json",
        higher_is_better: true,
        tolerance: 0.70,
        extract: |doc| doc.get("disabled_rounds_per_s").and_then(Value::as_f64),
    },
    // Hub-label compactness: serialized label bytes per vertex on the
    // bench family. Label sizes drift with ordering heuristics more than
    // hardware, but quick mode builds a smaller instance than the
    // committed full-mode baseline, so the loose 70% gate only catches a
    // labeling that stopped being sparse.
    MetricSpec {
        name: "oracle_bytes_per_vertex",
        file: "BENCH_oracle.json",
        higher_is_better: false,
        tolerance: 0.70,
        extract: |doc| doc.get("oracle_bytes_per_vertex").and_then(Value::as_f64),
    },
    // Mean hub-label distance query latency: raw wall time → 70% gate,
    // a catastrophic-drop detector for the merge-join inner loop.
    MetricSpec {
        name: "oracle_query_ns",
        file: "BENCH_oracle.json",
        higher_is_better: false,
        tolerance: 0.70,
        extract: |doc| doc.get("oracle_query_ns").and_then(Value::as_f64),
    },
];

/// Outcome of checking one metric.
enum Check {
    Ok { baseline: f64, current: f64 },
    Regressed { baseline: f64, current: f64 },
    SkippedNoBaseline,
    MissingCurrent(String),
}

fn load(dir: &str, file: &str) -> Option<Result<Value, String>> {
    let path = std::path::Path::new(dir).join(file);
    let text = std::fs::read_to_string(&path).ok()?;
    Some(parse(&text).map_err(|e| format!("{}: {e}", path.display())))
}

fn check_metric(
    spec: &MetricSpec,
    baseline_dir: &str,
    current_dir: &str,
    tolerance_override: Option<f64>,
) -> Result<Check, String> {
    let baseline = match load(baseline_dir, spec.file) {
        None => return Ok(Check::SkippedNoBaseline),
        Some(doc) => match (spec.extract)(&doc?) {
            None => return Ok(Check::SkippedNoBaseline),
            Some(v) => v,
        },
    };
    let current = match load(current_dir, spec.file) {
        None => {
            return Ok(Check::MissingCurrent(format!(
                "{current_dir}/{} not found",
                spec.file
            )))
        }
        Some(doc) => match (spec.extract)(&doc?) {
            None => {
                return Ok(Check::MissingCurrent(format!(
                    "metric absent from {current_dir}/{}",
                    spec.file
                )))
            }
            Some(v) => v,
        },
    };
    let tolerance = tolerance_override.unwrap_or(spec.tolerance);
    let regressed = if spec.higher_is_better {
        current < baseline * (1.0 - tolerance)
    } else {
        current > baseline * (1.0 + tolerance)
    };
    Ok(if regressed {
        Check::Regressed { baseline, current }
    } else {
        Check::Ok { baseline, current }
    })
}

/// `dclab bench-gate --baseline <dir> [--current <dir>] [--tolerance F]`.
pub fn bench_gate_cmd(args: &[String]) -> Result<(), String> {
    let mut baseline_dir: Option<String> = None;
    let mut current_dir = ".".to_string();
    let mut tolerance_override: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--baseline" => baseline_dir = Some(flag_value("--baseline")?),
            "--current" => current_dir = flag_value("--current")?,
            "--tolerance" => {
                let v: f64 = flag_value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("bad --tolerance: {e}"))?;
                if !(0.0..1.0).contains(&v) {
                    return Err("--tolerance must be in [0, 1)".into());
                }
                tolerance_override = Some(v);
            }
            other => return Err(format!("unknown bench-gate flag '{other}'\n{GATE_HELP}")),
        }
    }
    let baseline_dir =
        baseline_dir.ok_or_else(|| format!("--baseline is required\n{GATE_HELP}"))?;

    let mut failures = Vec::new();
    let mut lines = Vec::new();
    for spec in METRICS {
        let direction = if spec.higher_is_better { "≥" } else { "≤" };
        match check_metric(spec, &baseline_dir, &current_dir, tolerance_override)? {
            Check::Ok { baseline, current } => {
                lines.push(
                    Obj::new()
                        .str("metric", spec.name)
                        .str("status", "ok")
                        .f64("baseline", baseline)
                        .f64("current", current)
                        .finish(),
                );
                println!(
                    "bench-gate ok       {:<32} {current:>14.3} (baseline {baseline:.3}, want {direction} within {:.0}%)",
                    spec.name,
                    tolerance_override.unwrap_or(spec.tolerance) * 100.0
                );
            }
            Check::Regressed { baseline, current } => {
                lines.push(
                    Obj::new()
                        .str("metric", spec.name)
                        .str("status", "regressed")
                        .f64("baseline", baseline)
                        .f64("current", current)
                        .finish(),
                );
                println!(
                    "bench-gate REGRESSED {:<31} {current:>14.3} (baseline {baseline:.3}, tolerance {:.0}%)",
                    spec.name,
                    tolerance_override.unwrap_or(spec.tolerance) * 100.0
                );
                failures.push(spec.name);
            }
            Check::SkippedNoBaseline => {
                lines.push(
                    Obj::new()
                        .str("metric", spec.name)
                        .str("status", "skipped")
                        .finish(),
                );
                println!(
                    "bench-gate skipped  {:<32} (no committed baseline yet)",
                    spec.name
                );
            }
            Check::MissingCurrent(why) => {
                lines.push(
                    Obj::new()
                        .str("metric", spec.name)
                        .str("status", "missing")
                        .str("detail", &why)
                        .finish(),
                );
                println!("bench-gate MISSING  {:<32} ({why})", spec.name);
                failures.push(spec.name);
            }
        }
    }
    println!(
        "{}",
        Obj::new()
            .str("gate", "bench-gate")
            .usize("metrics", METRICS.len())
            .usize("failures", failures.len())
            .raw("checks", &dclab_engine::json::array(lines))
            .finish()
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "bench gate failed: {} metric(s) regressed or missing: {}",
            failures.len(),
            failures.join(", ")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &std::path::Path, file: &str, text: &str) {
        std::fs::create_dir_all(dir).unwrap();
        std::fs::write(dir.join(file), text).unwrap();
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dclab-gate-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn apsp_json(scalar: f64, bit64: f64) -> String {
        format!(
            "{{\"bench\":\"e11_apsp\",\"results\":[\
             {{\"id\":\"e11_apsp_smalldiam/scalar/1024\",\"mean_ns\":{scalar},\"iterations\":5}},\
             {{\"id\":\"e11_apsp_smalldiam/bit64/1024\",\"mean_ns\":{bit64},\"iterations\":10}}]}}"
        )
    }

    #[test]
    fn gate_passes_when_metrics_hold() {
        let base = temp_dir("pass-base");
        let cur = temp_dir("pass-cur");
        write(&base, "BENCH_apsp.json", &apsp_json(16000.0, 1000.0));
        // 20% slower speedup: inside the 30% tolerance.
        write(&cur, "BENCH_apsp.json", &apsp_json(12800.0, 1000.0));
        let args = vec![
            "--baseline".to_string(),
            base.to_str().unwrap().to_string(),
            "--current".to_string(),
            cur.to_str().unwrap().to_string(),
        ];
        // Store/anytime files absent from the baseline → skipped, not failed.
        bench_gate_cmd(&args).expect("gate passes");
    }

    #[test]
    fn gate_fails_on_headline_regression() {
        let base = temp_dir("fail-base");
        let cur = temp_dir("fail-cur");
        write(&base, "BENCH_apsp.json", &apsp_json(16000.0, 1000.0));
        // Speedup collapsed 16× → 8×: a 50% regression, past the gate.
        write(&cur, "BENCH_apsp.json", &apsp_json(8000.0, 1000.0));
        let args = vec![
            "--baseline".to_string(),
            base.to_str().unwrap().to_string(),
            "--current".to_string(),
            cur.to_str().unwrap().to_string(),
        ];
        let err = bench_gate_cmd(&args).expect_err("gate must fail");
        assert!(err.contains("apsp_speedup_smalldiam_1024"), "{err}");
    }

    #[test]
    fn gate_fails_when_current_output_is_missing() {
        let base = temp_dir("missing-base");
        let cur = temp_dir("missing-cur");
        write(&base, "BENCH_apsp.json", &apsp_json(16000.0, 1000.0));
        // Baseline exists but the bench produced nothing → fail loudly.
        let args = vec![
            "--baseline".to_string(),
            base.to_str().unwrap().to_string(),
            "--current".to_string(),
            cur.to_str().unwrap().to_string(),
        ];
        let err = bench_gate_cmd(&args).expect_err("gate must fail");
        assert!(err.contains("regressed or missing"), "{err}");
    }

    #[test]
    fn lower_is_better_metrics_gate_in_the_other_direction() {
        let base = temp_dir("lower-base");
        let cur = temp_dir("lower-cur");
        let anytime = |span: f64| {
            format!(
                "{{\"bench\":\"e13_anytime\",\"race_win_rate\":0.9,\"race_median_span\":{span}}}"
            )
        };
        write(&base, "BENCH_anytime.json", &anytime(100.0));
        write(&cur, "BENCH_anytime.json", &anytime(140.0)); // 40% worse span
        let args = vec![
            "--baseline".to_string(),
            base.to_str().unwrap().to_string(),
            "--current".to_string(),
            cur.to_str().unwrap().to_string(),
        ];
        let err = bench_gate_cmd(&args).expect_err("span regression fails");
        assert!(err.contains("anytime_race_median_span"), "{err}");
        // An *improvement* (smaller span) passes.
        write(&cur, "BENCH_anytime.json", &anytime(80.0));
        bench_gate_cmd(&args).expect("improvement passes");
    }
}
