//! `dclab trace` — offline tooling for solve traces written by
//! `dclab solve --trace` or fetched from a server's
//! `GET /debug/traces/<request-id>`.
//!
//! `trace export --chrome` converts the span-tree JSON into Chrome
//! `trace_event` format, loadable in `chrome://tracing` and Perfetto: each
//! recording thread becomes a track, spans become complete events, and
//! zero-duration checkpoints (branch-and-bound node milestones) become
//! instant events.

use dclab_engine::json::{parse, Value};
use dclab_trace::{phase_index, SolveTrace, Span, PHASES};

/// Usage string for `dclab trace` (also returned on malformed calls).
const USAGE: &str = "usage: dclab trace export --chrome <trace.json> [--out <file>]";

/// Resolve a span name from a parsed trace back to a `&'static str`.
/// Registry names map to their `PHASES` entry; unknown names (from a newer
/// or foreign producer) are leaked — fine for a one-shot CLI process, and
/// it keeps `Span.name` allocation-free on the hot recording path.
fn static_name(name: &str) -> &'static str {
    match phase_index(name) {
        Some(i) => PHASES[i],
        None => Box::leak(name.to_string().into_boxed_str()),
    }
}

fn field_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_f64)
        .map(|f| f as u64)
        .ok_or_else(|| format!("trace span missing numeric '{key}'"))
}

/// Parse the JSON written by `SolveTrace::to_json` back into a
/// [`SolveTrace`].
fn parse_trace(text: &str) -> Result<SolveTrace, String> {
    let doc = parse(text).map_err(|e| format!("not valid trace JSON: {e}"))?;
    let id = doc
        .get("id")
        .and_then(Value::as_str)
        .ok_or("trace missing 'id'")?
        .to_string();
    let label = doc
        .get("label")
        .and_then(Value::as_str)
        .ok_or("trace missing 'label'")?
        .to_string();
    let total_us = field_u64(&doc, "total_us")?;
    let mut spans = Vec::new();
    for s in doc
        .get("spans")
        .and_then(Value::as_arr)
        .ok_or("trace missing 'spans' array")?
    {
        let name = s
            .get("name")
            .and_then(Value::as_str)
            .ok_or("trace span missing 'name'")?;
        spans.push(Span {
            id: field_u64(s, "id")? as u32,
            parent: field_u64(s, "parent")? as u32,
            name: static_name(name),
            detail: s
                .get("detail")
                .and_then(Value::as_str)
                .unwrap_or("")
                .to_string(),
            start_us: field_u64(s, "start_us")?,
            dur_us: field_u64(s, "dur_us")?,
            tid: field_u64(s, "tid")? as u32,
        });
    }
    Ok(SolveTrace {
        id,
        label,
        total_us,
        seq: 0,
        spans,
    })
}

/// `dclab trace export --chrome <trace.json> [--out <file>]` — convert a
/// solve trace to Chrome `trace_event` JSON (stdout unless `--out`).
pub fn trace_cmd(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("export") => {}
        _ => return Err(USAGE.into()),
    }
    let mut chrome = false;
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--chrome" => chrome = true,
            "--out" => {
                out = Some(it.next().cloned().ok_or("--out needs a value")?);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown trace flag '{flag}'\n{USAGE}"));
            }
            path => {
                if input.replace(path.to_string()).is_some() {
                    return Err(USAGE.into());
                }
            }
        }
    }
    if !chrome {
        return Err(format!("trace export needs a target format\n{USAGE}"));
    }
    let input = input.ok_or(USAGE)?;
    let text = std::fs::read_to_string(&input).map_err(|e| format!("{input}: {e}"))?;
    let trace = parse_trace(&text).map_err(|e| format!("{input}: {e}"))?;
    let rendered = trace.to_chrome_json();
    match out {
        Some(path) => {
            std::fs::write(&path, rendered).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote Chrome trace for '{}' ({} spans) to {path}",
                trace.id,
                trace.spans.len()
            );
        }
        None => println!("{rendered}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_rendered_trace() {
        let original = SolveTrace {
            id: "req-7".into(),
            label: "heuristic".into(),
            total_us: 900,
            seq: 3,
            spans: vec![
                Span {
                    id: 1,
                    parent: 0,
                    name: "solve",
                    detail: String::new(),
                    start_us: 0,
                    dur_us: 880,
                    tid: 1,
                },
                Span {
                    id: 2,
                    parent: 1,
                    name: "lk",
                    detail: "kicks=4".into(),
                    start_us: 10,
                    dur_us: 600,
                    tid: 1,
                },
            ],
        };
        let parsed = parse_trace(&original.to_json()).unwrap();
        assert_eq!(parsed.id, "req-7");
        assert_eq!(parsed.label, "heuristic");
        assert_eq!(parsed.total_us, 900);
        assert_eq!(parsed.spans.len(), 2);
        assert_eq!(parsed.spans[1].name, "lk");
        assert_eq!(parsed.spans[1].detail, "kicks=4");
        assert_eq!(parsed.spans[1].parent, 1);
        // seq is recorder-assigned, not serialized.
        assert_eq!(parsed.seq, 0);
        // And the parsed trace renders to Chrome format.
        let chrome = parsed.to_chrome_json();
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"lk\""));
    }

    #[test]
    fn foreign_span_names_survive() {
        let t = parse_trace(
            "{\"id\":\"x\",\"label\":\"y\",\"total_us\":5,\"spans\":[{\"id\":1,\
             \"parent\":0,\"name\":\"custom-phase\",\"start_us\":0,\"dur_us\":5,\"tid\":1}]}",
        )
        .unwrap();
        assert_eq!(t.spans[0].name, "custom-phase");
    }

    #[test]
    fn malformed_traces_error_cleanly() {
        assert!(parse_trace("not json").is_err());
        assert!(parse_trace("{\"id\":\"x\"}").is_err());
        assert!(
            parse_trace("{\"id\":\"x\",\"label\":\"y\",\"total_us\":5,\"spans\":[{}]}").is_err()
        );
    }
}
