//! `dclab solve` / `dclab batch`: the engine-backed instance commands.

use dclab_core::pvec::PVec;
use dclab_engine::json::Obj;
use dclab_engine::{solve, solve_batch, Budget, SolveRequest, Strategy};
use dclab_graph::io;
use dclab_graph::Graph;

/// Flags shared by `solve` and `batch`.
struct Opts {
    pvec: PVec,
    strategy: Strategy,
    budget: Budget,
    format: Option<io::Format>,
}

fn parse_pvec(s: &str) -> Result<PVec, String> {
    let entries: Result<Vec<u64>, _> = s.split(',').map(|t| t.trim().parse::<u64>()).collect();
    let entries = entries.map_err(|e| format!("bad p-vector '{s}': {e}"))?;
    PVec::new(entries)
        .ok_or_else(|| format!("bad p-vector '{s}': must be non-empty and not all-zero"))
}

fn parse_opts(args: &[String]) -> Result<(Vec<String>, Opts), String> {
    let mut positional = Vec::new();
    let mut opts = Opts {
        pvec: PVec::l21(),
        strategy: Strategy::Auto,
        budget: Budget::default(),
        format: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--p" => opts.pvec = parse_pvec(&flag_value("--p")?)?,
            "--strategy" => opts.strategy = flag_value("--strategy")?.parse()?,
            "--node-budget" => {
                let v = flag_value("--node-budget")?;
                opts.budget.node_budget =
                    Some(v.parse().map_err(|e| format!("bad --node-budget: {e}"))?);
            }
            "--restarts" => {
                let v = flag_value("--restarts")?;
                opts.budget.restarts = Some(v.parse().map_err(|e| format!("bad --restarts: {e}"))?);
            }
            "--format" => {
                opts.format = Some(match flag_value("--format")?.as_str() {
                    "edgelist" | "edge-list" => io::Format::EdgeList,
                    "dimacs" | "col" => io::Format::Dimacs,
                    other => return Err(format!("unknown format '{other}'")),
                })
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, opts))
}

fn load_graph(path: &str, format: Option<io::Format>) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let format = format.unwrap_or_else(|| io::Format::from_path(path));
    io::parse(&text, format).map_err(|e| format!("{path}: {e}"))
}

/// `dclab solve <file> [--p 2,1] [--strategy auto] ...` — one instance,
/// one JSON `SolveReport` line on stdout.
pub fn solve_cmd(args: &[String]) -> Result<(), String> {
    let (files, opts) = parse_opts(args)?;
    if files.len() != 1 {
        return Err("usage: dclab solve <file> [--p 2,1] [--strategy auto] \
                    [--format edgelist|dimacs] [--node-budget N] [--restarts N]"
            .into());
    }
    let graph = load_graph(&files[0], opts.format)?;
    let req = SolveRequest {
        graph,
        pvec: opts.pvec,
        strategy: opts.strategy,
        budget: opts.budget,
    };
    let report = solve(&req).map_err(|e| e.to_string())?;
    println!(
        "{}",
        Obj::new()
            .str("file", &files[0])
            .raw("report", &report.to_json())
            .finish()
    );
    Ok(())
}

/// Instance files a batch directory contributes, in sorted order.
fn instance_files(dir: &str) -> Result<Vec<String>, String> {
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if !path.is_file() {
                return None;
            }
            let name = path.to_str()?;
            let lower = name.to_ascii_lowercase();
            [".txt", ".edges", ".edgelist", ".col", ".dimacs"]
                .iter()
                .any(|ext| lower.ends_with(ext))
                .then(|| name.to_string())
        })
        .collect();
    files.sort();
    Ok(files)
}

/// `dclab batch <dir> [--p 2,1] [--strategy auto] ...` — every recognised
/// instance file in the directory, solved in parallel (`DCLAB_THREADS`),
/// one JSON line per instance in sorted-filename order.
pub fn batch_cmd(args: &[String]) -> Result<(), String> {
    let (dirs, opts) = parse_opts(args)?;
    if dirs.len() != 1 {
        return Err("usage: dclab batch <dir> [--p 2,1] [--strategy auto] \
                    [--node-budget N] [--restarts N]"
            .into());
    }
    let files = instance_files(&dirs[0])?;
    if files.is_empty() {
        return Err(format!(
            "{}: no instance files (*.txt, *.edges, *.edgelist, *.col, *.dimacs)",
            dirs[0]
        ));
    }
    // Load sequentially (I/O), solve in parallel (engine fan-out). The
    // request slice is paired with a file index per entry so load failures
    // don't shift the mapping.
    let mut requests: Vec<SolveRequest> = Vec::with_capacity(files.len());
    let mut request_file: Vec<usize> = Vec::with_capacity(files.len());
    let mut load_errors: Vec<(usize, String)> = Vec::new();
    for (i, f) in files.iter().enumerate() {
        match load_graph(f, opts.format) {
            Ok(graph) => {
                requests.push(SolveRequest {
                    graph,
                    pvec: opts.pvec.clone(),
                    strategy: opts.strategy,
                    budget: opts.budget,
                });
                request_file.push(i);
            }
            Err(e) => load_errors.push((i, e)),
        }
    }
    let reports = solve_batch(&requests);
    let mut lines: Vec<(usize, String)> = Vec::with_capacity(files.len());
    for (&i, result) in request_file.iter().zip(reports) {
        let line = match result {
            Ok(report) => Obj::new()
                .str("file", &files[i])
                .raw("report", &report.to_json())
                .finish(),
            Err(e) => Obj::new()
                .str("file", &files[i])
                .str("error", &e.to_string())
                .finish(),
        };
        lines.push((i, line));
    }
    for (i, e) in load_errors {
        lines.push((
            i,
            Obj::new().str("file", &files[i]).str("error", &e).finish(),
        ));
    }
    lines.sort_by_key(|&(i, _)| i);
    for (_, line) in lines {
        println!("{line}");
    }
    Ok(())
}
