//! `dclab solve` / `dclab batch` / `dclab serve`: the engine-backed
//! instance commands and the long-running solve service.

use dclab_core::pvec::PVec;
use dclab_engine::json::Obj;
use dclab_engine::{solve, solve_batch, Budget, OraclePolicy, SolveReport, SolveRequest, Strategy};
use dclab_graph::io;
use dclab_graph::Graph;
use dclab_serve::persist;
use dclab_serve::CacheKey;
use dclab_store::Store;

/// Flags shared by `solve` and `batch`.
struct Opts {
    pvec: PVec,
    strategy: Strategy,
    budget: Budget,
    oracle: OraclePolicy,
    format: Option<io::Format>,
    /// Persistent solution archive: look up before solving, append after.
    store: Option<String>,
    /// Write the solve's span trace (JSON) to this file (`solve` only).
    trace_out: Option<String>,
}

/// The `--help` text for the instance commands (including the worker
/// thread-count precedence contract).
pub const HELP: &str = "\
dclab — distance-constrained labeling via TSP

USAGE:
  dclab solve <file> [FLAGS]     solve one instance, print a JSON SolveReport
  dclab batch <dir>  [FLAGS]     solve every instance file in <dir> in parallel
  dclab serve [SERVE FLAGS]      run the HTTP solve service
  dclab loadgen [LOADGEN FLAGS]  concurrent soak against running server(s)
  dclab gen <family> [FLAGS]     generate instance corpora (run `dclab gen`
                                 with no family for families and flags)
  dclab store <sub> <archive>    stats | compact | export | import on a
                                 persistent solution archive
  dclab oracle <sub> <file>      build | stats: hub-label distance oracles
                                 (pruned landmark labeling) offline
  dclab bench-gate [FLAGS]       CI perf gate: compare fresh BENCH_*.json
                                 against committed baselines (see its --help)
  dclab e1..e8 | all [--quick]   the paper's experiment tables

SOLVE/BATCH FLAGS:
  --p <p1,p2,...>       constraint vector (default 2,1)
  --strategy <name>     exact | branch-bound | approx15 | heuristic | greedy |
                        diam2-pip | l1-coloring | oracle-path | auto | race
                        (default auto). race runs 2-4 portfolio members
                        concurrently with a shared incumbent bound; the first
                        optimality proof cancels the rest. oracle-path is the
                        matrix-free large-n route over a distance oracle
  --oracle <policy>     auto | dense | hub: distance backend for oracle-routed
                        solves (default auto: hub labels exactly when the
                        dense pipeline would cross the 1 GiB memory wall)
  --format <fmt>        edgelist | dimacs (default: guess from extension)
  --node-budget <N>     branch-and-bound node budget
  --restarts <N>        chained-LK restarts
  --deadline-ms <N>     wall-clock budget: every route becomes anytime and
                        returns its best incumbent when the clock fires
                        (report carries \"timed_out\":true). Without it,
                        solves are purely logical and bit-reproducible.
  --store <archive>     persistent solution archive: canonical lookups skip
                        the solve, fresh solves are appended — the same file
                        `dclab serve --store-path` warm-boots from
  --trace <file>        (solve only) run under a live span trace and write
                        the span tree as JSON; the report also carries
                        per-phase totals in stats.phases. Convert with
                        `dclab trace export --chrome <file>`
  --threads <N>         worker threads for this run. Precedence:
                        --threads beats the DCLAB_THREADS environment
                        variable, which beats available_parallelism.

SERVE FLAGS:
  --addr <host:port>    bind address (default 127.0.0.1:8080; port 0 = ephemeral)
  --workers <N>         worker threads (default: like --threads precedence)
  --cache-mb <N>        report-cache budget in MiB (default 64)
  --queue-cap <N>       bounded connection queue (default 4 x workers)
  --store-path <file>   persistent solution archive: warm-boot the cache on
                        start, write-behind fresh solves, seal on shutdown
  --max-deadline-ms <N> server-side cap on client deadline-ms requests
                        (default 60000); requests without a deadline are
                        untouched
  --slow-solve-ms <N>   solves at or over this wall time get a structured
                        slow-solve log line (stderr + GET /debug/slowlog;
                        default 250)
  --max-conns <N>       reactor connection budget (default 1024); connections
                        beyond it are shed with 503 + Retry-After at accept,
                        before a worker is consumed
  --conn-idle-ms <N>    idle deadline per connection (default 5000); idle
                        keep-alive connections past it are reaped
                        (dclab_conns_reaped_total)
  --max-body-bytes <N>  request-body cap (default 8388608 = 8 MiB); larger
                        declared bodies get 413 with a JSON error
  --cluster <a,b,...>   replica list incl. this server's --addr; canonical
                        instance identities are consistent-hashed to an owner
                        replica, non-owners proxy one hop (x-dclab-routed)
  --legacy-blocking     serve with the pre-reactor thread-per-connection path
                        (the reactor's differential oracle; capacity = workers)
  --self-test           start on an ephemeral port, replay the loadgen corpus
                        (~2 s), assert cache hits + clean shutdown, then exit
  --duration-ms <N>     self-test duration (default 2000)

LOADGEN FLAGS:
  --addrs <a,b,...>     target server address(es); clients round-robin
  --connections <N>     concurrent keep-alive connections (default 8)
  --duration-ms <N>     soak duration (default 5000)
  --seed <N>            corpus seed (default 42)
  --instances <N>       corpus size (default 12)
  prints one JSON line: latency percentiles (p50/p90/p99/p999 us), cache
  hit rate, x-dclab-routed tallies, sheds, hard_5xx
";

fn parse_pvec(s: &str) -> Result<PVec, String> {
    let entries: Result<Vec<u64>, _> = s.split(',').map(|t| t.trim().parse::<u64>()).collect();
    let entries = entries.map_err(|e| format!("bad p-vector '{s}': {e}"))?;
    PVec::new(entries)
        .ok_or_else(|| format!("bad p-vector '{s}': must be non-empty and not all-zero"))
}

fn parse_opts(args: &[String]) -> Result<(Vec<String>, Opts), String> {
    let mut positional = Vec::new();
    let mut opts = Opts {
        pvec: PVec::l21(),
        strategy: Strategy::Auto,
        budget: Budget::default(),
        oracle: OraclePolicy::Auto,
        format: None,
        store: None,
        trace_out: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--p" => opts.pvec = parse_pvec(&flag_value("--p")?)?,
            "--strategy" => opts.strategy = flag_value("--strategy")?.parse()?,
            "--node-budget" => {
                let v = flag_value("--node-budget")?;
                opts.budget.node_budget =
                    Some(v.parse().map_err(|e| format!("bad --node-budget: {e}"))?);
            }
            "--restarts" => {
                let v = flag_value("--restarts")?;
                opts.budget.restarts = Some(v.parse().map_err(|e| format!("bad --restarts: {e}"))?);
            }
            "--deadline-ms" => {
                let v = flag_value("--deadline-ms")?;
                opts.budget.deadline_ms =
                    Some(v.parse().map_err(|e| format!("bad --deadline-ms: {e}"))?);
            }
            "--threads" => {
                let v = flag_value("--threads")?;
                let n: usize = v.parse().map_err(|e| format!("bad --threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".into());
                }
                // Beats DCLAB_THREADS, which beats available_parallelism
                // (see `dclab_par::default_threads`).
                dclab_par::set_thread_override(Some(n));
            }
            "--format" => {
                opts.format = Some(match flag_value("--format")?.as_str() {
                    "edgelist" | "edge-list" => io::Format::EdgeList,
                    "dimacs" | "col" => io::Format::Dimacs,
                    other => return Err(format!("unknown format '{other}'")),
                })
            }
            "--oracle" => opts.oracle = flag_value("--oracle")?.parse()?,
            "--store" => opts.store = Some(flag_value("--store")?),
            "--trace" => opts.trace_out = Some(flag_value("--trace")?),
            flag if flag.starts_with("--") => return Err(format!("unknown flag '{flag}'")),
            _ => positional.push(arg.clone()),
        }
    }
    Ok((positional, opts))
}

fn load_graph(path: &str, format: Option<io::Format>) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let format = format.unwrap_or_else(|| io::Format::from_path(path));
    io::parse(&text, format).map_err(|e| format!("{path}: {e}"))
}

/// Open the archive named by `--store`, if any.
fn open_store(opts: &Opts) -> Result<Option<Store>, String> {
    match &opts.store {
        Some(path) => Ok(Some(
            Store::open(path).map_err(|e| format!("{path}: {e}"))?.0,
        )),
        None => Ok(None),
    }
}

/// Archive-aware solve of one loaded instance: lookup first (a hit skips
/// the engine entirely), append after a fresh solve. Returns the report
/// plus the store disposition for the output line.
fn solve_with_store(
    store: Option<&Store>,
    graph: Graph,
    opts: &Opts,
) -> Result<(SolveReport, Option<&'static str>), String> {
    let key = store.map(|_| {
        CacheKey::for_request(&graph, &opts.pvec, opts.strategy, opts.budget, opts.oracle)
    });
    if let (Some(store), Some(key)) = (store, &key) {
        if let Some(report) = persist::store_lookup(store, key) {
            return Ok((report, Some("hit")));
        }
    }
    let req = SolveRequest {
        graph,
        pvec: opts.pvec.clone(),
        strategy: opts.strategy,
        budget: opts.budget,
        oracle: opts.oracle,
    };
    let report = solve(&req).map_err(|e| e.to_string())?;
    if let (Some(store), Some(key)) = (store, &key) {
        // Timed-out harvests stay out of the archive (mirrors the serve
        // layer): persisting one would freeze a machine/load-dependent
        // quality level behind every future lookup and warm boot.
        if report.stats.timed_out {
            return Ok((report, Some("skipped-timeout")));
        }
        // A full disk must not discard the solve we just paid for: warn
        // and keep the result flowing to stdout.
        if let Err(e) = persist::store_append(store, key, &report) {
            eprintln!("warning: store append failed: {e}");
        }
    }
    Ok((report, store.map(|_| "miss")))
}

/// Seal the archive at command exit; failure is a warning, never a lost
/// result.
fn finish_store(store: &Option<Store>) {
    if let Some(store) = store {
        if let Err(e) = store.close_clean() {
            eprintln!("warning: store flush failed: {e}");
        }
    }
}

fn report_line(file: &str, report: &SolveReport, store_status: Option<&str>) -> String {
    let obj = Obj::new().str("file", file);
    let obj = match store_status {
        Some(status) => obj.str("store", status),
        None => obj,
    };
    obj.raw("report", &report.to_json()).finish()
}

/// `dclab solve <file> [--p 2,1] [--strategy auto] [--store archive] ...` —
/// one instance, one JSON `SolveReport` line on stdout.
pub fn solve_cmd(args: &[String]) -> Result<(), String> {
    let (files, opts) = parse_opts(args)?;
    if files.len() != 1 {
        return Err("usage: dclab solve <file> [--p 2,1] [--strategy auto] \
                    [--format edgelist|dimacs] [--node-budget N] [--restarts N] \
                    [--store archive]"
            .into());
    }
    let store = open_store(&opts)?;
    let graph = load_graph(&files[0], opts.format)?;
    let (report, store_status) = match &opts.trace_out {
        None => solve_with_store(store.as_ref(), graph, &opts)?,
        Some(path) => {
            // Traced run: install a live trace for the solve, then write
            // the finished span tree next to the report. Archive hits
            // still trace (the trace just shows no solve phases).
            let trace = dclab_trace::Trace::enabled();
            let result = {
                let _install = trace.install();
                solve_with_store(store.as_ref(), graph, &opts)
            };
            let (report, store_status) = result?;
            let finished = trace
                .finish(files[0].clone(), report.strategy_used.name().to_string())
                .expect("trace was enabled");
            std::fs::write(path, finished.to_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote trace ({} spans, {}us) to {path}",
                finished.spans.len(),
                finished.total_us
            );
            (report, store_status)
        }
    };
    finish_store(&store);
    println!("{}", report_line(&files[0], &report, store_status));
    Ok(())
}

/// Instance files a batch directory contributes, in sorted order.
fn instance_files(dir: &str) -> Result<Vec<String>, String> {
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .map_err(|e| format!("{dir}: {e}"))?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            if !path.is_file() {
                return None;
            }
            let name = path.to_str()?;
            let lower = name.to_ascii_lowercase();
            [".txt", ".edges", ".edgelist", ".col", ".dimacs"]
                .iter()
                .any(|ext| lower.ends_with(ext))
                .then(|| name.to_string())
        })
        .collect();
    files.sort();
    Ok(files)
}

/// `dclab batch <dir> [--p 2,1] [--strategy auto] [--store archive] ...` —
/// every recognised instance file in the directory, solved in parallel
/// (`DCLAB_THREADS`), one JSON line per instance in sorted-filename order.
/// With `--store`, archived instances skip the solve entirely and fresh
/// solves are appended, so repeated batch runs are pure lookups.
pub fn batch_cmd(args: &[String]) -> Result<(), String> {
    let (dirs, opts) = parse_opts(args)?;
    if dirs.len() != 1 {
        return Err("usage: dclab batch <dir> [--p 2,1] [--strategy auto] \
                    [--node-budget N] [--restarts N] [--store archive]"
            .into());
    }
    let files = instance_files(&dirs[0])?;
    if files.is_empty() {
        return Err(format!(
            "{}: no instance files (*.txt, *.edges, *.edgelist, *.col, *.dimacs)",
            dirs[0]
        ));
    }
    let store = open_store(&opts)?;
    // Load sequentially (I/O), answer archived instances immediately, and
    // solve only the rest in parallel (engine fan-out). The request slice
    // is paired with a file index per entry so load failures and store
    // hits don't shift the mapping.
    let mut requests: Vec<SolveRequest> = Vec::with_capacity(files.len());
    let mut request_file: Vec<usize> = Vec::with_capacity(files.len());
    let mut request_key: Vec<Option<CacheKey>> = Vec::with_capacity(files.len());
    let mut lines: Vec<(usize, String)> = Vec::with_capacity(files.len());
    for (i, f) in files.iter().enumerate() {
        match load_graph(f, opts.format) {
            Ok(graph) => {
                let key = store.as_ref().map(|_| {
                    CacheKey::for_request(
                        &graph,
                        &opts.pvec,
                        opts.strategy,
                        opts.budget,
                        opts.oracle,
                    )
                });
                if let (Some(store), Some(key)) = (&store, &key) {
                    if let Some(report) = persist::store_lookup(store, key) {
                        lines.push((i, report_line(&files[i], &report, Some("hit"))));
                        continue;
                    }
                }
                requests.push(SolveRequest {
                    graph,
                    pvec: opts.pvec.clone(),
                    strategy: opts.strategy,
                    budget: opts.budget,
                    oracle: opts.oracle,
                });
                request_file.push(i);
                request_key.push(key);
            }
            Err(e) => lines.push((
                i,
                Obj::new().str("file", &files[i]).str("error", &e).finish(),
            )),
        }
    }
    let reports = solve_batch(&requests);
    for ((&i, key), result) in request_file.iter().zip(&request_key).zip(reports) {
        let line = match result {
            Ok(report) => {
                let mut status = store.as_ref().map(|_| "miss");
                if let (Some(store), Some(key)) = (&store, key) {
                    if report.stats.timed_out {
                        // Same guard as the serve layer: deadline-degraded
                        // harvests are answers, not archive records.
                        status = Some("skipped-timeout");
                    } else if let Err(e) = persist::store_append(store, key, &report) {
                        // An append failure must not abort the batch: every
                        // solved report still prints; the archive just
                        // misses this record.
                        eprintln!("warning: store append failed for {}: {e}", files[i]);
                    }
                }
                report_line(&files[i], &report, status)
            }
            Err(e) => Obj::new()
                .str("file", &files[i])
                .str("error", &e.to_string())
                .finish(),
        };
        lines.push((i, line));
    }
    finish_store(&store);
    lines.sort_by_key(|&(i, _)| i);
    for (_, line) in lines {
        println!("{line}");
    }
    Ok(())
}

/// `dclab serve [--addr A] [--workers N] [--cache-mb M] [--queue-cap Q]
/// [--self-test [--duration-ms D]]` — run the HTTP solve service (see
/// `dclab_serve`), or its CI smoke mode.
pub fn serve_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = dclab_serve::ServeConfig::default();
    let mut self_test = false;
    let mut duration_ms: u64 = 2000;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = flag_value("--addr")?,
            "--workers" => {
                let v = flag_value("--workers")?;
                cfg.workers = v.parse().map_err(|e| format!("bad --workers: {e}"))?;
                if cfg.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--cache-mb" => {
                let v = flag_value("--cache-mb")?;
                cfg.cache_mb = v.parse().map_err(|e| format!("bad --cache-mb: {e}"))?;
            }
            "--queue-cap" => {
                let v = flag_value("--queue-cap")?;
                cfg.queue_cap = v.parse().map_err(|e| format!("bad --queue-cap: {e}"))?;
            }
            "--store-path" => cfg.store_path = Some(flag_value("--store-path")?),
            "--max-deadline-ms" => {
                let v = flag_value("--max-deadline-ms")?;
                cfg.max_deadline_ms = v
                    .parse()
                    .map_err(|e| format!("bad --max-deadline-ms: {e}"))?;
                if cfg.max_deadline_ms == 0 {
                    return Err("--max-deadline-ms must be at least 1".into());
                }
            }
            "--slow-solve-ms" => {
                let v = flag_value("--slow-solve-ms")?;
                cfg.slow_solve_ms = v.parse().map_err(|e| format!("bad --slow-solve-ms: {e}"))?;
            }
            "--threads" => {
                let v = flag_value("--threads")?;
                let n: usize = v.parse().map_err(|e| format!("bad --threads: {e}"))?;
                dclab_par::set_thread_override(Some(n.max(1)));
                cfg.workers = n.max(1);
            }
            "--max-conns" => {
                let v = flag_value("--max-conns")?;
                cfg.max_conns = v.parse().map_err(|e| format!("bad --max-conns: {e}"))?;
                if cfg.max_conns == 0 {
                    return Err("--max-conns must be at least 1".into());
                }
            }
            "--conn-idle-ms" => {
                let v = flag_value("--conn-idle-ms")?;
                cfg.conn_idle_ms = v.parse().map_err(|e| format!("bad --conn-idle-ms: {e}"))?;
                if cfg.conn_idle_ms == 0 {
                    return Err("--conn-idle-ms must be at least 1".into());
                }
            }
            "--max-body-bytes" => {
                let v = flag_value("--max-body-bytes")?;
                cfg.max_body_bytes = v
                    .parse()
                    .map_err(|e| format!("bad --max-body-bytes: {e}"))?;
                if cfg.max_body_bytes == 0 {
                    return Err("--max-body-bytes must be at least 1".into());
                }
            }
            "--cluster" => {
                cfg.cluster = flag_value("--cluster")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if cfg.cluster.len() < 2 {
                    return Err(
                        "--cluster needs at least two comma-separated replica addresses".into(),
                    );
                }
            }
            "--legacy-blocking" => cfg.legacy_blocking = true,
            "--self-test" => self_test = true,
            "--duration-ms" => {
                let v = flag_value("--duration-ms")?;
                duration_ms = v.parse().map_err(|e| format!("bad --duration-ms: {e}"))?;
            }
            other => return Err(format!("unknown serve flag '{other}'")),
        }
    }

    if self_test {
        let summary = dclab_serve::self_test(std::time::Duration::from_millis(duration_ms))?;
        println!("{summary}");
        return Ok(());
    }

    let handle = dclab_serve::start(cfg.clone()).map_err(|e| format!("start {}: {e}", cfg.addr))?;
    // One machine-readable line so scripts can find the (possibly
    // ephemeral) port; humans get a hint about the admin endpoint.
    let warm_boot = handle
        .ctx()
        .metrics
        .store_warm_boot
        .load(std::sync::atomic::Ordering::Relaxed);
    let line = Obj::new()
        .str("serving", &handle.addr().to_string())
        .usize("workers", cfg.workers.max(1))
        .usize("cache_mb", cfg.cache_mb);
    let line = match &cfg.store_path {
        Some(path) => line.str("store", path).u64("warm_boot", warm_boot),
        None => line,
    };
    let line = if cfg.cluster.is_empty() {
        line
    } else {
        line.str("cluster", &cfg.cluster.join(","))
    };
    println!("{}", line.finish());
    eprintln!("dclab serve: POST /shutdown for graceful shutdown");
    handle.join();
    Ok(())
}

/// `dclab loadgen --addrs a,b [--connections N] [--duration-ms D]
/// [--seed S] [--instances N]` — concurrent soak against already-running
/// server(s); prints one JSON stats line (see `dclab_serve::soak`).
pub fn loadgen_cmd(args: &[String]) -> Result<(), String> {
    let mut cfg = dclab_serve::SoakConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag_value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addrs" => {
                cfg.addrs = flag_value("--addrs")?
                    .split(',')
                    .map(|s| s.trim())
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        s.parse()
                            .map_err(|e| format!("bad address '{s}' in --addrs: {e}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
            }
            "--connections" => {
                let v = flag_value("--connections")?;
                cfg.connections = v.parse().map_err(|e| format!("bad --connections: {e}"))?;
                if cfg.connections == 0 {
                    return Err("--connections must be at least 1".into());
                }
            }
            "--duration-ms" => {
                let v = flag_value("--duration-ms")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --duration-ms: {e}"))?;
                cfg.duration = std::time::Duration::from_millis(ms);
            }
            "--seed" => {
                let v = flag_value("--seed")?;
                cfg.seed = v.parse().map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--instances" => {
                let v = flag_value("--instances")?;
                cfg.instances = v.parse().map_err(|e| format!("bad --instances: {e}"))?;
            }
            other => return Err(format!("unknown loadgen flag '{other}'")),
        }
    }
    if cfg.addrs.is_empty() {
        return Err("loadgen needs --addrs <host:port[,host:port...]>".into());
    }
    let stats = dclab_serve::soak(&cfg)?;
    println!("{}", stats.to_json());
    if stats.transport_errors > 0 {
        return Err(format!("{} transport errors", stats.transport_errors));
    }
    Ok(())
}
