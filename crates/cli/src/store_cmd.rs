//! `dclab store` — manage a persistent solution archive offline:
//! `stats` (open + recover + report), `compact` (rewrite live records,
//! atomic swap), `export` (standalone snapshot), `import` (merge with
//! key-level dedup).

use dclab_engine::binary::report_from_bytes;
use dclab_engine::json::Obj;
use dclab_store::Store;

pub const STORE_HELP: &str = "\
usage: dclab store <subcommand> <archive> [args]

  stats   <archive>            open (recovering any torn tail), print JSON
  compact <archive>            rewrite live records, atomic rename, bump generation
  export  <archive> <dest>     write a standalone snapshot of live records
  import  <archive> <src>      merge another archive's records (dedup by key)
";

fn open(path: &str) -> Result<(Store, dclab_store::OpenStats), String> {
    Store::open(path).map_err(|e| format!("{path}: {e}"))
}

/// Inspection subcommands must not conjure an empty archive out of a
/// typo'd path — require the file to exist first. (`import` still creates
/// its destination: merging into a fresh archive is the point.)
fn open_existing(path: &str) -> Result<(Store, dclab_store::OpenStats), String> {
    if !std::path::Path::new(path).exists() {
        return Err(format!("{path}: no such archive"));
    }
    open(path)
}

/// Per-strategy live-record histogram (decodes every record's key).
fn strategy_histogram(store: &Store) -> Result<String, String> {
    let mut counts: std::collections::BTreeMap<&'static str, u64> = Default::default();
    let mut undecodable_reports = 0u64;
    for (key, val) in store.iter_live().map_err(|e| e.to_string())? {
        *counts.entry(key.strategy.name()).or_default() += 1;
        if report_from_bytes(&val).is_err() {
            undecodable_reports += 1;
        }
    }
    let obj = counts
        .into_iter()
        .fold(Obj::new(), |obj, (name, count)| obj.u64(name, count));
    Ok(obj.u64("undecodable_reports", undecodable_reports).finish())
}

pub fn store_cmd(args: &[String]) -> Result<(), String> {
    let mut words = args.iter().filter(|a| !a.starts_with("--"));
    let Some(sub) = words.next().map(String::as_str) else {
        print!("{STORE_HELP}");
        return Ok(());
    };
    let archive = words.next().cloned();
    let extra = words.next().cloned();
    let Some(path) = archive else {
        return Err(format!("store {sub} needs an <archive> path\n{STORE_HELP}"));
    };
    match sub {
        "stats" => {
            let (store, opened) = open_existing(&path)?;
            let stats = store.stats();
            println!(
                "{}",
                Obj::new()
                    .str("archive", &path)
                    .u64("records", stats.live)
                    .u64("bytes", stats.bytes)
                    .u64("generation", stats.generation)
                    .bool("clean_footer", stats.clean_footer)
                    .u64("superseded", opened.superseded)
                    .u64("torn_bytes_dropped", opened.torn_bytes_dropped)
                    .raw("strategies", &strategy_histogram(&store)?)
                    .finish()
            );
            Ok(())
        }
        "compact" => {
            let (store, _) = open_existing(&path)?;
            let c = store.compact().map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{}",
                Obj::new()
                    .str("archive", &path)
                    .u64("records", c.live)
                    .u64("bytes_before", c.bytes_before)
                    .u64("bytes_after", c.bytes_after)
                    .u64("generation", c.generation)
                    .finish()
            );
            Ok(())
        }
        "export" => {
            let dest = extra.ok_or("usage: dclab store export <archive> <dest>")?;
            let (store, _) = open_existing(&path)?;
            let exported = store.export(&dest).map_err(|e| format!("{dest}: {e}"))?;
            println!(
                "{}",
                Obj::new()
                    .str("archive", &path)
                    .str("dest", &dest)
                    .u64("exported", exported)
                    .finish()
            );
            Ok(())
        }
        "import" => {
            let src = extra.ok_or("usage: dclab store import <archive> <src>")?;
            let (store, _) = open(&path)?;
            let i = store.import(&src).map_err(|e| format!("{src}: {e}"))?;
            store.close_clean().map_err(|e| format!("{path}: {e}"))?;
            println!(
                "{}",
                Obj::new()
                    .str("archive", &path)
                    .str("src", &src)
                    .u64("scanned", i.scanned)
                    .u64("added", i.added)
                    .u64("skipped", i.skipped)
                    .finish()
            );
            Ok(())
        }
        other => Err(format!("unknown store subcommand '{other}'\n{STORE_HELP}")),
    }
}
