//! E2 — Exact scaling (Corollary 1a).
//!
//! Held–Karp on the reduced instance is `O(2^n n²)`; the naive
//! sorted-order oracle is `Θ(n!·n²)`. The table shows wall-clock growth —
//! the doubling-per-vertex shape for Held–Karp and the factorial cliff for
//! the oracle (it drops out after n = 10).

use super::{header, ms, timed};
use dclab_core::baseline::exact::exact_labeling_bruteforce;
use dclab_core::pvec::PVec;
use dclab_core::solver::solve_exact;
use dclab_graph::generators::random;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E2 — exact scaling: Held–Karp O(2^n n²) vs factorial oracle");
    let max_n = if quick { 14 } else { 20 };
    let p = PVec::l21();
    println!(
        "{:<6} {:>12} {:>14} {:>10}",
        "n", "Held–Karp", "oracle (n!)", "λ(2,1)"
    );
    let mut rng = StdRng::seed_from_u64(0xE2);
    let mut prev_hk = 0.0f64;
    for n in (8..=max_n).step_by(2) {
        let g = random::gnp_with_diameter_at_most(&mut rng, n, 0.5, 2);
        let (sol, hk_ms) = timed(|| solve_exact(&g, &p).unwrap());
        let oracle = if n <= 10 {
            let (res, o_ms) = timed(|| exact_labeling_bruteforce(&g, &p));
            assert_eq!(res.1, sol.span);
            ms(o_ms)
        } else {
            "—".into()
        };
        let growth = if prev_hk > 0.0 {
            format!(" (×{:.1})", hk_ms / prev_hk)
        } else {
            String::new()
        };
        println!(
            "{:<6} {:>12} {:>14} {:>10}{growth}",
            n,
            ms(hk_ms),
            oracle,
            sol.span
        );
        prev_hk = hk_ms;
    }
    println!("\nshape: Held–Karp time roughly ×4 per +2 vertices (2^n n²); the");
    println!("oracle is already orders of magnitude slower at n = 10.");
}
