//! E7 — Corollary 3: the `p_max`-approximation from `L(1)`.
//!
//! Scale an optimal `L(1^k)`-labeling by `p_max`: always a valid
//! `L(p)`-labeling, within factor `p_max` of optimal. The table reports
//! measured ratios against the exact TSP-route optimum.

use super::header;
use dclab_core::l1::{solve_pmax_approx, L1Engine};
use dclab_core::pvec::PVec;
use dclab_core::solver::solve_exact;
use dclab_graph::generators::random;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E7 — p_max-approximation via L(1): measured vs guaranteed ratio");
    let trials = if quick { 4 } else { 15 };
    println!(
        "{:<12} {:>8} {:>10} {:>10} {:>12}",
        "p", "trials", "mean", "max", "guarantee"
    );
    let mut rng = StdRng::seed_from_u64(0xE7);
    let ps = [
        PVec::l21(),
        PVec::lpq(2, 2).unwrap(),
        PVec::lpq(3, 2).unwrap(),
        PVec::lpq(4, 2).unwrap(),
        PVec::new(vec![2, 1, 1]).unwrap(),
    ];
    for p in &ps {
        let mut ratios = Vec::new();
        for _ in 0..trials {
            let g = random::gnp_with_diameter_at_most(&mut rng, 11, 0.5, p.k() as u32);
            let opt = solve_exact(&g, p).unwrap();
            let approx = solve_pmax_approx(&g, p, L1Engine::Exact);
            assert!(approx.labeling.validate(&g, p).is_ok());
            assert!(
                approx.span <= p.pmax() * opt.span.max(1),
                "guarantee breach"
            );
            ratios.push(approx.span as f64 / opt.span.max(1) as f64);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<12} {:>8} {:>10.3} {:>10.3} {:>12.1}",
            p.to_string(),
            trials,
            mean,
            max,
            p.pmax() as f64
        );
    }
    println!("\nshape: measured ratios track p_max/p_min-ish behaviour and never");
    println!("exceed the p_max guarantee (Corollary 3).");
}
