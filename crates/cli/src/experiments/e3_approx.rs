//! E3 — 1.5-approximation quality (Corollary 1b).
//!
//! Hoogeveen/Christofides on the reduced metric instance: measured
//! approximation ratios vs the Held–Karp optimum across graph families and
//! constraint vectors. The guarantee is 1.5; measured ratios sit far below.

use super::header;
use dclab_core::pvec::PVec;
use dclab_core::solver::{solve_approx15, solve_exact};
use dclab_graph::generators::{classic, random};
use dclab_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E3 — 1.5-approximation: measured ratio vs Held–Karp optimum");
    let trials = if quick { 5 } else { 20 };
    println!(
        "{:<22} {:<10} {:>8} {:>10} {:>10} {:>10}",
        "family", "p", "trials", "mean", "max", "guarantee"
    );
    let mut rng = StdRng::seed_from_u64(0xE3);
    type GraphGen = Box<dyn FnMut(&mut StdRng) -> Graph>;
    let settings: Vec<(&str, GraphGen, PVec)> = vec![
        (
            "G(14,.5) diam2",
            Box::new(|r: &mut StdRng| random::gnp_with_diameter_at_most(r, 14, 0.5, 2)),
            PVec::l21(),
        ),
        (
            "G(16,.6) diam2",
            Box::new(|r: &mut StdRng| random::gnp_with_diameter_at_most(r, 16, 0.6, 2)),
            PVec::l21(),
        ),
        (
            "split(5,9)",
            Box::new(|r: &mut StdRng| loop {
                // Sparse cross edges occasionally give diameter 3; resample.
                let g = random::random_split(r, 5, 9, 0.4);
                if dclab_graph::diameter::has_diameter_at_most(&g, 2) {
                    return g;
                }
            }),
            PVec::l21(),
        ),
        (
            "multipartite",
            Box::new(|_r: &mut StdRng| classic::complete_multipartite(&[4, 5, 3, 4])),
            PVec::lpq(3, 2).unwrap(),
        ),
        (
            "G(13,.35) diam3",
            Box::new(|r: &mut StdRng| random::gnp_with_diameter_at_most(r, 13, 0.35, 3)),
            PVec::new(vec![2, 2, 1]).unwrap(),
        ),
    ];
    for (name, mut gen, p) in settings {
        let mut ratios = Vec::new();
        for _ in 0..trials {
            let g = gen(&mut rng);
            let exact = solve_exact(&g, &p).unwrap();
            let approx = solve_approx15(&g, &p).unwrap();
            assert!(approx.labeling.validate(&g, &p).is_ok());
            assert!(2 * approx.span <= 3 * exact.span, "ratio guarantee breach");
            ratios.push(approx.span as f64 / exact.span.max(1) as f64);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        println!(
            "{:<22} {:<10} {:>8} {:>10.3} {:>10.3} {:>10}",
            name,
            p.to_string(),
            ratios.len(),
            mean,
            max,
            "1.500"
        );
    }
    println!("\nshape: every measured ratio ≤ 1.5 (most ≈ 1.0–1.25), matching Cor 1b.");
}
