//! E1 — Reduction correctness (Theorem 2 / Claim 1 / Figure 1).
//!
//! For a corpus of small graphs and constraint vectors, the span via the
//! TSP reduction + Held–Karp must equal the reduction-independent oracle
//! (exhaustive sorted-order search), and the recovered labeling must
//! validate.

use super::header;
use dclab_core::baseline::exact::exact_labeling_bruteforce;
use dclab_core::pvec::PVec;
use dclab_core::solver::{solve_exact, SolveError};
use dclab_graph::generators::{classic, random};
use dclab_graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

pub fn run(quick: bool) {
    header("E1 — reduction correctness: TSP route == independent oracle");
    let trials = if quick { 10 } else { 60 };
    let ps = [
        PVec::l21(),
        PVec::ones(2),
        PVec::lpq(3, 2).unwrap(),
        PVec::lpq(2, 2).unwrap(),
        PVec::new(vec![2, 2, 1]).unwrap(),
        PVec::new(vec![4, 3, 2]).unwrap(),
    ];
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>10}",
        "p", "eligible", "agree", "mismatch", "max span"
    );
    let mut rng = StdRng::seed_from_u64(0xE1);
    for p in &ps {
        let mut eligible = 0u32;
        let mut agree = 0u32;
        let mut mismatch = 0u32;
        let mut max_span = 0u64;
        let mut corpus: Vec<Graph> = vec![
            classic::path(3),
            classic::cycle(4),
            classic::cycle(5),
            classic::complete(6),
            classic::star(7),
            classic::wheel(6),
            classic::petersen(),
            classic::complete_bipartite(3, 4),
            classic::split_graph(3, 4),
        ];
        for _ in 0..trials {
            let n = 5 + rng.random_range(0..4usize);
            corpus.push(random::gnp(&mut rng, n, 0.5));
        }
        for g in &corpus {
            if g.n() > 9 {
                continue;
            }
            match solve_exact(g, p) {
                Ok(sol) => {
                    eligible += 1;
                    let (_, want) = exact_labeling_bruteforce(g, p);
                    let valid = sol.labeling.validate(g, p).is_ok();
                    if sol.span == want && valid {
                        agree += 1;
                        max_span = max_span.max(sol.span);
                    } else {
                        mismatch += 1;
                        eprintln!("MISMATCH: p={p} g={g:?} got={} want={want}", sol.span);
                    }
                }
                Err(SolveError::Reduction(_)) => {} // out of Theorem 2 scope
                Err(e) => panic!("unexpected solver error: {e}"),
            }
        }
        println!(
            "{:<12} {:>10} {:>10} {:>12} {:>10}",
            p.to_string(),
            eligible,
            agree,
            mismatch,
            max_span
        );
        assert_eq!(mismatch, 0, "reduction disagreed with the oracle");
    }
    println!("\nresult: zero mismatches — Theorem 2 + Claim 1 hold on the corpus.");
}
