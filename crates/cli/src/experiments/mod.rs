//! One module per experiment table of `EXPERIMENTS.md`.

pub mod e1_reduction;
pub mod e2_exact_scaling;
pub mod e3_approx;
pub mod e4_heuristics;
pub mod e5_diam2;
pub mod e6_l1;
pub mod e7_pmax;
pub mod e8_ablation;

use std::time::Instant;

/// Time a closure, returning (result, milliseconds).
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Format milliseconds compactly.
pub fn ms(x: f64) -> String {
    if x < 1.0 {
        format!("{:.3}ms", x)
    } else if x < 1000.0 {
        format!("{:.1}ms", x)
    } else {
        format!("{:.2}s", x / 1e3)
    }
}

pub fn header(title: &str) {
    println!("\n## {title}\n");
}
