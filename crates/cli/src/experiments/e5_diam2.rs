//! E5 — Diameter-2 `L(p,q)` via Partition into Paths (Corollary 2, Fig. 2).
//!
//! Part A: the PIP route agrees with the TSP route on random diameter-2
//! graphs, in both the `p ≤ q` and `p > q` (complement) cases.
//! Part B: the polynomial cotree DP scales on cographs where the subset DP
//! hits its exponential wall — the FPT shape of the Gajarský et al. claim.

use super::{header, ms, timed};
use dclab_core::diam2::{solve_diam2_lpq, PipSolver};
use dclab_core::pvec::PVec;
use dclab_core::solver::solve_exact;
use dclab_graph::generators::random;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E5a — Corollary 2 agreement: PIP route == TSP route (diam 2)");
    let trials = if quick { 5 } else { 25 };
    println!(
        "{:<12} {:>8} {:>8} {:>10}",
        "(p,q)", "trials", "agree", "complement"
    );
    let mut rng = StdRng::seed_from_u64(0xE5);
    for (p, q) in [(1u64, 2u64), (2, 1), (2, 2), (3, 2), (2, 3), (4, 3), (3, 4)] {
        let pv = PVec::lpq(p, q).unwrap();
        if !pv.is_smooth() {
            continue;
        }
        let mut agree = 0;
        let mut on_complement = false;
        for _ in 0..trials {
            let g = random::gnp_with_diameter_at_most(&mut rng, 12, 0.5, 2);
            let tsp = solve_exact(&g, &pv).unwrap();
            let pip = solve_diam2_lpq(&g, p, q, PipSolver::SubsetDp).unwrap();
            assert_eq!(tsp.span, pip.span, "Corollary 2 equality failed");
            on_complement = pip.on_complement;
            agree += 1;
        }
        println!(
            "{:<12} {:>8} {:>8} {:>10}",
            format!("({p},{q})"),
            trials,
            agree,
            on_complement
        );
    }

    header("E5b — FPT shape: polynomial cotree DP vs exponential subset DP");
    println!(
        "{:<8} {:>14} {:>14} {:>10}",
        "n", "cotree DP", "subset DP", "s(paths)"
    );
    let sizes: &[usize] = if quick {
        &[12, 16, 64]
    } else {
        &[12, 16, 20, 64, 256, 1024]
    };
    for &n in sizes {
        let g = random::random_connected_cograph(&mut rng, n, 0.4);
        let (fast, fast_ms) = timed(|| solve_diam2_lpq(&g, 2, 1, PipSolver::Cotree).unwrap());
        let slow = if n <= 20 {
            let (s, slow_ms) = timed(|| solve_diam2_lpq(&g, 2, 1, PipSolver::SubsetDp).unwrap());
            assert_eq!(s.span, fast.span, "cotree DP disagreed with subset DP");
            ms(slow_ms)
        } else {
            "— (2^n)".into()
        };
        println!(
            "{:<8} {:>14} {:>14} {:>10}",
            n,
            ms(fast_ms),
            slow,
            fast.partition_size
        );
    }
    println!("\nshape: the cotree DP stays polynomial (ms at n = 1024) while the");
    println!("subset DP is capped at n = 20 — the Corollary 2 FPT claim's shape.");
}
