//! E6 — `L(1,…,1)` via coloring of `G^k` (Theorem 4).
//!
//! The nd-FPT covering engine matches exact branch-and-bound where both
//! run, and keeps scaling with `n` when `nd` stays bounded (the FPT shape);
//! DSATUR is the heuristic reference.

use super::{header, ms, timed};
use dclab_core::l1::{solve_l1, L1Engine};
use dclab_graph::generators::{classic, random};
use dclab_graph::params::nd::nd;
use dclab_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E6 — L(1,1) = coloring of G²: nd-FPT vs exact vs DSATUR");
    println!(
        "{:<22} {:>6} {:>5} {:>12} {:>12} {:>10} {:>8}",
        "graph", "n", "nd", "nd-FPT", "exact BB", "DSATUR", "span"
    );
    let mut rng = StdRng::seed_from_u64(0xE6);
    let mut rows: Vec<(String, Graph)> = vec![
        (
            "multipartite[4,4,4]".into(),
            classic::complete_multipartite(&[4, 4, 4]),
        ),
        (
            "multipartite[8,8,8]".into(),
            classic::complete_multipartite(&[8, 8, 8]),
        ),
        ("split(6,10)".into(), classic::split_graph(6, 10)),
        ("petersen".into(), classic::petersen()),
        (
            "cograph(24)".into(),
            random::random_connected_cograph(&mut rng, 24, 0.45),
        ),
        ("G(14,.4)".into(), random::connected_gnp(&mut rng, 14, 0.4)),
    ];
    if !quick {
        rows.push((
            "multipartite[50x4]".into(),
            classic::complete_multipartite(&[50, 50, 50, 50]),
        ));
        rows.push((
            "cograph(200)".into(),
            random::random_connected_cograph(&mut rng, 200, 0.4),
        ));
    }
    for (name, g) in rows {
        let ndv = nd(&g);
        let ((_, fpt_span), fpt_ms) = timed(|| solve_l1(&g, 2, L1Engine::NdFpt));
        let exact_cell = if g.n() <= 26 {
            let ((_, ex_span), ex_ms) = timed(|| solve_l1(&g, 2, L1Engine::Exact));
            assert_eq!(ex_span, fpt_span, "nd-FPT disagreed with exact BB");
            format!("{} ✓", ms(ex_ms))
        } else {
            "—".into()
        };
        let ((_, ds_span), _) = timed(|| solve_l1(&g, 2, L1Engine::Dsatur));
        println!(
            "{:<22} {:>6} {:>5} {:>12} {:>12} {:>10} {:>8}",
            name,
            g.n(),
            ndv,
            ms(fpt_ms),
            exact_cell,
            ds_span,
            fpt_span
        );
    }
    println!("\nshape: nd-FPT equals exact everywhere both run, and scales with n");
    println!("for bounded nd (Theorem 4's claim); DSATUR is optimal on these");
    println!("highly structured families but carries no guarantee.");
}
