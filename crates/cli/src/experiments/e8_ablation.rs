//! E8 — Ablations of the heuristic/approximation machinery.
//!
//! (a) local search: candidate-list size, don't-look bits, Or-opt pass,
//!     kick count — span/time on a fixed large instance;
//! (b) matching backend inside Christofides/Hoogeveen: exact DP vs blossom
//!     vs greedy — effect on the measured approximation ratio.

use super::{header, ms, timed};
use dclab_core::pvec::PVec;
use dclab_core::reduction::reduce_to_path_tsp;
use dclab_core::solver::{solve_approx15_with_backend, solve_exact};
use dclab_graph::generators::random;
use dclab_tsp::driver::{solve_path_heuristic, HeuristicConfig};
use dclab_tsp::lk::ChainedLkConfig;
use dclab_tsp::localsearch::LocalSearchConfig;
use dclab_tsp::matching::MatchingBackend;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E8a — local-search ablation on G(n,.2) diam-2, L(2,1)");
    let n = if quick { 200 } else { 500 };
    let mut rng = StdRng::seed_from_u64(0xE8);
    let density = (2.8 * (n as f64).ln() / n as f64).sqrt().min(0.6);
    let g = random::gnp_with_diameter_at_most(&mut rng, n, density, 2);
    let p = PVec::l21();
    let reduced = reduce_to_path_tsp(&g, &p).unwrap();
    let lower = (n as u64 - 1) * p.pmin();
    println!("instance: n={n}, m={}, lower bound {lower}", g.m());
    println!("{:<34} {:>10} {:>12}", "configuration", "span", "time");
    let base = LocalSearchConfig::default();
    let variants: Vec<(String, LocalSearchConfig, usize)> = vec![
        ("k=10, dlb, or-opt, kicks=20".into(), base.clone(), 20),
        (
            "k=4".into(),
            LocalSearchConfig {
                neighbor_k: 4,
                ..base.clone()
            },
            20,
        ),
        (
            "k=24".into(),
            LocalSearchConfig {
                neighbor_k: 24,
                ..base.clone()
            },
            20,
        ),
        (
            "no don't-look bits".into(),
            LocalSearchConfig {
                dont_look: false,
                ..base.clone()
            },
            20,
        ),
        (
            "no or-opt".into(),
            LocalSearchConfig {
                or_opt: false,
                ..base.clone()
            },
            20,
        ),
        ("kicks=0 (pure descent)".into(), base.clone(), 0),
        ("kicks=60".into(), base.clone(), if quick { 20 } else { 60 }),
    ];
    for (name, local, kicks) in variants {
        let cfg = HeuristicConfig {
            restarts: 2,
            chained: ChainedLkConfig { local, kicks },
            seed: 1,
        };
        let ((_, span), t) = timed(|| solve_path_heuristic(&reduced.tsp, &cfg));
        println!("{:<34} {:>10} {:>12}", name, span, ms(t));
    }

    header("E8b — matching backend inside the 1.5-approximation");
    let trials = if quick { 4 } else { 12 };
    println!(
        "{:<12} {:>8} {:>12} {:>12}",
        "backend", "trials", "mean ratio", "max ratio"
    );
    for (name, backend) in [
        ("exact DP", MatchingBackend::ExactDp),
        ("blossom", MatchingBackend::Blossom),
        ("greedy", MatchingBackend::Greedy),
    ] {
        let mut rng = StdRng::seed_from_u64(0xE8B);
        let mut ratios = Vec::new();
        for _ in 0..trials {
            let g = random::gnp_with_diameter_at_most(&mut rng, 14, 0.45, 2);
            let exact = solve_exact(&g, &p).unwrap();
            let approx = solve_approx15_with_backend(&g, &p, backend).unwrap();
            assert!(approx.labeling.validate(&g, &p).is_ok());
            ratios.push(approx.span as f64 / exact.span.max(1) as f64);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().cloned().fold(0.0, f64::max);
        println!("{:<12} {:>8} {:>12.3} {:>12.3}", name, trials, mean, max);
    }
    println!("\nshape: exact-DP and blossom return equal-weight (optimal) matchings —");
    println!("tie-breaking picks different edges, so downstream shortcut tours can");
    println!("differ by a few percent either way; greedy matching is competitive at");
    println!("these sizes and none of the backends approaches the 3/2 bound.");
    println!("Candidate-list size trades time for span; don't-look bits cut time.");
}
