//! E4 — Heuristic quality & speed at scale (the paper's practical route).
//!
//! Construction + local-search ladder on large diameter-2 instances, where
//! exact search is impossible: nearest-neighbor → 2-opt → 2-opt+Or-opt →
//! chained LK, against the greedy-labeling baseline and the
//! `(n−1)·p_min` lower bound.

use super::{header, ms, timed};
use dclab_core::baseline::greedy::best_greedy_span;
use dclab_core::pvec::PVec;
use dclab_core::reduction::{labeling_from_order, reduce_to_path_tsp};
use dclab_graph::generators::random;
use dclab_tsp::construct::nearest_neighbor;
use dclab_tsp::lk::{chained_lk, ChainedLkConfig};
use dclab_tsp::localsearch::{local_opt, or_opt, two_opt, LocalSearchConfig, TourState};
use dclab_tsp::tour::{cycle_with_dummy_to_path, path_weight};
use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn run(quick: bool) {
    header("E4 — heuristic ladder on large diameter-2 instances, L(2,1)");
    let sizes: &[usize] = if quick {
        &[100, 200]
    } else {
        &[100, 300, 600, 1000]
    };
    let p = PVec::l21();
    println!(
        "{:<6} {:>8} | {:>14} {:>14} {:>14} {:>14} {:>14} | {:>8}",
        "n", "lowerbd", "greedy-label", "NN", "2-opt", "2opt+Or", "chainedLK", "LK time"
    );
    let mut rng = StdRng::seed_from_u64(0xE4);
    for &n in sizes {
        // Diameter-2 threshold for G(n,p) is p ≈ √(2·ln n / n); sample
        // comfortably above it.
        let density = (2.8 * (n as f64).ln() / n as f64).sqrt().min(0.6);
        let g = random::gnp_with_diameter_at_most(&mut rng, n, density, 2);
        let lower = (n as u64 - 1) * p.pmin();
        let (greedy_l, _) = best_greedy_span(&g, &p);

        let reduced = reduce_to_path_tsp(&g, &p).unwrap();
        let ext = reduced.tsp.with_dummy_city();
        let nl = ext.candidate_lists(10);
        let cfg = LocalSearchConfig::default();

        // NN construction (on the dummy-extended instance → path).
        let nn_cycle = nearest_neighbor(&ext, 0);
        let nn_path = cycle_with_dummy_to_path(reduced.tsp.n(), &nn_cycle);
        let nn_span = path_weight(&reduced.tsp, &nn_path);

        // 2-opt only.
        let mut st = TourState::new(nn_cycle.clone());
        two_opt(&ext, &mut st, &nl, &cfg);
        let two_span = path_weight(
            &reduced.tsp,
            &cycle_with_dummy_to_path(reduced.tsp.n(), &st.order),
        );

        // 2-opt + Or-opt.
        let mut st2 = TourState::new(nn_cycle);
        local_opt(&ext, &mut st2, &nl, &cfg);
        or_opt(&ext, &mut st2, &nl, &cfg);
        let or_span = path_weight(
            &reduced.tsp,
            &cycle_with_dummy_to_path(reduced.tsp.n(), &st2.order),
        );

        // Chained LK.
        let lk_cfg = ChainedLkConfig {
            kicks: if quick { 10 } else { 30 },
            ..ChainedLkConfig::default()
        };
        let ((lk_cycle, _), lk_ms) = timed(|| {
            let mut r = StdRng::seed_from_u64(7);
            chained_lk(&ext, 0, &lk_cfg, &mut r)
        });
        let lk_path = cycle_with_dummy_to_path(reduced.tsp.n(), &lk_cycle);
        let lk_span = path_weight(&reduced.tsp, &lk_path);
        let lk_labeling = labeling_from_order(&reduced, &lk_path);
        assert!(lk_labeling.validate(&g, &p).is_ok());

        println!(
            "{:<6} {:>8} | {:>14} {:>14} {:>14} {:>14} {:>14} | {:>8}",
            n,
            lower,
            greedy_l.span(),
            nn_span,
            two_span,
            or_span,
            lk_span,
            ms(lk_ms)
        );
    }
    println!("\nshape: dense diameter-2 G(n,p) is Hamiltonian, so λ = (n−1)·p_min and");
    println!("every local-search tier certifiably hits the optimum; NN alone misses.");

    header("E4b — structured family with known optimum: complete multipartite");
    // Complement of K(parts) is disjoint cliques → PIP = #parts, so
    // Corollary 2 gives λ_{2,1} = (n−1)·1 + (2−1)·(t−1) exactly.
    println!(
        "{:<18} {:>8} | {:>14} {:>14} {:>14} {:>14}",
        "parts", "optimal", "greedy-label", "NN", "2opt+Or", "chainedLK"
    );
    let part_specs: &[&[usize]] = if quick {
        &[&[40, 20, 10, 5, 5], &[64; 4]]
    } else {
        &[
            &[40, 20, 10, 5, 5],
            &[64; 4],
            &[100, 50, 25, 12, 6, 3, 2, 2],
            &[2; 100],
        ]
    };
    for &parts in part_specs {
        let g = dclab_graph::generators::classic::complete_multipartite(parts);
        let n = g.n();
        let t = parts.len() as u64;
        let optimal = (n as u64 - 1) + (t - 1);
        let (greedy_l, _) = best_greedy_span(&g, &p);
        let reduced = reduce_to_path_tsp(&g, &p).unwrap();
        let ext = reduced.tsp.with_dummy_city();
        let nl = ext.candidate_lists(10);
        let cfg = LocalSearchConfig::default();
        let nn_cycle = nearest_neighbor(&ext, 0);
        let nn_span = path_weight(
            &reduced.tsp,
            &cycle_with_dummy_to_path(reduced.tsp.n(), &nn_cycle),
        );
        let mut st = TourState::new(nn_cycle);
        local_opt(&ext, &mut st, &nl, &cfg);
        let ls_span = path_weight(
            &reduced.tsp,
            &cycle_with_dummy_to_path(reduced.tsp.n(), &st.order),
        );
        let lk_cfg = ChainedLkConfig {
            kicks: if quick { 10 } else { 30 },
            ..ChainedLkConfig::default()
        };
        let mut r = StdRng::seed_from_u64(11);
        let (lk_cycle, _) = chained_lk(&ext, 0, &lk_cfg, &mut r);
        let lk_path = cycle_with_dummy_to_path(reduced.tsp.n(), &lk_cycle);
        let lk_span = path_weight(&reduced.tsp, &lk_path);
        assert!(lk_span >= optimal, "heuristic beat the proven optimum?!");
        println!(
            "{:<18} {:>8} | {:>14} {:>14} {:>14} {:>14}",
            format!("{} parts, n={}", parts.len(), n),
            optimal,
            greedy_l.span(),
            nn_span,
            ls_span,
            lk_span
        );
    }
    println!("\nshape: with forced weight-2 steps (t−1 part crossings) the heuristics");
    println!("still land on the exact optimum from Corollary 2's closed form.");
}
