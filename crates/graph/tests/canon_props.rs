//! Property tests for `graph::canon`: the cache-key hash must be invariant
//! under vertex relabeling and edge-list reordering (ISSUE 2 satellite,
//! ≥ 1000 cases).

use dclab_graph::generators::random;
use dclab_graph::io;
use dclab_graph::{canon_hash, CanonicalForm, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn gnp_from(seed: u64, n: usize, p: f64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    random::gnp(&mut rng, n, p)
}

/// Serialize `g` as an edge list with lines in a seed-shuffled order and
/// per-edge endpoint order flipped pseudo-randomly.
fn shuffled_edge_list(g: &Graph, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lines: Vec<String> = g
        .edges()
        .map(|(u, v)| {
            if rng.random_range(0u32..2) == 0 {
                format!("{u} {v}")
            } else {
                format!("{v} {u}")
            }
        })
        .collect();
    // Fisher–Yates on the line order.
    for i in (1..lines.len()).rev() {
        let j = rng.random_range(0usize..i + 1);
        lines.swap(i, j);
    }
    format!("n {}\n{}\n", g.n(), lines.join("\n"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    #[test]
    fn hash_invariant_under_relabeling(seed in any::<u64>(), n in 1usize..24) {
        let density = 0.15 + (seed % 7) as f64 * 0.1;
        let g = gnp_from(seed, n, density);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0DE);
        let perm = random::random_permutation(&mut rng, n);
        let h = g.relabeled(&perm);
        prop_assert_eq!(canon_hash(&g), canon_hash(&h));
    }

    #[test]
    fn canonical_form_stable_under_relabeling(seed in any::<u64>(), n in 1usize..20) {
        let g = gnp_from(seed, n, 0.35);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let perm = random::random_permutation(&mut rng, n);
        let h = g.relabeled(&perm);
        let (cg, ch) = (CanonicalForm::of(&g), CanonicalForm::of(&h));
        prop_assert_eq!(cg.hash, ch.hash);
        prop_assert!(
            cg.same_canonical_graph(&ch),
            "canonical edges diverged for seed {} n {}", seed, n
        );
    }

    #[test]
    fn hash_invariant_under_edge_reordering(seed in any::<u64>(), n in 2usize..24) {
        let g = gnp_from(seed, n, 0.4);
        let text = shuffled_edge_list(&g, seed ^ 0xF00D);
        let reparsed = io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(&g, &reparsed);
        prop_assert_eq!(canon_hash(&g), canon_hash(&reparsed));
    }
}
