//! Differential property tests pinning the bit-parallel blocked APSP
//! ([`DistanceMatrix::compute`]) to the scalar one-BFS-per-source oracle
//! ([`DistanceMatrix::compute_sequential`]) across the corpora the paper's
//! pipeline actually sees: G(n,p) at several densities, cycles, complete
//! graphs, and forced-disconnected instances.

use dclab_graph::generators::{classic, random};
use dclab_graph::ops::disjoint_union;
use dclab_graph::{DistanceMatrix, Graph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One corpus instance per case, spread over the four families.
fn corpus_graph(kind: usize, n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    match kind % 4 {
        0 => {
            // G(n,p) sweeping sparse → dense (diameter large → small).
            let p = [0.03, 0.1, 0.3, 0.7][(seed % 4) as usize];
            random::gnp(&mut rng, n, p)
        }
        1 => classic::cycle(n.max(3)),
        2 => classic::complete(n),
        _ => {
            // Forced disconnected: two G(n,p) halves with no cross edges.
            let half = (n / 2).max(1);
            let a = random::gnp(&mut rng, half, 0.3);
            let b = random::gnp(&mut rng, n - half + 1, 0.3);
            disjoint_union(&a, &b)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    // The acceptance gate: bit-parallel blocked compute is bit-identical
    // to the scalar oracle on every corpus family, including sizes that
    // straddle the 64-source block boundary.
    #[test]
    fn bit_parallel_apsp_matches_sequential_oracle(
        kind in 0usize..4,
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        let blocked = DistanceMatrix::compute(&g);
        let oracle = DistanceMatrix::compute_sequential(&g);
        prop_assert_eq!(blocked, oracle);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    // Metric sanity (zero diagonal, symmetry, triangle inequality) and
    // diameter agreement between the streaming fold and the full matrix.
    #[test]
    fn blocked_apsp_is_a_metric_and_diameters_agree(
        kind in 0usize..4,
        n in 1usize..60,
        seed in any::<u64>(),
    ) {
        let g = corpus_graph(kind, n, seed);
        let d = DistanceMatrix::compute(&g);
        prop_assert!(d.validate().is_ok());
        prop_assert_eq!(dclab_graph::diameter::diameter(&g), d.diameter());
    }
}
