//! Property-based tests for the graph substrate.

use dclab_graph::generators::{classic, random};
use dclab_graph::ops::{complement, disjoint_union, induced_subgraph, join, power};
use dclab_graph::params::cotree::is_cograph;
use dclab_graph::params::nd::{nd, neighborhood_diversity};
use dclab_graph::traversal::{bfs_distances, connected_components, is_connected};
use dclab_graph::{DistanceMatrix, Graph, INF};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn gnp_from(seed: u64, n: usize, p: f64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    random::gnp(&mut rng, n, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_structure_always_validates(seed in any::<u64>(), n in 0usize..30) {
        let g = gnp_from(seed, n, 0.4);
        prop_assert!(g.validate().is_ok());
        let c = complement(&g);
        prop_assert!(c.validate().is_ok());
    }

    #[test]
    fn relabeling_preserves_invariants(seed in any::<u64>(), n in 2usize..15) {
        let g = gnp_from(seed, n, 0.4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        let perm = random::random_permutation(&mut rng, n);
        let h = g.relabeled(&perm);
        prop_assert_eq!(g.m(), h.m());
        prop_assert_eq!(is_connected(&g), is_connected(&h));
        prop_assert_eq!(nd(&g), nd(&h));
        prop_assert_eq!(is_cograph(&g), is_cograph(&h));
    }

    #[test]
    fn bfs_matches_apsp_row(seed in any::<u64>(), n in 1usize..20) {
        let g = gnp_from(seed, n, 0.3);
        let d = DistanceMatrix::compute(&g);
        for src in 0..n.min(4) {
            let row = bfs_distances(&g, src);
            prop_assert_eq!(row.as_slice(), d.row(src));
        }
    }

    #[test]
    fn distance_one_iff_edge(seed in any::<u64>(), n in 2usize..15) {
        let g = gnp_from(seed, n, 0.4);
        let d = DistanceMatrix::compute(&g);
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    prop_assert_eq!(d.get(u, v) == 1, g.has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn power_grows_monotonically(seed in any::<u64>(), n in 2usize..14) {
        let g = gnp_from(seed, n, 0.3);
        let g2 = power(&g, 2);
        let g3 = power(&g, 3);
        // Edge sets are nested: E(G) ⊆ E(G²) ⊆ E(G³).
        for (u, v) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
        for (u, v) in g2.edges() {
            prop_assert!(g3.has_edge(u, v));
        }
    }

    #[test]
    fn power_beyond_diameter_saturates(seed in any::<u64>(), n in 2usize..12) {
        let g = gnp_from(seed, n, 0.5);
        prop_assume!(is_connected(&g));
        let gk = power(&g, n as u32);
        prop_assert!(gk.is_complete());
    }

    #[test]
    fn components_partition_vertices(seed in any::<u64>(), n in 1usize..25) {
        let g = gnp_from(seed, n, 0.15);
        let (comp, count) = connected_components(&g);
        prop_assert_eq!(comp.len(), n);
        prop_assert!(comp.iter().all(|&c| c < count));
        // Edges never cross components.
        for (u, v) in g.edges() {
            prop_assert_eq!(comp[u], comp[v]);
        }
        // Distances are finite exactly within components.
        let d = DistanceMatrix::compute(&g);
        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(d.get(u, v) != INF, comp[u] == comp[v]);
            }
        }
    }

    #[test]
    fn union_and_join_sizes(seed in any::<u64>(), a in 1usize..8, b in 1usize..8) {
        let ga = gnp_from(seed, a, 0.5);
        let gb = gnp_from(seed ^ 1, b, 0.5);
        let u = disjoint_union(&ga, &gb);
        let j = join(&ga, &gb);
        prop_assert_eq!(u.m(), ga.m() + gb.m());
        prop_assert_eq!(j.m(), ga.m() + gb.m() + a * b);
        // Join of anything is connected (both sides nonempty).
        prop_assert!(is_connected(&j));
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(seed in any::<u64>(), n in 3usize..14) {
        let g = gnp_from(seed, n, 0.5);
        let keep: Vec<usize> = (0..n).step_by(2).collect();
        let h = induced_subgraph(&g, &keep);
        for (i, &vi) in keep.iter().enumerate() {
            for (j, &vj) in keep.iter().enumerate() {
                if i < j {
                    prop_assert_eq!(h.has_edge(i, j), g.has_edge(vi, vj));
                }
            }
        }
    }

    #[test]
    fn nd_classes_are_cliques_or_independent(seed in any::<u64>(), n in 2usize..15) {
        let g = gnp_from(seed, n, 0.5);
        let ndp = neighborhood_diversity(&g);
        for (class, &is_clique) in ndp.classes.iter().zip(&ndp.is_clique) {
            for (i, &u) in class.iter().enumerate() {
                for &v in &class[i + 1..] {
                    prop_assert_eq!(g.has_edge(u, v), is_clique);
                }
            }
        }
    }

    #[test]
    fn cograph_generator_closed_under_complement(seed in any::<u64>(), n in 1usize..16) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = random::random_cograph(&mut rng, n, 0.5);
        prop_assert!(is_cograph(&g));
        prop_assert!(is_cograph(&complement(&g)));
    }
}

#[test]
fn classic_families_have_expected_nd() {
    assert_eq!(nd(&classic::complete(9)), 1);
    assert_eq!(nd(&classic::complete_bipartite(3, 5)), 2);
    assert_eq!(nd(&classic::star(6)), 2);
}
