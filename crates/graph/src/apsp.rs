//! All-pairs shortest paths by parallel BFS.
//!
//! This is the `O(nm)` half of the Theorem 2 reduction: the distance matrix
//! of `G` becomes the weight matrix of the TSP instance `H`. One BFS per
//! source, fanned out across threads with [`dclab_par::par_map_indexed`]
//! (deterministic row order, dynamic scheduling).

use crate::csr::Csr;
use crate::graph::Graph;
use crate::traversal::bfs_distances_csr;
use crate::INF;

/// Flat `n × n` matrix of hop distances; `INF` marks unreachable pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Compute APSP for `g` with one BFS per source, in parallel.
    pub fn compute(g: &Graph) -> Self {
        let n = g.n();
        let csr = Csr::from_graph(g);
        let rows = dclab_par::par_map_indexed(n, |s| bfs_distances_csr(&csr, s));
        let mut d = Vec::with_capacity(n * n);
        for row in rows {
            debug_assert_eq!(row.len(), n);
            d.extend_from_slice(&row);
        }
        DistanceMatrix { n, d }
    }

    /// Sequential reference implementation (used by tests to validate the
    /// parallel driver).
    pub fn compute_sequential(g: &Graph) -> Self {
        let n = g.n();
        let csr = Csr::from_graph(g);
        let mut d = Vec::with_capacity(n * n);
        for s in 0..n {
            d.extend_from_slice(&bfs_distances_csr(&csr, s));
        }
        DistanceMatrix { n, d }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` (`INF` if unreachable).
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> u32 {
        self.d[u * self.n + v]
    }

    /// Row of distances from `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[u32] {
        &self.d[u * self.n..(u + 1) * self.n]
    }

    /// Largest finite entry; `None` if the graph is disconnected
    /// (some entry is `INF`) or has no vertex pair.
    pub fn diameter(&self) -> Option<u32> {
        if self.n <= 1 {
            return Some(0);
        }
        let mut max = 0;
        for u in 0..self.n {
            for v in 0..self.n {
                let d = self.get(u, v);
                if u != v && d == INF {
                    return None;
                }
                if d != INF && d > max {
                    max = d;
                }
            }
        }
        Some(max)
    }

    /// Eccentricity of `u` (max finite distance from `u`), `None` when some
    /// vertex is unreachable from `u`.
    pub fn eccentricity(&self, u: usize) -> Option<u32> {
        let mut max = 0;
        for v in 0..self.n {
            let d = self.get(u, v);
            if d == INF {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }

    /// Internal consistency: zero diagonal, symmetry, and the hop-metric
    /// triangle inequality on finite triples. Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        for u in 0..self.n {
            if self.get(u, u) != 0 {
                return Err(format!("d({u},{u}) != 0"));
            }
            for v in 0..self.n {
                if self.get(u, v) != self.get(v, u) {
                    return Err(format!("asymmetric at ({u},{v})"));
                }
            }
        }
        for u in 0..self.n {
            for v in 0..self.n {
                for w in 0..self.n {
                    let (a, b, c) = (self.get(u, v), self.get(u, w), self.get(w, v));
                    if a != INF && b != INF && c != INF && a > b + c {
                        return Err(format!("triangle violated at ({u},{v},{w})"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, random};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let g = random::gnp(&mut rng, 40, 0.15);
            assert_eq!(
                DistanceMatrix::compute(&g),
                DistanceMatrix::compute_sequential(&g)
            );
        }
    }

    #[test]
    fn cycle_distances() {
        let g = classic::cycle(6);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.get(0, 3), 3);
        assert_eq!(d.get(0, 5), 1);
        assert_eq!(d.diameter(), Some(3));
        d.validate().unwrap();
    }

    #[test]
    fn disconnected_diameter_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.diameter(), None);
        assert_eq!(d.eccentricity(0), None);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = classic::complete(7);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.diameter(), Some(1));
        for u in 0..7 {
            assert_eq!(d.eccentricity(u), Some(1));
        }
    }
}
