//! All-pairs shortest paths by bit-parallel blocked BFS.
//!
//! This is the workhorse of the Theorem 2 reduction: the distance matrix
//! of `G` becomes the weight matrix of the TSP instance `H`, and on the
//! paper's small-diameter instances computing it dominates everything the
//! TSP machinery does afterwards. Sources are processed in blocks of
//! [`BLOCK`] by [`bfs64_distances_csr`] — one `u64` word per vertex
//! advances 64 BFS waves per neighbor-list scan — and blocks (not single
//! sources) are fanned across threads with [`dclab_par::par_map_chunks`]
//! (deterministic row order, dynamic scheduling). The scalar
//! one-BFS-per-source path survives as [`DistanceMatrix::compute_sequential`],
//! the differential-test oracle.

use crate::csr::Csr;
use crate::graph::Graph;
use crate::traversal::{bfs64_distances_csr, bfs_distances_csr};
use crate::INF;

/// Sources per bit-parallel BFS block (the word width of the kernel).
pub const BLOCK: usize = 64;

/// Flat `n × n` matrix of hop distances; `INF` marks unreachable pairs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Compute APSP for `g`: bit-parallel BFS in blocks of [`BLOCK`]
    /// sources, blocks fanned across threads.
    pub fn compute(g: &Graph) -> Self {
        let csr = Csr::from_graph(g);
        Self::compute_csr(&csr)
    }

    /// Blocked bit-parallel APSP over an existing CSR view.
    pub fn compute_csr(csr: &Csr) -> Self {
        let n = csr.n();
        let trace = dclab_trace::current();
        let mut span = trace.span("apsp");
        if span.is_enabled() {
            span.set_detail(format!("n={n}"));
        }
        let blocks = dclab_par::par_map_chunks(n, BLOCK, |range| {
            let sources: Vec<usize> = range.collect();
            let mut rows = vec![0u32; sources.len() * n];
            bfs64_distances_csr(csr, &sources, &mut rows);
            rows
        });
        let mut d = Vec::with_capacity(n * n);
        for block in blocks {
            d.extend_from_slice(&block);
        }
        debug_assert_eq!(d.len(), n * n);
        DistanceMatrix { n, d }
    }

    /// Sequential scalar reference — one classic BFS per source. This is
    /// the oracle the differential tests pin [`DistanceMatrix::compute`]
    /// against, and the scalar baseline of the `e11_apsp` bench.
    pub fn compute_sequential(g: &Graph) -> Self {
        let n = g.n();
        let csr = Csr::from_graph(g);
        let mut d = Vec::with_capacity(n * n);
        for s in 0..n {
            d.extend_from_slice(&bfs_distances_csr(&csr, s));
        }
        DistanceMatrix { n, d }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distance between `u` and `v` (`INF` if unreachable).
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> u32 {
        self.d[u * self.n + v]
    }

    /// Row of distances from `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[u32] {
        &self.d[u * self.n..(u + 1) * self.n]
    }

    /// Largest finite entry; `None` if the graph is disconnected (some
    /// entry is `INF`) or empty (`n = 0`, where no distance exists at
    /// all). A single vertex has diameter 0.
    pub fn diameter(&self) -> Option<u32> {
        if self.n == 0 {
            return None;
        }
        if self.n == 1 {
            return Some(0);
        }
        let mut max = 0;
        for u in 0..self.n {
            for v in 0..self.n {
                let d = self.get(u, v);
                if u != v && d == INF {
                    return None;
                }
                if d != INF && d > max {
                    max = d;
                }
            }
        }
        Some(max)
    }

    /// Eccentricity of `u` (max finite distance from `u`), `None` when some
    /// vertex is unreachable from `u`.
    pub fn eccentricity(&self, u: usize) -> Option<u32> {
        let mut max = 0;
        for v in 0..self.n {
            let d = self.get(u, v);
            if d == INF {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    }

    /// Internal consistency: zero diagonal, symmetry, and the hop-metric
    /// triangle inequality on finite triples. Used by property tests.
    pub fn validate(&self) -> Result<(), String> {
        for u in 0..self.n {
            if self.get(u, u) != 0 {
                return Err(format!("d({u},{u}) != 0"));
            }
            for v in 0..self.n {
                if self.get(u, v) != self.get(v, u) {
                    return Err(format!("asymmetric at ({u},{v})"));
                }
            }
        }
        for u in 0..self.n {
            for v in 0..self.n {
                for w in 0..self.n {
                    let (a, b, c) = (self.get(u, v), self.get(u, w), self.get(w, v));
                    if a != INF && b != INF && c != INF && a > b + c {
                        return Err(format!("triangle violated at ({u},{v},{w})"));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{classic, random};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let g = random::gnp(&mut rng, 40, 0.15);
            assert_eq!(
                DistanceMatrix::compute(&g),
                DistanceMatrix::compute_sequential(&g)
            );
        }
    }

    #[test]
    fn blocked_matches_sequential_across_block_boundaries() {
        // n straddling one and several 64-source blocks.
        let mut rng = StdRng::seed_from_u64(8);
        for n in [63usize, 64, 65, 128, 130, 200] {
            let g = random::gnp(&mut rng, n, 0.08);
            assert_eq!(
                DistanceMatrix::compute(&g),
                DistanceMatrix::compute_sequential(&g),
                "n={n}"
            );
        }
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        let empty = DistanceMatrix::compute(&Graph::new(0));
        assert_eq!(empty.n(), 0);
        assert_eq!(empty.diameter(), None, "no vertex pair → None");
        empty.validate().unwrap();
        let single = DistanceMatrix::compute(&Graph::new(1));
        assert_eq!(single.diameter(), Some(0));
        assert_eq!(single.eccentricity(0), Some(0));
        single.validate().unwrap();
    }

    #[test]
    fn cycle_distances() {
        let g = classic::cycle(6);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.get(0, 3), 3);
        assert_eq!(d.get(0, 5), 1);
        assert_eq!(d.diameter(), Some(3));
        d.validate().unwrap();
    }

    #[test]
    fn disconnected_diameter_none() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.diameter(), None);
        assert_eq!(d.eccentricity(0), None);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = classic::complete(7);
        let d = DistanceMatrix::compute(&g);
        assert_eq!(d.diameter(), Some(1));
        for u in 0..7 {
            assert_eq!(d.eccentricity(u), Some(1));
        }
    }
}
