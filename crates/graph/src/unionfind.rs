//! Disjoint-set union with path halving and union by size.

/// Union-find over `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            sets: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            let gp = self.parent[self.parent[x] as usize];
            self.parent[x] = gp;
            x = gp as usize;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.sets -= 1;
        true
    }

    /// `true` iff `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    #[inline]
    pub fn set_count(&self) -> usize {
        self.sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.set_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.set_count(), 3);
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
    }
}
