//! Graph substrate for the `dclab` workspace.
//!
//! Everything the L(p)-labeling pipeline needs from graph theory is built
//! here from scratch: a compact undirected [`Graph`] type with a CSR view,
//! BFS / parallel all-pairs shortest paths, diameter, complement and graph
//! powers, a catalogue of deterministic and random [`generators`], and the
//! structural parameters used by the paper's FPT results
//! (neighborhood diversity, cotrees/cographs, modules) in [`params`].

// Index-based loops are the clearer idiom for the dense matrix/bitmask
// kernels in this crate.
#![allow(clippy::needless_range_loop)]

pub mod apsp;
pub mod bitset;
pub mod canon;
pub mod csr;
pub mod diameter;
pub mod generators;
pub mod graph;
pub mod io;
pub mod ops;
pub mod params;
pub mod traversal;
pub mod unionfind;

pub use apsp::DistanceMatrix;
pub use bitset::BitRows;
pub use canon::{canon_hash, CanonicalForm};
pub use csr::Csr;
pub use graph::Graph;
pub use unionfind::UnionFind;

/// Infinite distance sentinel used by BFS/APSP for unreachable pairs.
pub const INF: u32 = u32::MAX;
