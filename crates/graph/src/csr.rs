//! Compressed sparse row (CSR) adjacency view.
//!
//! BFS from every source (the APSP kernel behind the Theorem 2 reduction)
//! spends nearly all of its time scanning neighbor lists; a CSR layout puts
//! all of them into one flat allocation, following the perf-book guidance on
//! minimizing per-node allocations and indirection.

use crate::graph::Graph;

/// Immutable CSR snapshot of a [`Graph`].
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Build a CSR view; `O(n + m)`.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(2 * g.m());
        offsets.push(0u32);
        for v in 0..n {
            targets.extend_from_slice(g.neighbors(v));
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbors of `v` as a slice into the flat target array.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_matches_graph() {
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let c = Csr::from_graph(&g);
        assert_eq!(c.n(), 5);
        for v in 0..5 {
            assert_eq!(c.neighbors(v), g.neighbors(v));
            assert_eq!(c.degree(v), g.degree(v));
        }
    }

    #[test]
    fn csr_empty_graph() {
        let g = Graph::new(3);
        let c = Csr::from_graph(&g);
        assert_eq!(c.n(), 3);
        assert!(c.neighbors(1).is_empty());
    }
}
