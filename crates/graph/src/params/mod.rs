//! Structural graph parameters used by the paper's FPT results:
//! neighborhood diversity (Def. 2), cotrees / cographs (the canonical
//! bounded modular-width family), and module utilities (Def. 1).

pub mod cotree;
pub mod modules;
pub mod nd;

pub use cotree::Cotree;
pub use nd::NeighborhoodDiversity;
