//! Neighborhood diversity (Definition 2 of the paper).
//!
//! Vertices `u, v` have the same *type* iff `N(u) \ {v} = N(v) \ {u}`.
//! Equivalently they are false twins (non-adjacent, equal open
//! neighborhoods) or true twins (adjacent, equal closed neighborhoods).
//! Every type is a module inducing a clique or an independent set, and
//! `nd(G)` — the number of types — upper-bounds nothing less than the FPT
//! machinery of Theorem 4: `mw(G) ≥ nd(G²)` (Prop. 2) and `nd(G) ≥ mw(G)`
//! makes `nd` a certified modular-width upper bound.

use crate::graph::Graph;
use std::collections::HashMap;

/// The type partition realising `nd(G)`.
#[derive(Clone, Debug)]
pub struct NeighborhoodDiversity {
    /// `class_of[v]` = index of v's type.
    pub class_of: Vec<usize>,
    /// Vertices of each type, ascending.
    pub classes: Vec<Vec<usize>>,
    /// `true` iff the type induces a clique (types of size 1 count as
    /// cliques).
    pub is_clique: Vec<bool>,
}

impl NeighborhoodDiversity {
    /// Number of types, i.e. `nd(G)`.
    pub fn nd(&self) -> usize {
        self.classes.len()
    }
}

/// Compute the neighborhood-diversity partition in `O(n·deg·log)` time by
/// grouping open- and closed-neighborhood keys.
pub fn neighborhood_diversity(g: &Graph) -> NeighborhoodDiversity {
    let n = g.n();
    let mut uf = crate::unionfind::UnionFind::new(n);

    // False twins: identical open neighborhoods (such vertices are
    // necessarily non-adjacent).
    let mut open: HashMap<&[u32], usize> = HashMap::new();
    for v in 0..n {
        let key = g.neighbors(v);
        if let Some(&u) = open.get(key) {
            uf.union(u, v);
        } else {
            open.insert(key, v);
        }
    }

    // True twins: identical closed neighborhoods.
    let mut closed_keys: Vec<Vec<u32>> = Vec::with_capacity(n);
    for v in 0..n {
        let mut k = g.neighbors(v).to_vec();
        let pos = k.binary_search(&(v as u32)).unwrap_err();
        k.insert(pos, v as u32);
        closed_keys.push(k);
    }
    let mut closed: HashMap<&[u32], usize> = HashMap::new();
    for v in 0..n {
        let key = closed_keys[v].as_slice();
        if let Some(&u) = closed.get(key) {
            uf.union(u, v);
        } else {
            closed.insert(key, v);
        }
    }

    // Collect classes in order of first representative.
    let mut class_of = vec![usize::MAX; n];
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for v in 0..n {
        let r = uf.find(v);
        if class_of[r] == usize::MAX {
            class_of[r] = classes.len();
            classes.push(Vec::new());
        }
        class_of[v] = class_of[r];
        classes[class_of[r]].push(v);
    }
    let is_clique = classes
        .iter()
        .map(|c| c.len() <= 1 || g.has_edge(c[0], c[1]))
        .collect();
    NeighborhoodDiversity {
        class_of,
        classes,
        is_clique,
    }
}

/// `nd(G)` alone.
pub fn nd(g: &Graph) -> usize {
    neighborhood_diversity(g).nd()
}

/// Certified upper bound on modular-width: every nd-type is a module, so
/// `mw(G) ≤ max(2, nd(G))`. (Computing `mw` exactly needs full modular
/// decomposition, which is out of scope — see DESIGN.md §3.)
pub fn modular_width_upper_bound(g: &Graph) -> usize {
    nd(g).max(2).min(g.n().max(2))
}

/// Quotient graph on the nd-types: types `A, B` adjacent iff the (complete)
/// bipartite cross relation holds. Panics in debug builds if the partition
/// is not made of modules (it always is for an nd partition).
pub fn type_quotient(g: &Graph, ndp: &NeighborhoodDiversity) -> Graph {
    let t = ndp.nd();
    let mut q = Graph::new(t);
    for a in 0..t {
        for b in (a + 1)..t {
            let u = ndp.classes[a][0];
            let v = ndp.classes[b][0];
            if g.has_edge(u, v) {
                debug_assert!(ndp.classes[a]
                    .iter()
                    .all(|&x| ndp.classes[b].iter().all(|&y| g.has_edge(x, y))));
                q.add_edge(a, b);
            }
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn complete_graph_has_nd_one() {
        assert_eq!(nd(&classic::complete(6)), 1);
    }

    #[test]
    fn edgeless_has_nd_one() {
        assert_eq!(nd(&Graph::new(5)), 1);
    }

    #[test]
    fn star_has_nd_two() {
        let ndp = neighborhood_diversity(&classic::star(7));
        assert_eq!(ndp.nd(), 2);
        // center alone, leaves together
        let mut sizes: Vec<usize> = ndp.classes.iter().map(Vec::len).collect();
        sizes.sort();
        assert_eq!(sizes, vec![1, 6]);
        assert!(!ndp.is_clique[ndp.class_of[1]]); // leaves are independent
    }

    #[test]
    fn complete_multipartite_nd_equals_parts() {
        let g = classic::complete_multipartite(&[3, 4, 2]);
        assert_eq!(nd(&g), 3);
    }

    #[test]
    fn path_has_full_diversity_at_length_5() {
        // P5: endpoints pair with nothing; nd(P5) = ... each vertex distinct
        // except the two ends are NOT twins (different neighborhoods).
        let g = classic::path(5);
        assert_eq!(nd(&g), 5);
    }

    #[test]
    fn quotient_of_multipartite_is_complete() {
        let g = classic::complete_multipartite(&[2, 2, 3]);
        let ndp = neighborhood_diversity(&g);
        let q = type_quotient(&g, &ndp);
        assert!(q.is_complete());
        assert_eq!(q.n(), 3);
    }

    #[test]
    fn mw_upper_bound_sane() {
        let g = classic::complete(5);
        assert_eq!(modular_width_upper_bound(&g), 2);
        let p = classic::path(6);
        assert!(modular_width_upper_bound(&p) <= 6);
    }

    #[test]
    fn true_twins_detected() {
        // Two adjacent vertices with same closed neighborhood.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (2, 3)]);
        let ndp = neighborhood_diversity(&g);
        assert_eq!(ndp.class_of[0], ndp.class_of[1]);
        assert!(ndp.is_clique[ndp.class_of[0]]);
        assert_ne!(ndp.class_of[0], ndp.class_of[3]);
    }
}
