//! Cotree construction / cograph recognition.
//!
//! Cographs are the graphs obtained from single vertices by disjoint union
//! and join; equivalently, graphs of clique-width ≤ 2 and the canonical
//! family of bounded modular-width. The cotree drives the polynomial
//! Partition-into-Paths DP that realises Corollary 2's FPT claim
//! (see `dclab-core::partition_paths::cograph`).

use crate::graph::Graph;
use crate::ops::induced_subgraph;
use crate::traversal::component_vertex_sets;

/// A node of the cotree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CotreeNode {
    /// A single original vertex.
    Leaf(usize),
    /// Disjoint union of the children (parallel node).
    Union(Vec<usize>),
    /// Join of the children (series node).
    Join(Vec<usize>),
}

/// Cotree of a cograph: nodes in post-order, `root` is the last index.
#[derive(Clone, Debug)]
pub struct Cotree {
    /// All nodes; children indices always precede their parent.
    pub nodes: Vec<CotreeNode>,
    /// Index of the root node.
    pub root: usize,
    /// Number of leaves under each node.
    pub size: Vec<usize>,
}

impl Cotree {
    /// Build the cotree of `g`, or `None` if `g` is not a cograph.
    ///
    /// Recognition is by the classic complement-reduction characterisation:
    /// a graph with ≥ 2 vertices is a cograph iff it or its complement is
    /// disconnected, recursively. Runs in `O(n²)` per level (fine for the
    /// experiment sizes; Tedder et al.'s linear algorithm is out of scope).
    pub fn build(g: &Graph) -> Option<Cotree> {
        let mut nodes = Vec::new();
        let mut size = Vec::new();
        let vertices: Vec<usize> = (0..g.n()).collect();
        if g.n() == 0 {
            // Empty graph: represent with an empty union node.
            nodes.push(CotreeNode::Union(vec![]));
            size.push(0);
            return Some(Cotree {
                nodes,
                root: 0,
                size,
            });
        }
        let root = build_rec(g, &vertices, &mut nodes, &mut size)?;
        Some(Cotree { nodes, root, size })
    }

    /// Leaves (original vertex ids) under node `idx`, ascending.
    pub fn leaves_under(&self, idx: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_leaves(idx, &mut out);
        out.sort_unstable();
        out
    }

    fn collect_leaves(&self, idx: usize, out: &mut Vec<usize>) {
        match &self.nodes[idx] {
            CotreeNode::Leaf(v) => out.push(*v),
            CotreeNode::Union(ch) | CotreeNode::Join(ch) => {
                for &c in ch {
                    self.collect_leaves(c, out);
                }
            }
        }
    }
}

fn build_rec(
    g: &Graph,
    vertices: &[usize],
    nodes: &mut Vec<CotreeNode>,
    size: &mut Vec<usize>,
) -> Option<usize> {
    if vertices.len() == 1 {
        nodes.push(CotreeNode::Leaf(vertices[0]));
        size.push(1);
        return Some(nodes.len() - 1);
    }
    let sub = induced_subgraph(g, vertices);
    let comps = component_vertex_sets(&sub);
    if comps.len() > 1 {
        let mut children = Vec::with_capacity(comps.len());
        let mut total = 0;
        for comp in comps {
            let orig: Vec<usize> = comp.iter().map(|&i| vertices[i]).collect();
            let c = build_rec(g, &orig, nodes, size)?;
            total += size[c];
            children.push(c);
        }
        nodes.push(CotreeNode::Union(children));
        size.push(total);
        return Some(nodes.len() - 1);
    }
    let co = crate::ops::complement(&sub);
    let co_comps = component_vertex_sets(&co);
    if co_comps.len() > 1 {
        let mut children = Vec::with_capacity(co_comps.len());
        let mut total = 0;
        for comp in co_comps {
            let orig: Vec<usize> = comp.iter().map(|&i| vertices[i]).collect();
            let c = build_rec(g, &orig, nodes, size)?;
            total += size[c];
            children.push(c);
        }
        nodes.push(CotreeNode::Join(children));
        size.push(total);
        return Some(nodes.len() - 1);
    }
    None // both G[S] and its complement connected with |S| ≥ 2 ⇒ not a cograph
}

/// Cograph test.
pub fn is_cograph(g: &Graph) -> bool {
    Cotree::build(g).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;
    use crate::ops::{complement, disjoint_union, join};

    #[test]
    fn complete_and_edgeless_are_cographs() {
        assert!(is_cograph(&classic::complete(5)));
        assert!(is_cograph(&Graph::new(5)));
        assert!(is_cograph(&Graph::new(1)));
        assert!(is_cograph(&Graph::new(0)));
    }

    #[test]
    fn p4_is_not_a_cograph() {
        assert!(!is_cograph(&classic::path(4)));
    }

    #[test]
    fn p3_is_a_cograph() {
        assert!(is_cograph(&classic::path(3)));
    }

    #[test]
    fn c5_is_not_a_cograph() {
        assert!(!is_cograph(&classic::cycle(5)));
    }

    #[test]
    fn union_join_closure() {
        let a = classic::complete(3);
        let b = classic::path(3);
        assert!(is_cograph(&disjoint_union(&a, &b)));
        assert!(is_cograph(&join(&a, &b)));
    }

    #[test]
    fn cograph_complement_closure() {
        let g = join(&classic::complete(2), &Graph::new(3));
        assert!(is_cograph(&g));
        assert!(is_cograph(&complement(&g)));
    }

    #[test]
    fn cotree_leaf_partition_is_exact() {
        let g = join(&classic::complete(2), &Graph::new(3));
        let t = Cotree::build(&g).unwrap();
        assert_eq!(t.leaves_under(t.root), vec![0, 1, 2, 3, 4]);
        assert_eq!(t.size[t.root], 5);
        assert!(matches!(t.nodes[t.root], CotreeNode::Join(_)));
    }

    #[test]
    fn cotree_root_of_disconnected_is_union() {
        let g = disjoint_union(&classic::complete(2), &classic::complete(2));
        let t = Cotree::build(&g).unwrap();
        assert!(matches!(t.nodes[t.root], CotreeNode::Union(_)));
    }
}
