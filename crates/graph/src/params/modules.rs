//! Module utilities (Definition 1 of the paper).

use crate::graph::Graph;

/// `true` iff `set` is a module of `g`: every vertex outside `set` is either
/// adjacent to all of `set` or to none of it.
pub fn is_module(g: &Graph, set: &[usize]) -> bool {
    let mut in_set = vec![false; g.n()];
    for &v in set {
        in_set[v] = true;
    }
    if set.is_empty() {
        return true;
    }
    let rep = set[0];
    for outside in 0..g.n() {
        if in_set[outside] {
            continue;
        }
        let to_rep = g.has_edge(outside, rep);
        for &v in &set[1..] {
            if g.has_edge(outside, v) != to_rep {
                return false;
            }
        }
    }
    true
}

/// `true` iff `partition` covers `0..g.n()` exactly once and every part is a
/// module — i.e. it witnesses `mw(G) ≤ partition.len()` (together with the
/// recursive condition on each part, which the caller checks separately).
pub fn is_modular_partition(g: &Graph, partition: &[Vec<usize>]) -> bool {
    let mut seen = vec![false; g.n()];
    for part in partition {
        for &v in part {
            if v >= g.n() || seen[v] {
                return false;
            }
            seen[v] = true;
        }
    }
    seen.iter().all(|&s| s) && partition.iter().all(|p| is_module(g, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn trivial_modules() {
        let g = classic::path(4);
        assert!(is_module(&g, &[])); // empty
        assert!(is_module(&g, &[2])); // singleton
        assert!(is_module(&g, &[0, 1, 2, 3])); // whole vertex set
    }

    #[test]
    fn twins_form_modules() {
        let g = classic::complete_multipartite(&[3, 2]);
        assert!(is_module(&g, &[0, 1, 2]));
        assert!(is_module(&g, &[3, 4]));
        assert!(is_module(&g, &[0, 1]));
    }

    #[test]
    fn non_module_detected() {
        let g = classic::path(4); // 0-1-2-3
        assert!(!is_module(&g, &[0, 1])); // vertex 2 sees 1 but not 0
    }

    #[test]
    fn modular_partition_check() {
        let g = classic::complete_multipartite(&[2, 2]);
        assert!(is_modular_partition(&g, &[vec![0, 1], vec![2, 3]]));
        assert!(!is_modular_partition(&g, &[vec![0], vec![2, 3]])); // misses 1
        assert!(!is_modular_partition(
            &g,
            &[vec![0, 1], vec![2, 3], vec![0]] // duplicate 0
        ));
    }
}
