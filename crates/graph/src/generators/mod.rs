//! Graph generators: deterministic families in [`classic`], seeded random
//! families in [`random`]. These provide the workloads of every experiment
//! in `EXPERIMENTS.md` (small-diameter random graphs, split graphs,
//! cographs, scale-free graphs, …).

pub mod classic;
pub mod random;
