//! Seeded random graph families.
//!
//! All generators take an explicit `&mut impl Rng` so experiments are fully
//! reproducible from a `StdRng::seed_from_u64` seed.

use crate::graph::Graph;
use crate::ops::{disjoint_union, join};
use crate::traversal::is_connected;
use rand::seq::SliceRandom;
use rand::{Rng, RngExt};

/// Erdős–Rényi `G(n, p)`: each pair is an edge independently with
/// probability `p`.
pub fn gnp<R: Rng>(rng: &mut R, n: usize, p: f64) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(p.clamp(0.0, 1.0)) {
                g.add_edge(u, v);
            }
        }
    }
    g
}

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly.
pub fn gnm<R: Rng>(rng: &mut R, n: usize, m: usize) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "too many edges requested");
    let mut g = Graph::new(n);
    while g.m() < m {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            g.add_edge(u.min(v), u.max(v));
        }
    }
    g
}

/// Uniform random labelled tree via a Prüfer sequence.
pub fn random_tree<R: Rng>(rng: &mut R, n: usize) -> Graph {
    let mut g = Graph::new(n);
    if n <= 1 {
        return g;
    }
    if n == 2 {
        g.add_edge(0, 1);
        return g;
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1u32; n];
    for &x in &prufer {
        degree[x] += 1;
    }
    // Min-leaf extraction with a simple scan pointer (n is small in tests).
    let mut ptr = 0;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &x in &prufer {
        g.add_edge(leaf, x);
        degree[x] -= 1;
        if degree[x] == 1 && x < ptr {
            leaf = x;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    // Last edge joins the remaining leaf with n-1.
    g.add_edge(leaf, n - 1);
    g
}

/// Barabási–Albert preferential attachment: start from a clique on
/// `m0 = m_attach` vertices, then each new vertex attaches to `m_attach`
/// existing vertices with probability proportional to degree. Small diameter,
/// heavy-tailed degrees.
pub fn barabasi_albert<R: Rng>(rng: &mut R, n: usize, m_attach: usize) -> Graph {
    assert!(m_attach >= 1 && n > m_attach);
    let mut g = Graph::new(n);
    for u in 0..m_attach {
        for v in (u + 1)..m_attach.max(2).min(n) {
            g.add_edge(u, v);
        }
    }
    // Repeated-endpoint urn: each edge endpoint appears once per incidence.
    let mut urn: Vec<usize> = Vec::new();
    for (u, v) in g.edges().collect::<Vec<_>>() {
        urn.push(u);
        urn.push(v);
    }
    if urn.is_empty() {
        urn.push(0);
    }
    for v in m_attach.max(2)..n {
        let mut chosen = Vec::with_capacity(m_attach);
        let mut guard = 0;
        while chosen.len() < m_attach.min(v) && guard < 1000 {
            let t = urn[rng.random_range(0..urn.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
            guard += 1;
        }
        for &t in &chosen {
            if g.add_edge(v, t) {
                urn.push(v);
                urn.push(t);
            }
        }
    }
    g
}

/// Watts–Strogatz small-world: ring lattice where each vertex connects to
/// its `k/2` nearest neighbors per side, each edge rewired with probability
/// `beta`.
pub fn watts_strogatz<R: Rng>(rng: &mut R, n: usize, k: usize, beta: f64) -> Graph {
    assert!(k.is_multiple_of(2) && k < n, "k must be even and < n");
    let mut g = Graph::new(n);
    for v in 0..n {
        for j in 1..=(k / 2) {
            g.add_edge(v, (v + j) % n);
        }
    }
    let edges: Vec<(usize, usize)> = g.edges().collect();
    for (u, v) in edges {
        if rng.random_bool(beta.clamp(0.0, 1.0)) {
            // Rewire v-end to a uniform non-neighbor of u.
            let mut tries = 0;
            loop {
                let w = rng.random_range(0..n);
                if w != u && !g.has_edge(u, w) {
                    g.remove_edge(u, v);
                    g.add_edge(u, w);
                    break;
                }
                tries += 1;
                if tries > 4 * n {
                    break; // u is nearly universal; keep original edge
                }
            }
        }
    }
    g
}

/// Random split graph: clique of size `k`, independent set of size `i`, each
/// cross pair joined with probability `p_cross` plus a forced perfect
/// "attachment" so the graph stays connected.
pub fn random_split<R: Rng>(rng: &mut R, k: usize, i: usize, p_cross: f64) -> Graph {
    assert!(k >= 1);
    let mut g = Graph::new(k + i);
    for u in 0..k {
        for v in (u + 1)..k {
            g.add_edge(u, v);
        }
    }
    for s in 0..i {
        let anchor = rng.random_range(0..k);
        g.add_edge(k + s, anchor);
        for c in 0..k {
            if c != anchor && rng.random_bool(p_cross.clamp(0.0, 1.0)) {
                g.add_edge(k + s, c);
            }
        }
    }
    g
}

/// Random cograph on exactly `n` vertices, built by recursive random
/// union/join splits. Always a cograph; joins are chosen with probability
/// `p_join` (higher → denser, smaller diameter).
pub fn random_cograph<R: Rng>(rng: &mut R, n: usize, p_join: f64) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    let left = rng.random_range(1..n);
    let a = random_cograph(rng, left, p_join);
    let b = random_cograph(rng, n - left, p_join);
    if rng.random_bool(p_join.clamp(0.0, 1.0)) {
        join(&a, &b)
    } else {
        disjoint_union(&a, &b)
    }
}

/// A *connected* cograph (top-level operation forced to be a join when the
/// recursive draw comes out disconnected).
pub fn random_connected_cograph<R: Rng>(rng: &mut R, n: usize, p_join: f64) -> Graph {
    if n <= 1 {
        return Graph::new(n);
    }
    let left = rng.random_range(1..n);
    let a = random_cograph(rng, left, p_join);
    let b = random_cograph(rng, n - left, p_join);
    join(&a, &b)
}

/// Resample `G(n,p)` until connected (panics after 1000 attempts — callers
/// should pass `p` comfortably above the connectivity threshold).
pub fn connected_gnp<R: Rng>(rng: &mut R, n: usize, p: f64) -> Graph {
    for _ in 0..1000 {
        let g = gnp(rng, n, p);
        if is_connected(&g) {
            return g;
        }
    }
    panic!("connected_gnp: p={p} too small for n={n}");
}

/// Resample `G(n,p)` until connected with diameter ≤ `k` — the workload of
/// Theorem 2. Panics after 1000 attempts.
pub fn gnp_with_diameter_at_most<R: Rng>(rng: &mut R, n: usize, p: f64, k: u32) -> Graph {
    for _ in 0..1000 {
        let g = gnp(rng, n, p);
        if crate::diameter::has_diameter_at_most(&g, k) {
            return g;
        }
    }
    panic!("gnp_with_diameter_at_most: no diameter-{k} sample at n={n}, p={p}");
}

/// Core–periphery small-diameter family: a `core`-vertex clique with every
/// periphery vertex adjacent to all core vertices, plus independent extra
/// periphery–periphery edges with probability `p_extra`. Any two vertices
/// meet through the core, so the diameter is exactly 2 whenever there is at
/// least one periphery vertex (and 1 for a pure clique) — the regime where
/// hub-label oracles stay tiny at 50k–100k vertices.
pub fn core_periphery<R: Rng>(rng: &mut R, n: usize, core: usize, p_extra: f64) -> Graph {
    assert!(core >= 1, "core_periphery needs a non-empty core");
    let core = core.min(n);
    let mut g = Graph::new(n);
    for u in 0..core {
        for v in (u + 1)..core {
            g.add_edge(u, v);
        }
    }
    for v in core..n {
        for u in 0..core {
            g.add_edge(u, v);
        }
    }
    let p_extra = p_extra.clamp(0.0, 1.0);
    if p_extra > 0.0 {
        for u in core..n {
            for v in (u + 1)..n {
                if rng.random_bool(p_extra) {
                    g.add_edge(u, v);
                }
            }
        }
    }
    g
}

/// Random permutation of `0..n` (used for permutation-invariance tests).
pub fn random_permutation<R: Rng>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameter;
    use crate::params::cotree::Cotree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnp_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(gnp(&mut rng, 10, 0.0).m(), 0);
        assert_eq!(gnp(&mut rng, 10, 1.0).m(), 45);
    }

    #[test]
    fn gnm_exact_edges() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = gnm(&mut rng, 12, 20);
        assert_eq!(g.m(), 20);
        g.validate().unwrap();
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = StdRng::seed_from_u64(3);
        for n in [1usize, 2, 3, 5, 10, 30] {
            let g = random_tree(&mut rng, n);
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(is_connected(&g), "tree on {n} vertices disconnected");
        }
    }

    #[test]
    fn ba_graph_connected_small_diameter() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = barabasi_albert(&mut rng, 60, 3);
        assert!(is_connected(&g));
        assert!(diameter(&g).unwrap() <= 6);
    }

    #[test]
    fn watts_strogatz_degree_mass_preserved() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = watts_strogatz(&mut rng, 40, 4, 0.2);
        // Rewiring preserves the number of edges except in pathological
        // saturation; 40*4/2 = 80.
        assert!(g.m() >= 75 && g.m() <= 80);
        g.validate().unwrap();
    }

    #[test]
    fn random_split_is_connected_diam2ish() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = random_split(&mut rng, 6, 10, 0.4);
        assert!(is_connected(&g));
        assert!(diameter(&g).unwrap() <= 3);
    }

    #[test]
    fn core_periphery_has_diameter_exactly_two() {
        let mut rng = StdRng::seed_from_u64(21);
        for (n, core, p) in [(200usize, 8usize, 0.0), (500, 64, 0.01), (64, 64, 0.0)] {
            let g = core_periphery(&mut rng, n, core, p);
            g.validate().unwrap();
            assert!(is_connected(&g), "n={n} core={core} disconnected");
            let d = diameter(&g).unwrap();
            let expected = if core >= n { 1 } else { 2 };
            assert_eq!(d, expected, "n={n} core={core}");
        }
    }

    #[test]
    fn random_cograph_is_cograph() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [1usize, 2, 5, 12, 25] {
            let g = random_cograph(&mut rng, n, 0.5);
            assert!(Cotree::build(&g).is_some(), "n={n} not a cograph");
        }
    }

    #[test]
    fn connected_cograph_is_connected() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = random_connected_cograph(&mut rng, 20, 0.3);
        assert!(is_connected(&g));
        assert!(Cotree::build(&g).is_some());
    }

    #[test]
    fn gnp_diameter_filter() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = gnp_with_diameter_at_most(&mut rng, 25, 0.5, 2);
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn generators_are_deterministic_under_seed() {
        let g1 = gnp(&mut StdRng::seed_from_u64(42), 20, 0.3);
        let g2 = gnp(&mut StdRng::seed_from_u64(42), 20, 0.3);
        assert_eq!(g1, g2);
    }
}
