//! Deterministic graph families.
//!
//! Includes every family the paper name-drops when surveying known
//! polynomial cases of L(2,1)-labeling: paths, cycles, wheels, stars,
//! complete (multipartite) graphs, plus grids and the Petersen graph as
//! structured test fixtures.

use crate::graph::Graph;

/// Path `P_n` (`n ≥ 0`): edges `i — i+1`.
pub fn path(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for i in 1..n {
        g.add_edge(i - 1, i);
    }
    g
}

/// Cycle `C_n` (`n ≥ 3`).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut g = path(n);
    g.add_edge(n - 1, 0);
    g
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v);
        }
    }
    g
}

/// Star `K_{1,n-1}`: vertex 0 is the center (`n ≥ 1`).
pub fn star(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(0, v);
    }
    g
}

/// Wheel `W_n`: cycle on `n-1` outer vertices plus a hub (vertex `n-1`),
/// `n ≥ 4`.
pub fn wheel(n: usize) -> Graph {
    assert!(n >= 4, "wheel needs at least 4 vertices");
    let mut g = Graph::new(n);
    let rim = n - 1;
    for i in 0..rim {
        g.add_edge(i, (i + 1) % rim);
        g.add_edge(i, rim);
    }
    g
}

/// Complete bipartite `K_{a,b}`; the first `a` vertices form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    complete_multipartite(&[a, b])
}

/// Complete multipartite graph with the given part sizes. Diameter ≤ 2
/// whenever at least two parts are nonempty — a canonical small-diameter
/// family with tiny neighborhood diversity.
pub fn complete_multipartite(parts: &[usize]) -> Graph {
    let n: usize = parts.iter().sum();
    let mut g = Graph::new(n);
    let mut starts = Vec::with_capacity(parts.len() + 1);
    let mut acc = 0;
    for &p in parts {
        starts.push(acc);
        acc += p;
    }
    starts.push(acc);
    for i in 0..parts.len() {
        for j in (i + 1)..parts.len() {
            for u in starts[i]..starts[i + 1] {
                for v in starts[j]..starts[j + 1] {
                    g.add_edge(u, v);
                }
            }
        }
    }
    g
}

/// `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let v = r * cols + c;
            if c + 1 < cols {
                g.add_edge(v, v + 1);
            }
            if r + 1 < rows {
                g.add_edge(v, v + cols);
            }
        }
    }
    g
}

/// The Petersen graph (n = 10, 3-regular, diameter 2).
pub fn petersen() -> Graph {
    let mut g = Graph::new(10);
    for i in 0..5 {
        g.add_edge(i, (i + 1) % 5); // outer C5
        g.add_edge(5 + i, 5 + (i + 2) % 5); // inner pentagram
        g.add_edge(i, 5 + i); // spokes
    }
    g
}

/// Split graph: a clique on the first `k` vertices, an independent set on the
/// remaining `i` vertices, every independent vertex adjacent to every clique
/// vertex. Connected with diameter ≤ 2 for `k ≥ 1`.
pub fn split_graph(k: usize, i: usize) -> Graph {
    let mut g = complete(k);
    let mut h = Graph::new(k + i);
    for (u, v) in g.edges() {
        h.add_edge(u, v);
    }
    for s in 0..i {
        for c in 0..k {
            h.add_edge(k + s, c);
        }
    }
    std::mem::swap(&mut g, &mut h);
    g
}

/// Caterpillar: a spine path of length `spine` with `legs` pendant vertices
/// attached to each spine vertex. A tree fixture for baseline labelers.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    let n = spine + spine * legs;
    let mut g = Graph::new(n);
    for i in 1..spine {
        g.add_edge(i - 1, i);
    }
    for s in 0..spine {
        for l in 0..legs {
            g.add_edge(s, spine + s * legs + l);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameter;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5);
        assert_eq!((p.n(), p.m()), (5, 4));
        let c = cycle(5);
        assert_eq!((c.n(), c.m()), (5, 5));
        assert!(c.has_edge(4, 0));
    }

    #[test]
    fn complete_counts() {
        let k = complete(6);
        assert_eq!(k.m(), 15);
        assert!(k.is_complete());
    }

    #[test]
    fn wheel_structure() {
        let w = wheel(6); // C5 + hub
        assert_eq!(w.m(), 5 + 5);
        assert_eq!(w.degree(5), 5);
        assert_eq!(diameter(&w), Some(2));
    }

    #[test]
    fn multipartite_diameter_two() {
        let g = complete_multipartite(&[3, 2, 4]);
        assert_eq!(g.n(), 9);
        assert_eq!(diameter(&g), Some(2));
        // edges: 3*2 + 3*4 + 2*4 = 26
        assert_eq!(g.m(), 26);
    }

    #[test]
    fn petersen_is_3_regular_diameter_2() {
        let g = petersen();
        assert_eq!(g.n(), 10);
        assert_eq!(g.m(), 15);
        assert!((0..10).all(|v| g.degree(v) == 3));
        assert_eq!(diameter(&g), Some(2));
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4);
        assert_eq!(diameter(&g), Some(5));
    }

    #[test]
    fn split_graph_diameter() {
        let g = split_graph(4, 6);
        assert_eq!(g.n(), 10);
        assert_eq!(diameter(&g), Some(2));
        g.validate().unwrap();
    }

    #[test]
    fn caterpillar_is_tree() {
        let g = caterpillar(4, 2);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), g.n() - 1);
        assert!(crate::traversal::is_connected(&g));
    }

    #[test]
    fn star_center_degree() {
        let g = star(8);
        assert_eq!(g.degree(0), 7);
        assert_eq!(diameter(&g), Some(2));
    }
}
