//! Instance I/O: parse and serialize graphs in the two formats the `dclab`
//! CLI accepts.
//!
//! * **Edge list** — one `u v` pair per line, optional first line `n <N>`
//!   to pin the vertex count (isolated tail vertices are otherwise
//!   unrepresentable); `#` starts a comment. Vertices are 0-based.
//! * **DIMACS** — the classic `c` / `p edge <n> <m>` / `e <u> <v>` format
//!   with 1-based vertices.
//!
//! Parsing is strict about shape (every edge line must have exactly two
//! endpoints in range) but forgiving about redundancy: duplicate edges and
//! self-loops are rejected rather than silently dropped, so a round-trip
//! through [`write_edge_list`] / [`parse_edge_list`] is exact.

use crate::graph::Graph;

/// On-disk instance formats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    EdgeList,
    Dimacs,
}

impl Format {
    /// Guess from a file name: `.col`/`.dimacs` → DIMACS, else edge list.
    pub fn from_path(path: &str) -> Format {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".col") || lower.ends_with(".dimacs") {
            Format::Dimacs
        } else {
            Format::EdgeList
        }
    }
}

/// Parse failure, with the 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse `text` as `format`.
pub fn parse(text: &str, format: Format) -> Result<Graph, ParseError> {
    match format {
        Format::EdgeList => parse_edge_list(text),
        Format::Dimacs => parse_dimacs(text),
    }
}

/// Serialize `g` as `format`.
pub fn serialize(g: &Graph, format: Format) -> String {
    match format {
        Format::EdgeList => write_edge_list(g),
        Format::Dimacs => write_dimacs(g),
    }
}

/// Parse the edge-list format (0-based, optional `n <N>` header, `#`
/// comments). The vertex count is `max endpoint + 1` unless pinned higher
/// by the header.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (line, u, v)
    let mut max_v = 0usize;
    let mut saw_any = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let first = it.next().unwrap();
        if first == "n" {
            if saw_any || n.is_some() {
                return Err(err(lineno, "n header must be the first directive"));
            }
            let v = it
                .next()
                .ok_or_else(|| err(lineno, "n header missing count"))?;
            if it.next().is_some() {
                return Err(err(lineno, "trailing tokens after n header"));
            }
            n = Some(
                v.parse()
                    .map_err(|_| err(lineno, format!("bad vertex count '{v}'")))?,
            );
            continue;
        }
        saw_any = true;
        let u: usize = first
            .parse()
            .map_err(|_| err(lineno, format!("bad endpoint '{first}'")))?;
        let v_tok = it
            .next()
            .ok_or_else(|| err(lineno, "edge line needs two endpoints"))?;
        let v: usize = v_tok
            .parse()
            .map_err(|_| err(lineno, format!("bad endpoint '{v_tok}'")))?;
        if it.next().is_some() {
            return Err(err(lineno, "trailing tokens after edge"));
        }
        if u == v {
            return Err(err(lineno, format!("self-loop at vertex {u}")));
        }
        if let Some(n) = n {
            // Header came first (enforced above), so check in place.
            if u >= n || v >= n {
                return Err(err(
                    lineno,
                    format!("endpoint {} out of range for declared n = {n}", u.max(v)),
                ));
            }
        }
        max_v = max_v.max(u).max(v);
        edges.push((lineno, u, v));
    }
    let n = match n {
        Some(n) => n,
        None => {
            if edges.is_empty() {
                0
            } else {
                max_v + 1
            }
        }
    };
    build(n, &edges)
}

/// Parse the DIMACS `.col` format (1-based `e u v` lines).
///
/// Tolerant of the formatting noise found in real `.col` files: leading and
/// trailing whitespace (including CR from CRLF line endings), blank lines,
/// and `c` comment lines anywhere — before the `p` line, interleaved with
/// `e` lines, or after them — including the glued `cComment text` form.
/// Malformed directives still fail with the exact 1-based source line.
pub fn parse_dimacs(text: &str) -> Result<Graph, ParseError> {
    let mut n: Option<usize> = None;
    let mut declared_m: Option<usize> = None;
    let mut p_line = 1usize;
    let mut edges: Vec<(usize, usize, usize)> = Vec::new(); // (line, u, v)
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        // Comment lines: `c` as its own token, or glued (`cGraph from ...`).
        if line.starts_with('c') {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next().unwrap() {
            "p" => {
                if n.is_some() {
                    return Err(err(lineno, "duplicate p line"));
                }
                match it.next() {
                    Some("edge") | Some("edges") | Some("col") => {}
                    other => {
                        return Err(err(
                            lineno,
                            format!("expected 'p edge', got 'p {}'", other.unwrap_or("")),
                        ))
                    }
                }
                let nv = it.next().ok_or_else(|| err(lineno, "p line missing n"))?;
                let nm = it.next().ok_or_else(|| err(lineno, "p line missing m"))?;
                n = Some(
                    nv.parse()
                        .map_err(|_| err(lineno, format!("bad n '{nv}'")))?,
                );
                declared_m = Some(
                    nm.parse()
                        .map_err(|_| err(lineno, format!("bad m '{nm}'")))?,
                );
                if it.next().is_some() {
                    return Err(err(lineno, "trailing tokens after p line"));
                }
                p_line = lineno;
            }
            "e" => {
                let n = n.ok_or_else(|| err(lineno, "e line before p line"))?;
                let ut = it.next().ok_or_else(|| err(lineno, "e line missing u"))?;
                let vt = it.next().ok_or_else(|| err(lineno, "e line missing v"))?;
                let u: usize = ut
                    .parse()
                    .map_err(|_| err(lineno, format!("bad endpoint '{ut}'")))?;
                let v: usize = vt
                    .parse()
                    .map_err(|_| err(lineno, format!("bad endpoint '{vt}'")))?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(err(
                        lineno,
                        format!("endpoint out of range 1..={n}: e {u} {v}"),
                    ));
                }
                if u == v {
                    return Err(err(lineno, format!("self-loop at vertex {u}")));
                }
                if it.next().is_some() {
                    return Err(err(lineno, "trailing tokens after e line"));
                }
                edges.push((lineno, u - 1, v - 1));
            }
            other => return Err(err(lineno, format!("unknown directive '{other}'"))),
        }
    }
    let n = n.ok_or_else(|| err(text.lines().count().max(1), "missing p line"))?;
    if let Some(m) = declared_m {
        if m != edges.len() {
            return Err(err(
                p_line,
                format!("p line declares {m} edges but {} were listed", edges.len()),
            ));
        }
    }
    build(n, &edges)
}

fn build(n: usize, edges: &[(usize, usize, usize)]) -> Result<Graph, ParseError> {
    let mut g = Graph::new(n);
    for &(line, u, v) in edges {
        if !g.add_edge(u, v) {
            return Err(err(line, format!("duplicate edge {u}-{v}")));
        }
    }
    Ok(g)
}

fn strip_comment(line: &str) -> &str {
    match line.find('#') {
        Some(i) => line[..i].trim(),
        None => line.trim(),
    }
}

/// Serialize as the edge-list format (with `n` header, sorted edges).
pub fn write_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + g.m() * 8);
    out.push_str(&format!("n {}\n", g.n()));
    for (u, v) in g.edges() {
        out.push_str(&format!("{u} {v}\n"));
    }
    out
}

/// Serialize as DIMACS (1-based).
pub fn write_dimacs(g: &Graph) -> String {
    let mut out = String::with_capacity(32 + g.m() * 10);
    out.push_str(&format!("p edge {} {}\n", g.n(), g.m()));
    for (u, v) in g.edges() {
        out.push_str(&format!("e {} {}\n", u + 1, v + 1));
    }
    out
}

/// Read a graph from a file, guessing the format from the extension.
pub fn read_file(path: &str) -> Result<Graph, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse(&text, Format::from_path(path)).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn edge_list_round_trip() {
        let g = classic::petersen();
        let text = write_edge_list(&g);
        let back = parse_edge_list(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn dimacs_round_trip() {
        let g = classic::petersen();
        let text = write_dimacs(&g);
        let back = parse_dimacs(&text).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn edge_list_without_header_infers_n() {
        let g = parse_edge_list("0 1\n1 2\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
    }

    #[test]
    fn edge_list_header_pins_isolated_vertices() {
        let g = parse_edge_list("n 5\n0 1\n").unwrap();
        assert_eq!((g.n(), g.m()), (5, 1));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let g = parse_edge_list("# a triangle\nn 3\n\n0 1 # first\n1 2\n0 2\n").unwrap();
        assert!(g.is_complete());
    }

    #[test]
    fn malformed_lines_rejected_with_position() {
        assert_eq!(parse_edge_list("0 1\nx 2\n").unwrap_err().line, 2);
        assert_eq!(parse_edge_list("0\n").unwrap_err().line, 1);
        assert!(parse_edge_list("3 3\n")
            .unwrap_err()
            .message
            .contains("self-loop"));
        let dup = parse_edge_list("0 1\n1 2\n1 0\n").unwrap_err();
        assert!(dup.message.contains("duplicate"));
        assert_eq!(dup.line, 3);
        let range = parse_edge_list("n 2\n0 1\n0 5\n").unwrap_err();
        assert!(range.message.contains("out of range"));
        assert_eq!(range.line, 3);
    }

    #[test]
    fn dimacs_requires_p_line_and_checks_m() {
        assert!(parse_dimacs("e 1 2\n").is_err());
        assert!(parse_dimacs("p edge 3 2\ne 1 2\n").is_err()); // m mismatch
        let g = parse_dimacs("c comment\np edge 3 2\ne 1 2\ne 2 3\n").unwrap();
        assert_eq!((g.n(), g.m()), (3, 2));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2));
    }

    #[test]
    fn dimacs_tolerates_real_world_noise() {
        // Trailing whitespace (spaces, tabs, CR), blank lines, and comment
        // lines — plain and glued — interleaved with the e lines.
        let text = "c generated by dclab \r\n\
                    \n\
                    p edge 4 4   \t\r\n\
                    e 1 2\t\n\
                    cInterleaved glued comment\n\
                    e 2 3   \n\
                    \n\
                    c another one\n\
                    e 3 4\r\n\
                    e 4 1\n\
                    c trailing comment\n";
        let g = parse_dimacs(text).unwrap();
        assert_eq!((g.n(), g.m()), (4, 4));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 2) && g.has_edge(2, 3) && g.has_edge(3, 0));
    }

    #[test]
    fn dimacs_errors_stay_line_accurate() {
        // Noise lines still count toward the reported line number.
        let bad_e = parse_dimacs("c head\n\np edge 3 2\nc mid\ne 1 2\ne 2 9\n").unwrap_err();
        assert_eq!(bad_e.line, 6);
        assert!(bad_e.message.contains("out of range"));
        let trailing = parse_dimacs("p edge 3 1\ne 1 2 7\n").unwrap_err();
        assert_eq!(trailing.line, 2);
        assert!(trailing.message.contains("trailing tokens"));
        let trailing_p = parse_dimacs("p edge 3 1 extra\n").unwrap_err();
        assert_eq!(trailing_p.line, 1);
        assert!(trailing_p.message.contains("trailing tokens"));
    }

    #[test]
    fn format_guess_from_extension() {
        assert_eq!(Format::from_path("foo.col"), Format::Dimacs);
        assert_eq!(Format::from_path("FOO.DIMACS"), Format::Dimacs);
        assert_eq!(Format::from_path("foo.edges"), Format::EdgeList);
        assert_eq!(Format::from_path("foo.txt"), Format::EdgeList);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(parse_edge_list("").unwrap().n(), 0);
        assert_eq!(parse_edge_list("n 4\n").unwrap().n(), 4);
        assert_eq!(parse_dimacs("p edge 0 0\n").unwrap().n(), 0);
    }
}
