//! Diameter and eccentricity helpers.

use crate::apsp::BLOCK;
use crate::csr::Csr;
use crate::graph::Graph;
use crate::traversal::{bfs64_distances_csr, bfs_distances};
use crate::INF;

/// Diameter of `g`, or `None` when `g` is disconnected or empty (`n = 0`
/// — no vertex pair, matching [`crate::DistanceMatrix::diameter`]).
///
/// Runs the same bit-parallel BFS kernel as APSP, but streams blocks of
/// 64 sources and folds their eccentricities instead of materializing the
/// `n × n` matrix — `O(n)` words of memory per thread, which is what makes
/// feature extraction (`Strategy::Auto` dispatch) cheap on large instances.
pub fn diameter(g: &Graph) -> Option<u32> {
    let n = g.n();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return Some(0);
    }
    let csr = Csr::from_graph(g);
    let per_block: Vec<Option<u32>> = dclab_par::par_map_chunks(n, BLOCK, |range| {
        let sources: Vec<usize> = range.collect();
        let mut rows = vec![0u32; sources.len() * n];
        bfs64_distances_csr(&csr, &sources, &mut rows);
        let mut max = 0u32;
        for &d in &rows {
            if d == INF {
                return None;
            }
            max = max.max(d);
        }
        Some(max)
    });
    per_block
        .into_iter()
        .try_fold(0u32, |acc, ecc| ecc.map(|e| acc.max(e)))
}

/// Eccentricity of a single vertex via one BFS; `None` when some vertex is
/// unreachable.
pub fn eccentricity(g: &Graph, v: usize) -> Option<u32> {
    let d = bfs_distances(g, v);
    let mut max = 0;
    for &x in &d {
        if x == INF {
            return None;
        }
        max = max.max(x);
    }
    Some(max)
}

/// Cheap *lower* bound on the diameter by double-sweep BFS: BFS from `start`,
/// then BFS from the farthest vertex found. Exact on trees; never exceeds the
/// true diameter on connected graphs.
pub fn diameter_lower_bound(g: &Graph, start: usize) -> Option<u32> {
    if g.n() == 0 {
        // Align with `diameter`: an empty graph has no vertex pair.
        return None;
    }
    let d1 = bfs_distances(g, start);
    let (far, &best) = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == INF { 0 } else { d })
        .unwrap();
    if d1.contains(&INF) {
        return None;
    }
    let _ = best;
    eccentricity(g, far)
}

/// `true` iff `g` is connected with diameter at most `k` — the eligibility
/// check of Theorem 2.
pub fn has_diameter_at_most(g: &Graph, k: u32) -> bool {
    matches!(diameter(g), Some(d) if d <= k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn path_diameter() {
        assert_eq!(diameter(&classic::path(7)), Some(6));
    }

    #[test]
    fn star_has_diameter_two() {
        let g = classic::star(9);
        assert_eq!(diameter(&g), Some(2));
        assert!(has_diameter_at_most(&g, 2));
        assert!(!has_diameter_at_most(&g, 1));
    }

    #[test]
    fn double_sweep_is_exact_on_trees() {
        let g = classic::path(10);
        assert_eq!(diameter_lower_bound(&g, 4), Some(9));
    }

    #[test]
    fn eccentricity_of_center() {
        let g = classic::star(5);
        assert_eq!(eccentricity(&g, 0), Some(1));
        assert_eq!(eccentricity(&g, 1), Some(2));
    }

    #[test]
    fn disconnected_reports_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert!(!has_diameter_at_most(&g, 5));
    }

    #[test]
    fn empty_and_singleton_edges() {
        // n = 0: no vertex pair → None everywhere, matching the
        // DistanceMatrix doc.
        assert_eq!(diameter(&Graph::new(0)), None);
        assert_eq!(diameter_lower_bound(&Graph::new(0), 0), None);
        assert!(!has_diameter_at_most(&Graph::new(0), 0));
        // n = 1: a single vertex has diameter 0.
        assert_eq!(diameter(&Graph::new(1)), Some(0));
        assert_eq!(eccentricity(&Graph::new(1), 0), Some(0));
        assert!(has_diameter_at_most(&Graph::new(1), 0));
    }

    #[test]
    fn streaming_diameter_matches_matrix_across_blocks() {
        use crate::apsp::DistanceMatrix;
        use crate::generators::random;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13);
        for n in [30usize, 64, 65, 150] {
            for p in [0.02f64, 0.15] {
                let g = random::gnp(&mut rng, n, p);
                assert_eq!(
                    diameter(&g),
                    DistanceMatrix::compute_sequential(&g).diameter(),
                    "n={n} p={p}"
                );
            }
        }
    }
}
