//! Diameter and eccentricity helpers.

use crate::apsp::DistanceMatrix;
use crate::graph::Graph;
use crate::traversal::bfs_distances;
use crate::INF;

/// Diameter of `g`, or `None` when `g` is disconnected.
pub fn diameter(g: &Graph) -> Option<u32> {
    DistanceMatrix::compute(g).diameter()
}

/// Eccentricity of a single vertex via one BFS; `None` when some vertex is
/// unreachable.
pub fn eccentricity(g: &Graph, v: usize) -> Option<u32> {
    let d = bfs_distances(g, v);
    let mut max = 0;
    for &x in &d {
        if x == INF {
            return None;
        }
        max = max.max(x);
    }
    Some(max)
}

/// Cheap *lower* bound on the diameter by double-sweep BFS: BFS from `start`,
/// then BFS from the farthest vertex found. Exact on trees; never exceeds the
/// true diameter on connected graphs.
pub fn diameter_lower_bound(g: &Graph, start: usize) -> Option<u32> {
    if g.n() == 0 {
        return Some(0);
    }
    let d1 = bfs_distances(g, start);
    let (far, &best) = d1
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| if d == INF { 0 } else { d })
        .unwrap();
    if d1.contains(&INF) {
        return None;
    }
    let _ = best;
    eccentricity(g, far)
}

/// `true` iff `g` is connected with diameter at most `k` — the eligibility
/// check of Theorem 2.
pub fn has_diameter_at_most(g: &Graph, k: u32) -> bool {
    matches!(diameter(g), Some(d) if d <= k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn path_diameter() {
        assert_eq!(diameter(&classic::path(7)), Some(6));
    }

    #[test]
    fn star_has_diameter_two() {
        let g = classic::star(9);
        assert_eq!(diameter(&g), Some(2));
        assert!(has_diameter_at_most(&g, 2));
        assert!(!has_diameter_at_most(&g, 1));
    }

    #[test]
    fn double_sweep_is_exact_on_trees() {
        let g = classic::path(10);
        assert_eq!(diameter_lower_bound(&g, 4), Some(9));
    }

    #[test]
    fn eccentricity_of_center() {
        let g = classic::star(5);
        assert_eq!(eccentricity(&g, 0), Some(1));
        assert_eq!(eccentricity(&g, 1), Some(2));
    }

    #[test]
    fn disconnected_reports_none() {
        let g = Graph::from_edges(3, &[(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(eccentricity(&g, 0), None);
        assert!(!has_diameter_at_most(&g, 5));
    }
}
