//! Breadth-first search and connectivity.

use crate::csr::Csr;
use crate::graph::Graph;
use crate::INF;
use std::collections::VecDeque;

/// Distances from `src` to every vertex ([`INF`] when unreachable).
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u32> {
    let csr = Csr::from_graph(g);
    bfs_distances_csr(&csr, src)
}

/// CSR-based BFS kernel; reused by the parallel APSP driver.
pub fn bfs_distances_csr(csr: &Csr, src: usize) -> Vec<u32> {
    let n = csr.n();
    let mut dist = vec![INF; n];
    let mut queue = VecDeque::with_capacity(n);
    dist[src] = 0;
    queue.push_back(src as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in csr.neighbors(u as usize) {
            if dist[v as usize] == INF {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// BFS truncated at `radius`: distances `> radius` are reported as [`INF`].
/// Used by greedy labeling, which only needs distances up to `k = |p|`.
pub fn bfs_distances_bounded(csr: &Csr, src: usize, radius: u32) -> Vec<u32> {
    let n = csr.n();
    let mut dist = vec![INF; n];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == radius {
            continue;
        }
        for &v in csr.neighbors(u as usize) {
            if dist[v as usize] == INF {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components; returns `(component_id per vertex, #components)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = count;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// `true` iff `g` is connected (the empty graph and `n = 1` count as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).1 == 1
}

/// Vertex sets of each connected component, in ascending order of their
/// smallest vertex.
pub fn component_vertex_sets(g: &Graph) -> Vec<Vec<usize>> {
    let (comp, count) = connected_components(g);
    let mut sets = vec![Vec::new(); count];
    for (v, &c) in comp.iter().enumerate() {
        sets[c].push(v);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn bfs_on_path() {
        let g = classic::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_is_inf() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = classic::path(6);
        let csr = Csr::from_graph(&g);
        let d = bfs_distances_bounded(&csr, 0, 2);
        assert_eq!(d[..3], [0, 1, 2]);
        assert_eq!(d[3], INF);
        assert_eq!(d[5], INF);
    }

    #[test]
    fn components_counted() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert!(!is_connected(&g));
        let sets = component_vertex_sets(&g);
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn singleton_and_empty_are_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }
}
