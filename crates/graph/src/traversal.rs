//! Breadth-first search (scalar and bit-parallel multi-source) and
//! connectivity.

use crate::bitset::BitRows;
use crate::csr::Csr;
use crate::graph::Graph;
use crate::INF;
use std::collections::VecDeque;

/// Distances from `src` to every vertex ([`INF`] when unreachable).
pub fn bfs_distances(g: &Graph, src: usize) -> Vec<u32> {
    let csr = Csr::from_graph(g);
    bfs_distances_csr(&csr, src)
}

/// CSR-based BFS kernel; reused by the parallel APSP driver.
pub fn bfs_distances_csr(csr: &Csr, src: usize) -> Vec<u32> {
    let n = csr.n();
    let mut dist = vec![INF; n];
    let mut queue = VecDeque::with_capacity(n);
    dist[src] = 0;
    queue.push_back(src as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in csr.neighbors(u as usize) {
            if dist[v as usize] == INF {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Bit-parallel BFS from up to 64 sources at once.
///
/// Wave `i` starts at `sources[i]`; per vertex, one `u64` word holds which
/// waves have reached it (`visited`) and which reached it exactly this
/// level (`frontier`), so a single OR over a neighbor list advances all
/// waves together. On small-diameter graphs — the paper's regime — the
/// level count is tiny and frontiers are dense, which is where this wins
/// roughly a word-width factor over one BFS per source.
///
/// Distances land in `out`, row-major by source: `out[i * n + v]` is the
/// hop distance from `sources[i]` to `v`, [`INF`] when unreachable. `out`
/// must hold exactly `sources.len() * n` entries.
pub fn bfs64_distances_csr(csr: &Csr, sources: &[usize], out: &mut [u32]) {
    let n = csr.n();
    let b = sources.len();
    assert!(b <= 64, "bfs64 block is at most 64 sources, got {b}");
    assert_eq!(out.len(), b * n, "out must be sources.len() × n");
    out.fill(INF);
    let mut visited = BitRows::new(n, b);
    let mut frontier = BitRows::new(n, b);
    let mut next = BitRows::new(n, b);
    // Vertices whose frontier word is nonzero this level / touched by a
    // push this level. Lists keep sparse early levels cheap; the per-word
    // OR keeps dense late levels cheap.
    let mut active: Vec<u32> = Vec::with_capacity(b);
    let mut touched: Vec<u32> = Vec::with_capacity(n.min(1024));
    for (i, &s) in sources.iter().enumerate() {
        debug_assert!(s < n);
        out[i * n + s] = 0;
        if visited.word(s) == 0 {
            active.push(s as u32);
        }
        visited.or_word(s, 1u64 << i);
        frontier.or_word(s, 1u64 << i);
    }
    let mut level = 0u32;
    while !active.is_empty() {
        level += 1;
        for &u in &active {
            let fu = frontier.word(u as usize);
            for &v in csr.neighbors(u as usize) {
                if next.word(v as usize) == 0 {
                    touched.push(v);
                }
                next.or_word(v as usize, fu);
            }
        }
        active.clear();
        for &v in &touched {
            let vu = v as usize;
            let new = next.word(vu) & !visited.word(vu);
            next.set_word(vu, 0);
            if new != 0 {
                visited.or_word(vu, new);
                // Only the waves that arrived *this* level propagate next
                // level; stale frontier words of inactive vertices are
                // never read.
                frontier.set_word(vu, new);
                active.push(v);
                let mut bits = new;
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    out[i * n + vu] = level;
                    bits &= bits - 1;
                }
            }
        }
        touched.clear();
    }
}

/// BFS truncated at `radius`: distances `> radius` are reported as [`INF`].
/// Used by greedy labeling, which only needs distances up to `k = |p|`.
pub fn bfs_distances_bounded(csr: &Csr, src: usize, radius: u32) -> Vec<u32> {
    let n = csr.n();
    let mut dist = vec![INF; n];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src as u32);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == radius {
            continue;
        }
        for &v in csr.neighbors(u as usize) {
            if dist[v as usize] == INF {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components; returns `(component_id per vertex, #components)`.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    let mut stack = Vec::new();
    for s in 0..n {
        if comp[s] != usize::MAX {
            continue;
        }
        comp[s] = count;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                let v = v as usize;
                if comp[v] == usize::MAX {
                    comp[v] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// `true` iff `g` is connected (the empty graph and `n = 1` count as connected).
pub fn is_connected(g: &Graph) -> bool {
    g.n() <= 1 || connected_components(g).1 == 1
}

/// Vertex sets of each connected component, in ascending order of their
/// smallest vertex.
pub fn component_vertex_sets(g: &Graph) -> Vec<Vec<usize>> {
    let (comp, count) = connected_components(g);
    let mut sets = vec![Vec::new(); count];
    for (v, &c) in comp.iter().enumerate() {
        sets[c].push(v);
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn bfs_on_path() {
        let g = classic::path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_unreachable_is_inf() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], INF);
        assert_eq!(d[3], INF);
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = classic::path(6);
        let csr = Csr::from_graph(&g);
        let d = bfs_distances_bounded(&csr, 0, 2);
        assert_eq!(d[..3], [0, 1, 2]);
        assert_eq!(d[3], INF);
        assert_eq!(d[5], INF);
    }

    #[test]
    fn bfs64_matches_scalar_bfs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(11);
        for &(n, p) in &[(1usize, 0.0), (5, 0.3), (40, 0.1), (70, 0.05), (130, 0.04)] {
            let g = crate::generators::random::gnp(&mut rng, n, p);
            let csr = Csr::from_graph(&g);
            let sources: Vec<usize> = (0..n.min(64)).collect();
            let mut out = vec![0u32; sources.len() * n];
            bfs64_distances_csr(&csr, &sources, &mut out);
            for (i, &s) in sources.iter().enumerate() {
                assert_eq!(
                    out[i * n..(i + 1) * n],
                    bfs_distances_csr(&csr, s),
                    "n={n} source {s}"
                );
            }
        }
    }

    #[test]
    fn bfs64_arbitrary_source_subsets() {
        let g = classic::path(9);
        let csr = Csr::from_graph(&g);
        let sources = [8usize, 0, 4];
        let mut out = vec![0u32; 3 * 9];
        bfs64_distances_csr(&csr, &sources, &mut out);
        assert_eq!(out[8], 0); // row 0 = BFS from 8: d(8,8) = 0
        assert_eq!(out[0], 8); // d(8,0) = 8
        assert_eq!(out[9], 0); // row 1 = BFS from 0
        assert_eq!(out[9 + 8], 8);
        assert_eq!(out[18 + 4], 0); // row 2 = BFS from 4
        assert_eq!(out[18], 4);
    }

    #[test]
    fn bfs64_empty_block_and_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let csr = Csr::from_graph(&g);
        let mut out: Vec<u32> = Vec::new();
        bfs64_distances_csr(&csr, &[], &mut out);
        let mut out = vec![0u32; 4];
        bfs64_distances_csr(&csr, &[0], &mut out);
        assert_eq!(out, vec![0, 1, INF, INF]);
    }

    #[test]
    fn components_counted() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[0]);
        assert!(!is_connected(&g));
        let sets = component_vertex_sets(&g);
        assert_eq!(sets, vec![vec![0, 1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn singleton_and_empty_are_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
        assert!(!is_connected(&Graph::new(2)));
    }
}
