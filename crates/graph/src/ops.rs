//! Graph operations: complement, powers, induced subgraphs, disjoint union
//! and join (the cotree building blocks).

use crate::apsp::DistanceMatrix;
use crate::graph::Graph;

/// Complement graph `Ḡ`: same vertices, exactly the missing edges.
pub fn complement(g: &Graph) -> Graph {
    let n = g.n();
    let mut c = Graph::new(n);
    for u in 0..n {
        let nbrs = g.neighbors(u);
        let mut it = nbrs.iter().peekable();
        for v in (u + 1)..n {
            while let Some(&&w) = it.peek() {
                if (w as usize) < v {
                    it.next();
                } else {
                    break;
                }
            }
            let adjacent = matches!(it.peek(), Some(&&w) if w as usize == v);
            if !adjacent {
                c.add_edge(u, v);
            }
        }
    }
    c
}

/// `k`-th power `G^k`: edge `{u,v}` iff `1 ≤ dist_G(u,v) ≤ k`.
pub fn power(g: &Graph, k: u32) -> Graph {
    assert!(k >= 1, "graph power requires k >= 1");
    let n = g.n();
    let d = DistanceMatrix::compute(g);
    let mut p = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let duv = d.get(u, v);
            if duv >= 1 && duv <= k {
                p.add_edge(u, v);
            }
        }
    }
    p
}

/// Subgraph induced by `vertices` (relabelled `0..vertices.len()` in the
/// given order). Returns the new graph and the old→position mapping implied
/// by `vertices`.
pub fn induced_subgraph(g: &Graph, vertices: &[usize]) -> Graph {
    let mut pos = vec![usize::MAX; g.n()];
    for (i, &v) in vertices.iter().enumerate() {
        assert!(v < g.n(), "vertex out of range");
        assert!(pos[v] == usize::MAX, "duplicate vertex in induced set");
        pos[v] = i;
    }
    let mut h = Graph::new(vertices.len());
    for (i, &v) in vertices.iter().enumerate() {
        for &w in g.neighbors(v) {
            let w = w as usize;
            if pos[w] != usize::MAX && pos[w] > i {
                h.add_edge(i, pos[w]);
            }
        }
    }
    h
}

/// Disjoint union: vertices of `b` are shifted by `a.n()`.
pub fn disjoint_union(a: &Graph, b: &Graph) -> Graph {
    let mut g = Graph::new(a.n() + b.n());
    for (u, v) in a.edges() {
        g.add_edge(u, v);
    }
    for (u, v) in b.edges() {
        g.add_edge(u + a.n(), v + a.n());
    }
    g
}

/// Join: disjoint union plus all cross edges (the cotree "series" node).
pub fn join(a: &Graph, b: &Graph) -> Graph {
    let mut g = disjoint_union(a, b);
    for u in 0..a.n() {
        for v in 0..b.n() {
            g.add_edge(u, a.n() + v);
        }
    }
    g
}

/// Add a universal vertex adjacent to everything (the Griggs–Yeh / Theorem 3
/// construction step); the new vertex gets index `g.n()`.
pub fn add_universal_vertex(g: &Graph) -> Graph {
    let n = g.n();
    let mut h = Graph::new(n + 1);
    for (u, v) in g.edges() {
        h.add_edge(u, v);
    }
    for v in 0..n {
        h.add_edge(v, n);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::diameter;
    use crate::generators::classic;

    #[test]
    fn complement_involution() {
        let g = classic::cycle(7);
        assert_eq!(complement(&complement(&g)), g);
    }

    #[test]
    fn complement_edge_counts_sum() {
        let g = classic::path(6);
        let c = complement(&g);
        assert_eq!(g.m() + c.m(), 6 * 5 / 2);
        c.validate().unwrap();
    }

    #[test]
    fn square_of_path() {
        let g = classic::path(5);
        let p2 = power(&g, 2);
        assert!(p2.has_edge(0, 2));
        assert!(p2.has_edge(0, 1));
        assert!(!p2.has_edge(0, 3));
        assert_eq!(p2.m(), 4 + 3);
    }

    #[test]
    fn power_with_large_k_is_complete_for_connected() {
        let g = classic::path(6);
        assert!(power(&g, 5).is_complete());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let g = classic::cycle(5);
        let h = induced_subgraph(&g, &[1, 2, 4]);
        assert_eq!(h.n(), 3);
        assert!(h.has_edge(0, 1)); // 1-2 edge survives
        assert!(!h.has_edge(0, 2)); // 1-4 not an edge in C5
        h.validate().unwrap();
    }

    #[test]
    fn union_and_join_counts() {
        let a = classic::complete(3);
        let b = classic::path(4);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.n(), 7);
        assert_eq!(u.m(), 3 + 3);
        let j = join(&a, &b);
        assert_eq!(j.m(), 3 + 3 + 12);
        j.validate().unwrap();
    }

    #[test]
    fn universal_vertex_gives_diameter_two() {
        let g = Graph::new(5); // edgeless
        let h = add_universal_vertex(&g);
        assert_eq!(diameter(&h), Some(2));
        assert_eq!(h.degree(5), 5);
    }
}
