//! Canonical instance forms for caching: degree-refinement (1-WL) colors,
//! an isomorphism-invariant FNV-1a hash, and a canonical relabeling.
//!
//! The serve layer keys its report cache on [`CanonicalForm`]: two requests
//! whose graphs are isomorphic relabelings of each other should land on the
//! same cache entry. The contract is split in two so correctness never
//! depends on solving graph isomorphism:
//!
//! * [`CanonicalForm::hash`] is computed **only** from refinement-invariant
//!   data (vertex/edge counts, the stable color histogram, and the edge
//!   color-pair multiset), so it is *guaranteed* equal for isomorphic
//!   graphs. Non-isomorphic graphs may collide (1-WL is not a complete
//!   invariant); callers must confirm a hit by comparing canonical edges.
//! * [`CanonicalForm::edges`] is the edge list after a canonical relabeling
//!   built by refinement plus orbit individualization. It is exact for
//!   graphs whose stable classes are automorphism orbits (everything the
//!   generators here produce); in the rare case two isomorphic labelings
//!   canonize differently, the cache merely misses — it never serves a
//!   wrong entry.
//!
//! [`CanonicalForm::perm`] maps original vertex ids to canonical ids, which
//! lets a cache translate a stored labeling back into the requester's
//! vertex numbering.

use crate::graph::Graph;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over `u64` words (each word is fed as 8
/// little-endian bytes, so the stream is unambiguous).
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    pub fn new() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }

    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        let mut h = self.0;
        for byte in v.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &byte in bytes {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// A graph's canonical form: invariant hash, canonical relabeling, and the
/// relabeled edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CanonicalForm {
    /// Isomorphism-invariant 64-bit hash (equal for isomorphic graphs).
    pub hash: u64,
    /// `perm[old] = canonical` relabeling.
    pub perm: Vec<u32>,
    /// Edge list under `perm`, each pair `(u, v)` with `u < v`, sorted.
    pub edges: Vec<(u32, u32)>,
    /// Vertex count (canonical ids are `0..n`).
    pub n: usize,
}

impl CanonicalForm {
    /// Compute the canonical form of `g`.
    pub fn of(g: &Graph) -> CanonicalForm {
        let colors = refine_to_stable(g, None);
        let hash = invariant_hash(g, &colors);
        let perm = canonical_perm(g, colors);
        let mut edges: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| {
                let (a, b) = (perm[u], perm[v]);
                (a.min(b), a.max(b))
            })
            .collect();
        edges.sort_unstable();
        CanonicalForm {
            hash,
            perm,
            edges,
            n: g.n(),
        }
    }

    /// `true` iff `other` canonizes to the same graph (same `n` and same
    /// canonical edge list) — the exact check behind a cache hit.
    pub fn same_canonical_graph(&self, other: &CanonicalForm) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

/// The isomorphism-invariant hash alone (no relabeling work).
pub fn canon_hash(g: &Graph) -> u64 {
    let colors = refine_to_stable(g, None);
    invariant_hash(g, &colors)
}

/// One round of color refinement: recolor every vertex by
/// `(old color, sorted multiset of neighbor colors)`, with new color ids
/// assigned in lexicographic signature order (an invariant ordering, since
/// signatures are built from invariant ids). Returns the refined colors and
/// the number of distinct colors.
fn refine_round(g: &Graph, colors: &[u32]) -> (Vec<u32>, usize) {
    let n = g.n();
    let mut sigs: Vec<(Vec<u32>, usize)> = Vec::with_capacity(n);
    for v in 0..n {
        let mut sig = Vec::with_capacity(1 + g.degree(v));
        sig.push(colors[v]);
        let mut nbr: Vec<u32> = g.neighbors(v).iter().map(|&u| colors[u as usize]).collect();
        nbr.sort_unstable();
        sig.extend(nbr);
        sigs.push((sig, v));
    }
    sigs.sort();
    let mut new_colors = vec![0u32; n];
    let mut next = 0u32;
    for i in 0..n {
        if i > 0 && sigs[i].0 != sigs[i - 1].0 {
            next += 1;
        }
        new_colors[sigs[i].1] = next;
    }
    (new_colors, next as usize + 1)
}

/// Iterate refinement to the stable partition. `start` seeds the initial
/// coloring (defaults to all-equal; individualization passes a coloring
/// with one vertex split off).
fn refine_to_stable(g: &Graph, start: Option<Vec<u32>>) -> Vec<u32> {
    let n = g.n();
    let mut colors = start.unwrap_or_else(|| vec![0u32; n]);
    let mut distinct = colors
        .iter()
        .collect::<std::collections::HashSet<_>>()
        .len();
    loop {
        let (next, next_distinct) = refine_round(g, &colors);
        if next_distinct == distinct {
            // A refinement round never merges classes, so an unchanged
            // class count means the partition is stable.
            return next;
        }
        colors = next;
        distinct = next_distinct;
        if distinct == n {
            return colors;
        }
    }
}

/// Hash only refinement-invariant data: `n`, `m`, the sorted stable color
/// histogram, and the sorted multiset of edge color pairs.
fn invariant_hash(g: &Graph, colors: &[u32]) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(g.n() as u64);
    h.write_u64(g.m() as u64);
    let distinct = colors.iter().copied().max().map_or(0, |c| c as usize + 1);
    let mut histogram = vec![0u64; distinct];
    for &c in colors {
        histogram[c as usize] += 1;
    }
    // Color ids are already invariant (assigned in signature order), so the
    // histogram can be hashed in id order.
    for (c, count) in histogram.iter().enumerate() {
        h.write_u64(c as u64);
        h.write_u64(*count);
    }
    let mut edge_pairs: Vec<(u32, u32)> = g
        .edges()
        .map(|(u, v)| {
            let (a, b) = (colors[u], colors[v]);
            (a.min(b), a.max(b))
        })
        .collect();
    edge_pairs.sort_unstable();
    for (a, b) in edge_pairs {
        h.write_u64(((a as u64) << 32) | b as u64);
    }
    h.finish()
}

/// Canonical relabeling: refine, and while classes remain non-singleton,
/// individualize the smallest-id non-singleton class (splitting off one
/// member) and re-refine. For classes that are automorphism orbits any
/// representative yields the same canonical graph; the member with the
/// smallest original id keeps the procedure deterministic.
fn canonical_perm(g: &Graph, mut colors: Vec<u32>) -> Vec<u32> {
    let n = g.n();
    loop {
        let distinct = colors.iter().copied().max().map_or(0, |c| c as usize + 1);
        if distinct == n {
            break;
        }
        // Find the smallest color with ≥ 2 members and its first member.
        let mut class_size = vec![0u32; distinct];
        for &c in &colors {
            class_size[c as usize] += 1;
        }
        let target = class_size
            .iter()
            .position(|&s| s >= 2)
            .expect("non-discrete partition has a non-singleton class") as u32;
        let chosen = (0..n)
            .find(|&v| colors[v] == target)
            .expect("class member exists");
        // Split `chosen` off: give it a fresh color below its old class so
        // the seeded coloring stays a refinement of the stable one, then
        // re-refine (ids are re-normalized by the next round anyway).
        let mut seeded: Vec<u32> = colors.iter().map(|&c| 2 * c + 1).collect();
        seeded[chosen] = 2 * target;
        colors = refine_to_stable(g, Some(seeded));
    }
    colors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic;

    #[test]
    fn hash_invariant_under_relabeling() {
        let g = classic::petersen();
        let perm = vec![9, 3, 7, 0, 5, 1, 8, 2, 6, 4];
        let h = g.relabeled(&perm);
        assert_eq!(canon_hash(&g), canon_hash(&h));
        assert!(CanonicalForm::of(&g).same_canonical_graph(&CanonicalForm::of(&h)));
    }

    #[test]
    fn different_graphs_usually_differ() {
        let path = classic::path(6);
        let cycle = classic::cycle(6);
        let star = classic::star(6);
        assert_ne!(canon_hash(&path), canon_hash(&cycle));
        assert_ne!(canon_hash(&path), canon_hash(&star));
        assert_ne!(canon_hash(&cycle), canon_hash(&star));
    }

    #[test]
    fn perm_is_a_permutation_and_preserves_edges() {
        let g = classic::grid(3, 4);
        let c = CanonicalForm::of(&g);
        let mut seen = vec![false; g.n()];
        for &p in &c.perm {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert_eq!(c.edges.len(), g.m());
        // Mapping the canonical edges back through the inverse permutation
        // recovers the original graph.
        let mut inv = vec![0usize; g.n()];
        for (old, &new) in c.perm.iter().enumerate() {
            inv[new as usize] = old;
        }
        let back: Vec<(usize, usize)> = c
            .edges
            .iter()
            .map(|&(u, v)| (inv[u as usize], inv[v as usize]))
            .collect();
        let rebuilt = Graph::from_edges(g.n(), &back);
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn symmetric_graphs_canonize_consistently() {
        // Complete graphs, cycles, and bipartite doubles have huge
        // automorphism groups; any individualization choice must land on
        // the same canonical edge list.
        for (g, perm) in [
            (classic::complete(7), vec![6, 0, 5, 1, 4, 2, 3]),
            (classic::cycle(8), vec![3, 4, 5, 6, 7, 0, 1, 2]),
            (classic::complete_bipartite(3, 4), vec![4, 2, 6, 0, 3, 5, 1]),
        ] {
            let h = g.relabeled(&perm);
            let (cg, ch) = (CanonicalForm::of(&g), CanonicalForm::of(&h));
            assert_eq!(cg.hash, ch.hash);
            assert!(cg.same_canonical_graph(&ch), "{g:?}");
        }
    }

    #[test]
    fn empty_and_tiny() {
        let empty = Graph::new(0);
        let one = Graph::new(1);
        let c0 = CanonicalForm::of(&empty);
        let c1 = CanonicalForm::of(&one);
        assert_ne!(c0.hash, c1.hash);
        assert!(c0.edges.is_empty() && c1.edges.is_empty());
    }

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
