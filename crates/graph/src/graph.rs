//! Core undirected simple-graph type.

use std::fmt;

/// An undirected simple graph on vertices `0..n`.
///
/// Neighbor lists are kept sorted, which gives `O(log deg)` adjacency tests
/// and cache-friendly iteration; construction APIs deduplicate edges and
/// reject self-loops.
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    m: usize,
    adj: Vec<Vec<u32>>,
}

impl Graph {
    /// Empty graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            m: 0,
            adj: vec![Vec::new(); n],
        }
    }

    /// Build from an edge list; duplicate edges are ignored, self-loops are
    /// rejected with a panic (simple graphs only).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut g = Graph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Add edge `{u, v}`. Returns `true` if the edge was new.
    ///
    /// # Panics
    /// On out-of-range endpoints or a self-loop.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed in a simple graph");
        let (u32v, v32u) = (v as u32, u as u32);
        match self.adj[u].binary_search(&u32v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u].insert(pos_u, u32v);
                let pos_v = self.adj[v]
                    .binary_search(&v32u)
                    .expect_err("adjacency lists out of sync");
                self.adj[v].insert(pos_v, v32u);
                self.m += 1;
                true
            }
        }
    }

    /// Remove edge `{u, v}` if present. Returns `true` if removed.
    pub fn remove_edge(&mut self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n || u == v {
            return false;
        }
        match self.adj[u].binary_search(&(v as u32)) {
            Ok(pos_u) => {
                self.adj[u].remove(pos_u);
                let pos_v = self.adj[v]
                    .binary_search(&(u as u32))
                    .expect("adjacency lists out of sync");
                self.adj[v].remove(pos_v);
                self.m -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Adjacency test in `O(log deg(u))`.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        if u >= self.n || v >= self.n || u == v {
            return false;
        }
        self.adj[u].binary_search(&(v as u32)).is_ok()
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// Maximum degree, 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Minimum degree, 0 for the empty graph.
    pub fn min_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Iterator over all edges as `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter().filter_map(move |&v| {
                let v = v as usize;
                if u < v {
                    Some((u, v))
                } else {
                    None
                }
            })
        })
    }

    /// Edge density `m / C(n,2)`; 0 for graphs with fewer than 2 vertices.
    pub fn density(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let possible = self.n as f64 * (self.n as f64 - 1.0) / 2.0;
        self.m as f64 / possible
    }

    /// `true` iff every pair of distinct vertices is adjacent.
    pub fn is_complete(&self) -> bool {
        self.n < 2 || self.m == self.n * (self.n - 1) / 2
    }

    /// Relabel vertices according to `perm` (`perm[old] = new`), preserving
    /// the edge set. Useful for permutation-invariance tests.
    pub fn relabeled(&self, perm: &[usize]) -> Graph {
        assert_eq!(perm.len(), self.n);
        let mut g = Graph::new(self.n);
        for (u, v) in self.edges() {
            g.add_edge(perm[u], perm[v]);
        }
        g
    }

    /// Consistency check used by tests and debug assertions: sorted,
    /// symmetric, loop-free lists and an accurate edge count.
    pub fn validate(&self) -> Result<(), String> {
        let mut count = 0usize;
        for (u, nbrs) in self.adj.iter().enumerate() {
            if nbrs.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("neighbor list of {u} not strictly sorted"));
            }
            for &v in nbrs {
                let v = v as usize;
                if v == u {
                    return Err(format!("self-loop at {u}"));
                }
                if v >= self.n {
                    return Err(format!("neighbor {v} of {u} out of range"));
                }
                if self.adj[v].binary_search(&(u as u32)).is_err() {
                    return Err(format!("edge ({u},{v}) not symmetric"));
                }
                count += 1;
            }
        }
        if count != 2 * self.m {
            return Err(format!("edge count mismatch: {} vs {}", count / 2, self.m));
        }
        Ok(())
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Graph(n={}, m={}, edges=[", self.n, self.m)?;
        for (i, (u, v)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if i >= 40 {
                write!(f, "…")?;
                break;
            }
            write!(f, "({u},{v})")?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_edges() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 1), "duplicate edge must be ignored");
        assert_eq!(g.m(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        g.validate().unwrap();
    }

    #[test]
    fn remove_edge_works() {
        let mut g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(g.remove_edge(1, 0));
        assert!(!g.remove_edge(1, 0));
        assert_eq!(g.m(), 1);
        assert!(!g.has_edge(0, 1));
        g.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = Graph::from_edges(5, &[(3, 1), (0, 4), (2, 0)]);
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es, vec![(0, 2), (0, 4), (1, 3)]);
    }

    #[test]
    fn degrees_and_density() {
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.density() - 0.5).abs() < 1e-12);
        assert!(!g.is_complete());
        let k3 = Graph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
        assert!(k3.is_complete());
    }

    #[test]
    fn relabeled_preserves_structure() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let perm = vec![3, 2, 1, 0];
        let h = g.relabeled(&perm);
        assert_eq!(h.m(), 3);
        assert!(h.has_edge(3, 2) && h.has_edge(2, 1) && h.has_edge(1, 0));
        h.validate().unwrap();
    }
}
