//! Fixed-width bitset rows over one flat `Vec<u64>`.
//!
//! The bit-parallel BFS kernel ([`crate::traversal::bfs64_distances_csr`])
//! keeps one machine word per vertex for each of its working sets
//! (visited / frontier / next), so that a single OR advances up to 64
//! concurrent BFS waves. [`BitRows`] is that storage: `rows` rows of
//! `bits_per_row` bits each, packed contiguously so the whole structure is
//! one allocation and scans are cache-linear.

/// `rows × bits_per_row` bit matrix in a single flat allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitRows {
    rows: usize,
    bits_per_row: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitRows {
    /// All-zero matrix with `rows` rows of `bits_per_row` bits.
    pub fn new(rows: usize, bits_per_row: usize) -> Self {
        let words_per_row = bits_per_row.div_ceil(64).max(1);
        BitRows {
            rows,
            bits_per_row,
            words_per_row,
            data: vec![0u64; rows * words_per_row],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bits per row.
    #[inline]
    pub fn bits_per_row(&self) -> usize {
        self.bits_per_row
    }

    /// Words per row (`⌈bits_per_row / 64⌉`, at least 1).
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Set bit `c` of row `r`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize) {
        debug_assert!(c < self.bits_per_row);
        self.data[r * self.words_per_row + c / 64] |= 1u64 << (c % 64);
    }

    /// Test bit `c` of row `r`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        debug_assert!(c < self.bits_per_row);
        self.data[r * self.words_per_row + c / 64] & (1u64 << (c % 64)) != 0
    }

    /// Row `r` as a word slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// OR `src`'s words into row `r`.
    #[inline]
    pub fn or_row(&mut self, r: usize, src: &[u64]) {
        debug_assert_eq!(src.len(), self.words_per_row);
        let base = r * self.words_per_row;
        for (w, &s) in self.data[base..base + self.words_per_row]
            .iter_mut()
            .zip(src)
        {
            *w |= s;
        }
    }

    /// Number of set bits in row `r`.
    pub fn count_ones(&self, r: usize) -> usize {
        self.row(r).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Zero every row.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    // --- single-word fast path (rows of at most 64 bits) ----------------
    //
    // The BFS kernel always works in blocks of ≤ 64 sources, so each row is
    // exactly one word; these accessors make that hot loop branch-free.

    /// Row `r` as one word. Only valid when `bits_per_row ≤ 64`.
    #[inline]
    pub fn word(&self, r: usize) -> u64 {
        debug_assert_eq!(self.words_per_row, 1);
        self.data[r]
    }

    /// Overwrite row `r`'s single word. Only valid when `bits_per_row ≤ 64`.
    #[inline]
    pub fn set_word(&mut self, r: usize, w: u64) {
        debug_assert_eq!(self.words_per_row, 1);
        self.data[r] = w;
    }

    /// OR `w` into row `r`'s single word. Only valid when `bits_per_row ≤ 64`.
    #[inline]
    pub fn or_word(&mut self, r: usize, w: u64) {
        debug_assert_eq!(self.words_per_row, 1);
        self.data[r] |= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitRows::new(3, 100);
        assert_eq!(b.words_per_row(), 2);
        b.set(0, 0);
        b.set(1, 63);
        b.set(1, 64);
        b.set(2, 99);
        assert!(b.get(0, 0) && b.get(1, 63) && b.get(1, 64) && b.get(2, 99));
        assert!(!b.get(0, 1) && !b.get(2, 98));
        assert_eq!(b.count_ones(1), 2);
        b.clear();
        assert_eq!(b.count_ones(1), 0);
    }

    #[test]
    fn or_row_merges() {
        let mut b = BitRows::new(2, 128);
        b.set(0, 5);
        b.set(0, 70);
        let src = b.row(0).to_vec();
        b.or_row(1, &src);
        assert!(b.get(1, 5) && b.get(1, 70));
        assert_eq!(b.count_ones(1), 2);
    }

    #[test]
    fn single_word_fast_path() {
        let mut b = BitRows::new(4, 64);
        assert_eq!(b.words_per_row(), 1);
        b.set_word(2, 0b1010);
        assert_eq!(b.word(2), 0b1010);
        b.or_word(2, 0b0101);
        assert_eq!(b.word(2), 0b1111);
        assert!(b.get(2, 0) && b.get(2, 3));
        assert_eq!(b.word(0), 0);
    }

    #[test]
    fn zero_width_rows_are_one_word() {
        // Degenerate but allowed: rows of 0 bits still occupy one word so
        // the single-word accessors stay valid for empty source blocks.
        let b = BitRows::new(2, 0);
        assert_eq!(b.words_per_row(), 1);
        assert_eq!(b.word(1), 0);
    }
}
