//! Offline stand-in for `proptest`.
//!
//! Supports the surface dclab's property suites use: the [`proptest!`] macro
//! with an optional `#![proptest_config(..)]` header, `any::<T>()` and range
//! strategies, `prop_assume!` / `prop_assert!` / `prop_assert_eq!`. Cases
//! are generated from a fixed seed sequence so failures are reproducible;
//! there is **no shrinking** — the failing case's seed index is reported
//! instead.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::ops::Range;

/// Runner configuration (only the knob dclab uses).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; it does not count as run.
    Reject(String),
    /// `prop_assert!`-style failure.
    Fail(String),
}

/// A source of values for one bound variable.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a canonical "uniform-ish" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.next_u32()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        use rand::Rng;
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_tuple {
    ($($t:ident),+) => {
        impl<$($t: Arbitrary),+> Arbitrary for ($($t,)+) {
            fn arbitrary(rng: &mut StdRng) -> Self {
                ($($t::arbitrary(rng),)+)
            }
        }
    };
}

impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Drive one property: deterministic seed sequence, `cfg.cases` successful
/// cases required, bounded retries for `prop_assume!` rejections.
pub fn run_cases<F>(cfg: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut passed = 0u32;
    let mut attempts = 0u32;
    let max_attempts = cfg.cases.saturating_mul(40).max(1000);
    while passed < cfg.cases {
        if attempts >= max_attempts {
            panic!(
                "proptest shim: gave up after {attempts} attempts \
                 ({passed}/{} cases passed; too many prop_assume rejections)",
                cfg.cases
            );
        }
        // Fixed, attempt-indexed seeds keep every run reproducible.
        let mut rng = StdRng::seed_from_u64(0xD15E_A5E0_0000_0000 ^ attempts as u64);
        attempts += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed (attempt index {}): {msg}",
                    attempts - 1
                );
            }
        }
    }
}

/// Everything the `proptest!` suites import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Any, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} — {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            $crate::run_cases(cfg, |__proptest_rng| {
                $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)*
                $body
                Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::run_cases;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(n in 3usize..10, x in any::<u64>()) {
            prop_assert!((3..10).contains(&n));
            prop_assert_eq!(x ^ x, 0);
        }

        #[test]
        fn assume_filters(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics() {
        run_cases(ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::Fail("forced".into()))
        });
    }
}
