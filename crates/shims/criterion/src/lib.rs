//! Offline stand-in for `criterion`.
//!
//! Implements the benchmark-group API the dclab benches use with a plain
//! wall-clock runner: each bench warms up once, then runs up to
//! `sample_size` timed iterations under a per-bench time budget and prints
//! one summary line. Measurements are also recorded on the [`Criterion`]
//! value so harness-less bench mains can emit machine-readable output
//! (see [`Criterion::measurements`]).

use std::time::{Duration, Instant};

/// Per-bench time budget: stop sampling after this much measured time.
const TIME_BUDGET: Duration = Duration::from_millis(800);

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/bench` path.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Number of timed iterations behind the mean.
    pub iterations: u64,
}

/// Bench registry & runner (the `c` in `fn bench(c: &mut Criterion)`).
#[derive(Default)]
pub struct Criterion {
    measurements: Vec<Measurement>,
}

impl Criterion {
    /// Open a named group of related benches.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// All measurements recorded so far (for machine-readable emission).
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }
}

/// Identifier for one bench within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Bench named after a sweep parameter (`BenchmarkId::from_parameter(n)`).
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// A group of benches sharing a name prefix and sample size.
pub struct BenchmarkGroup<'c> {
    parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per bench (upper bound; the
    /// per-bench time budget may stop sampling earlier).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Register and immediately run a bench.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.0, &mut f);
        self
    }

    /// Register and immediately run a bench closed over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut b);
        let mean_ns = if b.iterations == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iterations as f64
        };
        let full = format!("{}/{}", self.name, id);
        println!(
            "bench {full:<48} {:>12.1} ns/iter  ({} iters)",
            mean_ns, b.iterations
        );
        self.parent.measurements.push(Measurement {
            id: full,
            mean_ns,
            iterations: b.iterations,
        });
    }

    /// End the group (kept for API compatibility; groups run eagerly).
    pub fn finish(&mut self) {}
}

/// The timing handle passed to each bench closure.
pub struct Bencher {
    sample_size: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `f`: one warm-up call, then up to `sample_size` timed calls
    /// within the time budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total += t0.elapsed();
            self.iterations += 1;
            if start.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

/// Build the group-runner fn criterion_main! calls.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Build `fn main()` for a harness-less bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(5);
            g.bench_function("noop", |b| b.iter(|| 1 + 1));
            g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &x| {
                b.iter(|| x * 2)
            });
            g.finish();
        }
        assert_eq!(c.measurements().len(), 2);
        assert_eq!(c.measurements()[0].id, "g/noop");
        assert_eq!(c.measurements()[1].id, "g/7");
        assert!(c.measurements().iter().all(|m| m.iterations >= 1));
    }
}
