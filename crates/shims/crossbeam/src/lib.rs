//! Offline stand-in for the `crossbeam` crate: just [`scope`], implemented
//! on `std::thread::scope` (which did not exist when crossbeam's scoped
//! threads were introduced, and fully covers dclab's usage).

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Scope handle passed to [`scope`]'s closure; mirrors
/// `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a worker. The closure receives the scope handle (unused by
    /// dclab, hence the `|_|` pattern at call sites).
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = Scope { inner: self.inner };
        self.inner.spawn(move || f(&handle))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned; all
/// threads are joined before `scope` returns. Returns `Err` with the panic
/// payload if the closure or any spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_workers() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn worker_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
