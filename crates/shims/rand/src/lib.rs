//! Offline stand-in for the `rand` crate.
//!
//! The dclab workspace vendors this shim so builds never touch the network.
//! It reproduces exactly the API surface the workspace uses — [`Rng`],
//! [`RngExt`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom::shuffle`] — on top of a xoshiro256** generator seeded
//! through SplitMix64. Streams are deterministic per seed but are *not* the
//! same streams as the upstream crate.

use std::ops::Range;

/// Core RNG trait: a source of uniform 64-bit words.
pub trait Rng {
    /// Next uniform `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `u32` (upper bits of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods over any [`Rng`] (blanket-implemented).
pub trait RngExt: Rng {
    /// Uniform sample from `range` (half-open). Panics on an empty range.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let p = p.clamp(0.0, 1.0);
        // 53 uniform mantissa bits → f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

impl<R: Rng> RngExt for R {}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Lemire-style unbiased bounded sample in `[0, bound)`.
fn bounded_u64<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from an empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let span = (range.end as i128 - range.start as i128) as u64;
        (range.start as i128 + bounded_u64(rng, span) as i128) as i64
    }
}

impl SampleUniform for i32 {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from an empty range");
        let span = (range.end as i64 - range.start as i64) as u64;
        (range.start as i64 + bounded_u64(rng, span) as i64) as i32
    }
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic general-purpose RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngExt};

    /// Slice helpers over any [`Rng`].
    pub trait SliceRandom {
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly chosen element (`None` on an empty slice).
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3usize..17);
            assert!((3..17).contains(&x));
        }
        // Every value of a small range is hit.
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
