//! Offline stand-in for `parking_lot`: a [`Mutex`] with the poison-free
//! `lock()` signature, wrapping `std::sync::Mutex`.

use std::sync::MutexGuard;

/// Mutex whose `lock` never returns a poison error (matching parking_lot's
/// API): a poisoned std mutex means a worker already panicked, and that
/// panic is what surfaces — so propagating it again here is correct.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poison) => poison.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 2;
        assert_eq!(m.into_inner(), 7);
    }
}
