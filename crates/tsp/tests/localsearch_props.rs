//! Differential property tests pinning the vectorized SoA local-search
//! kernels ([`localsearch::two_opt`] / [`localsearch::or_opt`] /
//! [`localsearch::local_opt`]) to their scalar oracles
//! ([`localsearch::two_opt_scalar`] etc.) across the instance families the
//! paper's pipeline actually sees: shortest-path metrics of dense random
//! graphs (what the Theorem 2 reduction produces), cycle metrics, fully
//! random complete instances, and dummy-city path extensions (zero-weight
//! edges, deliberately non-metric).
//!
//! The contract is strict: same start tour → same final tour *array* (the
//! kernels pick identical moves in identical order), every move preserves
//! the permutation, and the position index stays the exact inverse of the
//! order after each splice/reversal.

use dclab_tsp::localsearch::{
    local_opt, local_opt_scalar, or_opt, or_opt_scalar, two_opt, two_opt_scalar, LocalSearchConfig,
    TourState,
};
use dclab_tsp::tour::{cycle_weight, is_permutation};
use dclab_tsp::TspInstance;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Deterministic pseudo-random symmetric weight in `1..=100`.
fn hash_w(u: usize, v: usize, seed: u64) -> u64 {
    let (a, b) = (u.min(v) as u64, u.max(v) as u64);
    (a.wrapping_mul(0x9E3779B97F4A7C15)
        ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F)
        ^ seed.wrapping_mul(0x165667B19E3779F9))
        % 100
        + 1
}

/// Shortest-path metric of a random graph with a guaranteed Hamiltonian
/// backbone (so distances are finite): exactly the shape the Theorem 2
/// reduction feeds the TSP layer, built here without a graph-crate
/// dependency via n BFS runs over an adjacency matrix.
fn sp_metric(n: usize, seed: u64) -> TspInstance {
    let mut adj = vec![false; n * n];
    let set = |a: usize, b: usize, m: &mut Vec<bool>| {
        m[a * n + b] = true;
        m[b * n + a] = true;
    };
    for u in 0..n {
        set(u, (u + 1) % n, &mut adj);
        for v in (u + 1)..n {
            // ~30% extra edges keeps diameters small but nontrivial.
            if hash_w(u, v, seed) <= 30 {
                set(u, v, &mut adj);
            }
        }
    }
    let mut dist = vec![0u64; n * n];
    let mut queue = Vec::with_capacity(n);
    for s in 0..n {
        let row = &mut dist[s * n..(s + 1) * n];
        let mut seen = vec![false; n];
        seen[s] = true;
        queue.clear();
        queue.push(s);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            for v in 0..n {
                if adj[u * n + v] && !seen[v] {
                    seen[v] = true;
                    row[v] = row[u] + 1;
                    queue.push(v);
                }
            }
        }
    }
    TspInstance::from_matrix(n, dist)
}

/// One corpus instance per case, spread over the four families.
fn corpus_instance(kind: usize, n: usize, seed: u64) -> TspInstance {
    match kind % 4 {
        0 => sp_metric(n, seed),
        1 => {
            // Cycle metric: distances on C_n.
            TspInstance::from_fn(n, |u, v| {
                let d = u.abs_diff(v) as u64;
                d.min(n as u64 - d)
            })
        }
        2 => TspInstance::from_fn(n, |u, v| hash_w(u, v, seed)),
        _ => {
            // Path-via-dummy: a random instance extended with the
            // zero-weight dummy city — non-metric, exercises ties at 0.
            TspInstance::from_fn(n - 1, |u, v| hash_w(u, v, seed)).with_dummy_city()
        }
    }
}

/// A random starting tour (worst case for descent length).
fn random_start(n: usize, seed: u64) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(&mut StdRng::seed_from_u64(seed ^ 0xDEAD));
    order
}

/// Run one (vectorized, scalar-oracle) kernel pair from the same start and
/// assert the strict differential contract.
fn check_pair(
    inst: &TspInstance,
    start: &[u32],
    k: usize,
    run_fast: impl Fn(&TspInstance, &mut TourState, &LocalSearchConfig) -> u64,
    run_oracle: impl Fn(&TspInstance, &mut TourState, &LocalSearchConfig) -> u64,
) -> Result<(), TestCaseError> {
    let n = inst.n();
    let cfg = LocalSearchConfig {
        neighbor_k: k,
        ..LocalSearchConfig::default()
    };
    let before = cycle_weight(inst, start);
    let mut fast = TourState::new(start.to_vec());
    let mut oracle = TourState::new(start.to_vec());
    let gf = run_fast(inst, &mut fast, &cfg);
    let go = run_oracle(inst, &mut oracle, &cfg);
    prop_assert_eq!(&fast.order, &oracle.order);
    prop_assert_eq!(gf, go);
    prop_assert!(is_permutation(n, &fast.order));
    prop_assert!(fast.check_consistent(), "pos index inconsistent (fast)");
    prop_assert!(oracle.check_consistent(), "pos index inconsistent (oracle)");
    prop_assert_eq!(cycle_weight(inst, &fast.order) + gf, before);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    // The acceptance gate: from the same start, the chunked SoA kernels
    // and the scalar oracles walk the same move sequence — final tours are
    // array-equal (hence weight-equal) for 2-opt alone, Or-opt alone, and
    // the combined shared-don't-look descent.
    #[test]
    fn vectorized_kernels_match_scalar_oracles(
        kind in 0usize..4,
        n in 5usize..70,
        k in 1usize..16,
        seed in any::<u64>(),
    ) {
        let inst = corpus_instance(kind, n, seed);
        let n = inst.n();
        let start = random_start(n, seed);
        let cl = inst.candidate_lists(k);
        let nl = inst.neighbor_lists(k);
        check_pair(
            &inst, &start, k,
            |i, s, c| two_opt(i, s, &cl, c),
            |i, s, c| two_opt_scalar(i, s, &nl, c),
        )?;
        check_pair(
            &inst, &start, k,
            |i, s, c| or_opt(i, s, &cl, c),
            |i, s, c| or_opt_scalar(i, s, &nl, c),
        )?;
        check_pair(
            &inst, &start, k,
            |i, s, c| local_opt(i, s, &cl, c),
            |i, s, c| local_opt_scalar(i, s, &nl, c),
        )?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    // The wrap-around fix, as an invariant instead of a fixture: Or-opt
    // scans cities by id and evaluates segments/insertions purely through
    // cyclic relations, so rotating the start tour (which moves segments
    // across the array boundary) must never change the total improvement.
    // The pre-fix kernel skipped boundary-crossing segments and fails this.
    #[test]
    fn or_opt_gain_is_rotation_invariant(
        kind in 0usize..4,
        n in 5usize..40,
        rot in 1usize..40,
        seed in any::<u64>(),
    ) {
        let inst = corpus_instance(kind, n, seed);
        let n = inst.n();
        let start = random_start(n, seed);
        let mut rotated = start.clone();
        rotated.rotate_left(rot % n);
        let cl = inst.candidate_lists(8);
        let cfg = LocalSearchConfig {
            neighbor_k: 8,
            ..LocalSearchConfig::default()
        };
        let mut a = TourState::new(start);
        let mut b = TourState::new(rotated);
        let ga = or_opt(&inst, &mut a, &cl, &cfg);
        let gb = or_opt(&inst, &mut b, &cl, &cfg);
        prop_assert!(a.check_consistent() && b.check_consistent());
        prop_assert_eq!(ga, gb);
    }
}
