//! Regression test for deadline overshoot in local search.
//!
//! The pre-PR-6 kernels polled `cfg.deadline` once per full improvement
//! round, so at n = 512 a 5 ms budget was routinely blown by ~50 ms (the
//! e13 `race_wall_ms_max` symptom). The descent now checks every 64 city
//! scans; one scan is `O(neighbor_k)` work, so overshoot must stay in the
//! microsecond range. CI machines are noisy, so the assertions take the
//! *minimum* over several attempts (systematic overshoot shows up in every
//! attempt; scheduler noise doesn't survive a min) and use bounds well
//! above the intended 10 ms acceptance line measured by `e14_localsearch`.

use dclab_par::Deadline;
use dclab_tsp::construct::nearest_neighbor;
use dclab_tsp::localsearch::{local_opt, LocalSearchConfig, TourState};
use dclab_tsp::tour::is_permutation;
use dclab_tsp::TspInstance;
use std::time::Instant;

fn big_instance(n: usize) -> TspInstance {
    TspInstance::from_fn(n, |u, v| {
        let (a, b) = (u.min(v) as u64, u.max(v) as u64);
        (a.wrapping_mul(0x9E3779B97F4A7C15) ^ b.wrapping_mul(0xC2B2AE3D27D4EB4F)) % 10_000 + 1
    })
}

#[test]
fn local_opt_respects_a_5ms_deadline() {
    // Large enough that the undeadlined descent takes ~4× the budget even
    // in the vectorized path (n = 512 finishes in under a millisecond now).
    let n = 4096;
    let t = big_instance(n);
    let cl = t.candidate_lists(10);
    // A deliberately bad start (identity order) so the descent would run
    // far beyond the budget if left alone.
    let start: Vec<u32> = (0..n as u32).collect();
    let budget_ms = 5u64;
    let mut best_overshoot_ms = f64::INFINITY;
    for _ in 0..3 {
        let cfg = LocalSearchConfig {
            deadline: Deadline::in_millis(budget_ms),
            ..LocalSearchConfig::default()
        };
        let t0 = Instant::now();
        let mut state = TourState::new(start.clone());
        local_opt(&t, &mut state, &cl, &cfg);
        let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert!(is_permutation(n, &state.order), "cut-off left a bad tour");
        best_overshoot_ms = best_overshoot_ms.min(elapsed_ms - budget_ms as f64);
    }
    // Sanity floor: without a deadline the same descent takes much longer
    // than the budget, i.e. the deadline is actually doing the cutting.
    let t0 = Instant::now();
    let mut free = TourState::new(start.clone());
    local_opt(&t, &mut free, &cl, &LocalSearchConfig::default());
    let free_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(
        free_ms > budget_ms as f64,
        "descent finished under the budget anyway ({free_ms:.1} ms) — test is vacuous"
    );
    assert!(
        best_overshoot_ms < 10.0,
        "deadline overshoot {best_overshoot_ms:.2} ms (budget {budget_ms} ms) — \
         per-scan checkpointing regressed"
    );
}

#[test]
fn unlimited_deadline_is_not_throttled() {
    // `Deadline::none()` must keep the descent running to the local
    // optimum — the checkpoint is amortized and must never early-out.
    let n = 128;
    let t = big_instance(n);
    let cl = t.candidate_lists(10);
    let mut a = TourState::new(nearest_neighbor(&t, 0));
    let mut b = TourState::new(nearest_neighbor(&t, 0));
    let cfg = LocalSearchConfig::default();
    let cfg_deadline = LocalSearchConfig {
        deadline: Deadline::in_millis(60_000),
        ..LocalSearchConfig::default()
    };
    let ga = local_opt(&t, &mut a, &cl, &cfg);
    let gb = local_opt(&t, &mut b, &cl, &cfg_deadline);
    assert_eq!(a.order, b.order, "a generous deadline changed the descent");
    assert_eq!(ga, gb);
}
