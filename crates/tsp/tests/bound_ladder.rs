//! Differential test of the lower-bound ladder on 1000 hand-rolled
//! instances: every rung must dominate the rung below it, and no rung may
//! ever exceed the brute-force optimum it claims to bound.
//!
//! The ladder under test (weakest to strongest, mirroring
//! `dclab_core::bounds::BoundKind`):
//!
//! * **cycle form** — `one_tree_bound` (π = 0) ≤ `held_karp_ascent_bound`
//!   ≤ brute-force cycle optimum;
//! * **path form** — `prim_mst` weight ≤ `path_lower_bound` ≤ brute-force
//!   path optimum (the path-form ascent evaluates π = 0 as the full-city
//!   MST, so one iteration already certifies the MST rung).
//!
//! The generator is a hand-rolled xorshift (no `rand` dependency, no
//! distribution shimmer between toolchains) sweeping sizes 3–7 and two
//! weight regimes: uniform 1–50, and the two-valued {1, 2} shape the
//! diameter-2 reductions produce — the regime the ascent was tuned on.

use dclab_par::Deadline;
use dclab_tsp::exact::{brute_force_cycle, brute_force_path};
use dclab_tsp::lowerbound::{
    held_karp_ascent_bound, one_tree_bound, path_lower_bound, path_lower_bound_anytime,
};
use dclab_tsp::mst::prim_mst;
use dclab_tsp::TspInstance;

/// xorshift64* — deterministic across platforms, no external crates.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// A symmetric instance with zero diagonal from the case-specific stream.
fn rolled_instance(case: usize, rng: &mut XorShift) -> TspInstance {
    let n = 3 + case % 5; // 3..=7 — brute force stays cheap at 1000 cases
    let two_valued = case.is_multiple_of(3);
    let mut w = vec![0u64; n * n];
    for u in 0..n {
        for v in (u + 1)..n {
            let x = if two_valued {
                1 + rng.next() % 2
            } else {
                1 + rng.next() % 50
            };
            w[u * n + v] = x;
            w[v * n + u] = x;
        }
    }
    TspInstance::from_matrix(n, w)
}

#[test]
fn thousand_case_bound_ladder_differential() {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    for case in 0..1000 {
        let inst = rolled_instance(case, &mut rng);

        // Cycle form: plain 1-tree ≤ ascended bound ≤ cycle optimum.
        let one_tree = one_tree_bound(&inst);
        let cycle_ascent = held_karp_ascent_bound(&inst, 60);
        let (_, cycle_opt) = brute_force_cycle(&inst);
        assert!(
            cycle_ascent >= one_tree,
            "case {case}: cycle ascent {cycle_ascent} below 1-tree {one_tree}"
        );
        assert!(
            cycle_ascent <= cycle_opt,
            "case {case}: cycle ascent {cycle_ascent} exceeds optimum {cycle_opt}"
        );

        // Path form: MST ≤ ascended path bound ≤ path optimum.
        let mst = prim_mst(&inst).1;
        let path_ascent = path_lower_bound(&inst, 60);
        let (_, path_opt) = brute_force_path(&inst);
        assert!(
            path_ascent >= mst,
            "case {case}: path ascent {path_ascent} below MST {mst}"
        );
        assert!(
            path_ascent <= path_opt,
            "case {case}: path ascent {path_ascent} exceeds optimum {path_opt}"
        );

        // A single iteration is the π = 0 evaluation: exactly the MST rung.
        let first = path_lower_bound_anytime(&inst, 1, &Deadline::none());
        assert_eq!(
            first.bound, mst,
            "case {case}: first ascent iteration must certify the MST bound"
        );
        assert_eq!(first.iters, 1, "case {case}");
    }
}

#[test]
fn deadline_free_ascent_is_bit_stable() {
    // Deadline::none() performs zero clock reads, so the ascent must land
    // on the identical (bound, iters) pair every run — the determinism the
    // engine's deadline-free report contract builds on.
    let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
    for case in 0..50 {
        let inst = rolled_instance(case, &mut rng);
        let a = path_lower_bound_anytime(&inst, 60, &Deadline::none());
        let b = path_lower_bound_anytime(&inst, 60, &Deadline::none());
        assert_eq!(a, b, "case {case}: deadline-free ascent not deterministic");
    }
}
