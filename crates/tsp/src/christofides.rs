//! Christofides (cycle) and Hoogeveen (path) 1.5-approximations for metric
//! instances.
//!
//! The paper's Corollary 1 invokes a polynomial 1.5-approximation for
//! **Metric Path TSP** (citing Zenklusen's LP-based algorithm). We implement
//! the classical combinatorial route instead: Hoogeveen's Christofides
//! variant for the *both-endpoints-free* path case, which matches the 3/2
//! guarantee needed here whenever the matching subroutine is exact
//! (see DESIGN.md §3 for the substitution note):
//!
//! 1. `T` ← minimum spanning tree;
//! 2. `O` ← odd-degree vertices of `T` (|O| even);
//! 3. cycle: add a minimum-weight perfect matching on `O`;
//!    path: add a minimum-weight matching covering all but two of `O`
//!    (the two survivors become the Eulerian path endpoints);
//! 4. Eulerian circuit/path over the multigraph (Hierholzer);
//! 5. shortcut repeated vertices (triangle inequality ⇒ no weight increase).

use crate::matching::{
    min_weight_near_perfect_matching, min_weight_perfect_matching, MatchingBackend,
};
use crate::mst::{odd_degree_vertices, prim_mst};
use crate::tour::{cycle_weight, path_weight};
use crate::{TspInstance, Weight};

/// Christofides 1.5-approximation for metric **cycle** TSP.
///
/// `backend` selects the matching algorithm; with an exact backend
/// ([`MatchingBackend::Auto`] up to its exact range) the 3/2 ratio is
/// guaranteed on metric instances.
pub fn christofides_cycle(inst: &TspInstance, backend: MatchingBackend) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 3 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = cycle_weight(inst, &order);
        return (order, w);
    }
    let (mut edges, _) = prim_mst(inst);
    let odd = odd_degree_vertices(n, &edges);
    if !odd.is_empty() {
        let w = |a: usize, b: usize| inst.weight(odd[a] as usize, odd[b] as usize);
        let pairs = min_weight_perfect_matching(odd.len(), &w, backend);
        for (a, b) in pairs {
            edges.push((odd[a as usize], odd[b as usize]));
        }
    }
    let circuit = eulerian_walk(n, &edges, None);
    let order = shortcut(n, &circuit);
    let w = cycle_weight(inst, &order);
    (order, w)
}

/// Hoogeveen 1.5-approximation for metric **path** TSP with both endpoints
/// free — the variant the Theorem 2 reduction needs.
pub fn christofides_path(inst: &TspInstance, backend: MatchingBackend) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 2 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = path_weight(inst, &order);
        return (order, w);
    }
    let (mut edges, _) = prim_mst(inst);
    let odd = odd_degree_vertices(n, &edges);
    debug_assert!(odd.len() >= 2 && odd.len().is_multiple_of(2));
    let start = if odd.len() == 2 {
        // The tree is already a path in the Eulerian sense only if it *is*
        // a path; otherwise |O| ≥ 4. |O| = 2 means T is a Hamiltonian path.
        odd[0] as usize
    } else {
        let w = |a: usize, b: usize| inst.weight(odd[a] as usize, odd[b] as usize);
        let (pairs, (ua, ub)) = min_weight_near_perfect_matching(odd.len(), &w, backend);
        for (a, b) in pairs {
            edges.push((odd[a as usize], odd[b as usize]));
        }
        let _ = ub;
        odd[ua as usize] as usize
    };
    let walk = eulerian_walk(n, &edges, Some(start));
    let order = shortcut(n, &walk);
    let w = path_weight(inst, &order);
    (order, w)
}

/// Hierholzer's algorithm over an edge multiset.
///
/// With `start = None` the multigraph must have all degrees even (circuit);
/// with `Some(s)` exactly the 0-or-2-odd condition must hold and `s` must be
/// an odd vertex when there are two. Returns the vertex sequence of the walk
/// (first == last for circuits).
pub fn eulerian_walk(n: usize, edges: &[(u32, u32)], start: Option<usize>) -> Vec<u32> {
    if edges.is_empty() {
        return vec![start.unwrap_or(0) as u32];
    }
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n]; // (neighbor, edge id)
    for (id, &(u, v)) in edges.iter().enumerate() {
        adj[u as usize].push((v, id as u32));
        adj[v as usize].push((u, id as u32));
    }
    let s = start.unwrap_or(edges[0].0 as usize);
    debug_assert!(
        !adj[s].is_empty(),
        "start vertex must touch at least one edge"
    );
    let mut used = vec![false; edges.len()];
    let mut ptr = vec![0usize; n];
    let mut stack = vec![s as u32];
    let mut walk = Vec::with_capacity(edges.len() + 1);
    while let Some(&v) = stack.last() {
        let v = v as usize;
        let mut advanced = false;
        while ptr[v] < adj[v].len() {
            let (to, id) = adj[v][ptr[v]];
            ptr[v] += 1;
            if !used[id as usize] {
                used[id as usize] = true;
                stack.push(to);
                advanced = true;
                break;
            }
        }
        if !advanced {
            walk.push(stack.pop().unwrap());
        }
    }
    debug_assert!(used.iter().all(|&u| u), "graph not connected on its edges");
    walk.reverse();
    walk
}

/// Keep the first occurrence of each vertex in an Eulerian walk — the
/// triangle-inequality shortcut step. Vertices never visited (isolated in
/// the multigraph) are appended at the end, which cannot happen for
/// MST-based multigraphs.
pub fn shortcut(n: usize, walk: &[u32]) -> Vec<u32> {
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for &v in walk {
        if !seen[v as usize] {
            seen[v as usize] = true;
            order.push(v);
        }
    }
    for v in 0..n {
        if !seen[v] {
            order.push(v as u32);
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{brute_force_cycle, brute_force_path};
    use crate::tour::is_permutation;

    /// Random metric instance: shortest-path closure of random weights.
    fn random_metric(n: usize, salt: u64) -> TspInstance {
        let base = TspInstance::from_fn(n, |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a * 7919 + b * 104729 + salt * 31) % 50 + 10
        });
        // Floyd-Warshall closure to force the triangle inequality.
        let mut w: Vec<Weight> = (0..n * n).map(|i| base.weight(i / n, i % n)).collect();
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    let via = w[i * n + k] + w[k * n + j];
                    if i != j && via < w[i * n + j] {
                        w[i * n + j] = via;
                    }
                }
            }
        }
        TspInstance::from_matrix(n, w)
    }

    #[test]
    fn metric_closure_is_metric() {
        for salt in 0..3 {
            assert!(random_metric(9, salt).is_metric());
        }
    }

    #[test]
    fn cycle_ratio_within_1_5() {
        for n in [5usize, 7, 9] {
            for salt in 0..5 {
                let t = random_metric(n, salt);
                let (order, w) = christofides_cycle(&t, MatchingBackend::Auto);
                assert!(is_permutation(n, &order));
                let (_, opt) = brute_force_cycle(&t);
                assert!(w >= opt);
                assert!(
                    2 * w <= 3 * opt,
                    "ratio breach: n={n} salt={salt} {w}/{opt}"
                );
            }
        }
    }

    #[test]
    fn path_ratio_within_1_5() {
        for n in [4usize, 6, 8, 10] {
            for salt in 0..5 {
                let t = random_metric(n, salt);
                let (order, w) = christofides_path(&t, MatchingBackend::Auto);
                assert!(is_permutation(n, &order));
                let (_, opt) = brute_force_path(&t);
                assert!(w >= opt);
                assert!(
                    2 * w <= 3 * opt,
                    "ratio breach: n={n} salt={salt} {w}/{opt}"
                );
            }
        }
    }

    #[test]
    fn path_on_line_is_optimal() {
        let coords = [0i64, 2, 5, 9, 14];
        let t = TspInstance::from_fn(5, |u, v| coords[u].abs_diff(coords[v]));
        let (_, w) = christofides_path(&t, MatchingBackend::Auto);
        assert_eq!(w, 14); // MST of a line is the line; no odd surgery needed
    }

    #[test]
    fn eulerian_circuit_covers_all_edges() {
        // Two triangles sharing vertex 0: 0-1-2-0, 0-3-4-0.
        let edges = vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)];
        let walk = eulerian_walk(5, &edges, None);
        assert_eq!(walk.len(), edges.len() + 1);
        assert_eq!(walk[0], *walk.last().unwrap());
    }

    #[test]
    fn eulerian_path_with_two_odd() {
        // Path multigraph 0-1, 1-2 has odd ends 0 and 2.
        let edges = vec![(0, 1), (1, 2)];
        let walk = eulerian_walk(3, &edges, Some(0));
        assert_eq!(walk, vec![0, 1, 2]);
    }

    #[test]
    fn shortcut_dedupes_and_completes() {
        let walk = vec![0u32, 1, 2, 1, 3, 0];
        assert_eq!(shortcut(5, &walk), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn small_instances() {
        let t = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(christofides_path(&t, MatchingBackend::Auto).1, 0);
        assert_eq!(christofides_cycle(&t, MatchingBackend::Auto).1, 0);
        let t2 = TspInstance::from_matrix(2, vec![0, 4, 4, 0]);
        assert_eq!(christofides_path(&t2, MatchingBackend::Auto).1, 4);
    }
}
