//! From-scratch (Metric) TSP / Path-TSP engine.
//!
//! This crate is the algorithmic substrate behind the paper's Theorem 2:
//! once an `L(p)`-labeling instance is reduced to a dense symmetric
//! [`TspInstance`], everything here applies —
//!
//! * **exact**: permutation brute force ([`exact::brute`]) and Held–Karp
//!   dynamic programming in `O(2^n n²)` ([`exact::held_karp`]), both in cycle
//!   and *path* (free endpoints) variants;
//! * **approximation**: Christofides for metric cycle TSP and Hoogeveen's
//!   3/2 variant for metric path TSP ([`christofides`]), on top of a Prim
//!   MST ([`mst`]), Hierholzer Eulerian traversal, and a minimum-weight
//!   perfect matching toolbox ([`matching`]);
//! * **heuristics**: nearest-neighbor / greedy-edge construction
//!   ([`construct`]), 2-opt and Or-opt local search with neighbor lists and
//!   don't-look bits ([`localsearch`]), and a chained Lin–Kernighan-style
//!   metaheuristic with double-bridge kicks ([`lk`]);
//! * **driver**: parallel multi-start orchestration and the dummy-city
//!   path↔cycle equivalence ([`driver`]);
//! * **certificates**: Held–Karp 1-tree lower bounds with subgradient
//!   ascent ([`lowerbound`]) for bounding heuristic gaps at scale.

// Every public item in this crate is API surface for the workspace's
// other eight crates: undocumented exports fail the build.
#![warn(missing_docs)]
// Index-based loops are the clearer idiom for the dense matrix/bitmask
// kernels in this crate.
#![allow(clippy::needless_range_loop)]

pub mod christofides;
pub mod construct;
pub mod driver;
pub mod exact;
pub mod instance;
pub mod lk;
pub mod localsearch;
pub mod lowerbound;
pub mod matching;
pub mod mst;
pub mod tour;

pub use instance::TspInstance;
pub use tour::{cycle_weight, path_weight};

/// Weight type used throughout: label spans are sums of `p`-entries, which
/// comfortably fit `u64` for any realistic instance.
pub type Weight = u64;
