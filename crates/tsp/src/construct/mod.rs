//! Tour construction heuristics: nearest neighbor and greedy edge.

use crate::{TspInstance, Weight};

/// Nearest-neighbor cycle starting from `start`.
pub fn nearest_neighbor(inst: &TspInstance, start: usize) -> Vec<u32> {
    let n = inst.n();
    assert!(start < n);
    let mut visited = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut cur = start;
    visited[cur] = true;
    order.push(cur as u32);
    for _ in 1..n {
        let mut best = usize::MAX;
        let mut best_w = Weight::MAX;
        for v in 0..n {
            if !visited[v] {
                let w = inst.weight(cur, v);
                if w < best_w {
                    best_w = w;
                    best = v;
                }
            }
        }
        visited[best] = true;
        order.push(best as u32);
        cur = best;
    }
    order
}

/// Greedy-edge construction: repeatedly add the globally cheapest edge that
/// keeps all degrees ≤ 2 and closes no premature subcycle; the resulting
/// Hamiltonian cycle is returned as a city order.
pub fn greedy_edge(inst: &TspInstance) -> Vec<u32> {
    let n = inst.n();
    if n == 0 {
        return vec![];
    }
    if n <= 3 {
        // Cycles on ≤ 3 cities are unique up to rotation/reflection.
        return (0..n as u32).collect();
    }
    let mut edges: Vec<(Weight, u32, u32)> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((inst.weight(u, v), u as u32, v as u32));
        }
    }
    edges.sort_unstable();
    let mut degree = vec![0u8; n];
    let mut comp: Vec<usize> = (0..n).collect();
    fn find(c: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while c[r] != r {
            r = c[r];
        }
        let mut cur = x;
        while c[cur] != r {
            let next = c[cur];
            c[cur] = r;
            cur = next;
        }
        r
    }
    let mut chosen: Vec<Vec<u32>> = vec![Vec::with_capacity(2); n];
    let mut added = 0;
    for &(_, u, v) in &edges {
        if added == n {
            break;
        }
        let (ui, vi) = (u as usize, v as usize);
        if degree[ui] >= 2 || degree[vi] >= 2 {
            continue;
        }
        let (ru, rv) = (find(&mut comp, ui), find(&mut comp, vi));
        // Allow closing the cycle only as the very last edge.
        if ru == rv && added != n - 1 {
            continue;
        }
        comp[ru] = rv;
        degree[ui] += 1;
        degree[vi] += 1;
        chosen[ui].push(v);
        chosen[vi].push(u);
        added += 1;
    }
    debug_assert_eq!(added, n);
    // Walk the 2-regular graph into a city order.
    let mut order = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    let mut cur = 0usize;
    for _ in 0..n {
        order.push(cur as u32);
        let next = chosen[cur]
            .iter()
            .map(|&x| x as usize)
            .find(|&x| x != prev)
            .expect("greedy edge produced a non-2-regular vertex");
        prev = cur;
        cur = next;
    }
    order
}

/// Nearest-neighbor *path* (no closing edge) — initial solution for
/// path-TSP local search on the dummy-extended instance.
pub fn nearest_neighbor_path(inst: &TspInstance, start: usize) -> Vec<u32> {
    nearest_neighbor(inst, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force_cycle;
    use crate::tour::{cycle_weight, is_permutation};

    fn line(coords: &[i64]) -> TspInstance {
        TspInstance::from_fn(coords.len(), |u, v| coords[u].abs_diff(coords[v]))
    }

    #[test]
    fn nn_is_a_permutation() {
        let t = line(&[0, 5, 2, 9, 4, 7]);
        for start in 0..6 {
            let order = nearest_neighbor(&t, start);
            assert!(is_permutation(6, &order));
            assert_eq!(order[0] as usize, start);
        }
    }

    #[test]
    fn greedy_edge_is_a_permutation() {
        let t = line(&[3, 1, 4, 1 + 10, 5, 9, 2, 6]);
        let order = greedy_edge(&t);
        assert!(is_permutation(8, &order));
    }

    #[test]
    fn heuristics_not_far_from_optimal_small() {
        for salt in 0..5u64 {
            let t = TspInstance::from_fn(8, move |u, v| {
                let (a, b) = (u.min(v) as u64, u.max(v) as u64);
                (a * 7919 + b * 104729 + salt) % 40 + 1
            });
            let (_, opt) = brute_force_cycle(&t);
            let nn = cycle_weight(&t, &nearest_neighbor(&t, 0));
            let ge = cycle_weight(&t, &greedy_edge(&t));
            assert!(nn >= opt && ge >= opt);
            assert!(nn <= 3 * opt, "NN unexpectedly bad: {nn} vs {opt}");
            assert!(ge <= 3 * opt, "greedy unexpectedly bad: {ge} vs {opt}");
        }
    }

    #[test]
    fn degenerate_sizes() {
        let t1 = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(greedy_edge(&t1), vec![0]);
        assert_eq!(nearest_neighbor(&t1, 0), vec![0]);
        let t2 = TspInstance::from_matrix(2, vec![0, 3, 3, 0]);
        assert!(is_permutation(2, &greedy_edge(&t2)));
    }
}
