//! Held–Karp **1-tree lower bound** with subgradient ascent.
//!
//! A 1-tree (spanning tree over cities `1..n` plus the two cheapest edges
//! at city 0) weighs no more than any Hamiltonian cycle; maximizing the
//! bound over node potentials `π` (Held & Karp 1970) tightens it, often to
//! within 1–2% of the optimum. Applied to the dummy-extended instance it
//! lower-bounds Path TSP — and therefore `λ_p` through the Theorem 2
//! reduction — at sizes where exact search is impossible.
//!
//! The ascent uses the classical step rule
//! `t_k = α·(UB − L(π_k)) / ‖g_k‖²` with `α` halved after stretches
//! without improvement, `UB` seeded by nearest neighbor.

use crate::construct::nearest_neighbor;
use crate::tour::cycle_weight;
use crate::{TspInstance, Weight};

/// Plain (un-ascended) 1-tree bound for **cycle** TSP. Returns 0 for
/// `n < 3`.
pub fn one_tree_bound(inst: &TspInstance) -> Weight {
    let pi = vec![0.0f64; inst.n()];
    let (v, _) = one_tree_with_degrees(inst, &pi);
    if v <= 0.0 {
        0
    } else {
        v.floor() as Weight
    }
}

/// Held–Karp ascent: iteratively raise the 1-tree bound with subgradient
/// steps on node potentials. `iters` ≈ 100 converges on the reduced
/// instances this workspace produces.
pub fn held_karp_ascent_bound(inst: &TspInstance, iters: usize) -> Weight {
    let n = inst.n();
    if n < 3 {
        return if n == 2 { 2 * inst.weight(0, 1) } else { 0 };
    }
    let ub = cycle_weight(inst, &nearest_neighbor(inst, 0)) as f64;
    let mut pi = vec![0.0f64; n];
    let mut best = f64::NEG_INFINITY;
    let mut alpha = 2.0f64;
    let mut since_improved = 0usize;
    for _ in 0..iters {
        let (value, degrees) = one_tree_with_degrees(inst, &pi);
        if value > best {
            best = value;
            since_improved = 0;
        } else {
            since_improved += 1;
            if since_improved >= 5 {
                alpha *= 0.5;
                since_improved = 0;
            }
        }
        let mut norm2 = 0.0f64;
        for &d in &degrees {
            let g = d as f64 - 2.0;
            norm2 += g * g;
        }
        if norm2 < 0.5 {
            break; // the 1-tree is a Hamiltonian cycle: bound is exact
        }
        let gap = (ub - value).max(1.0);
        let step = alpha * gap / norm2;
        for v in 0..n {
            pi[v] += step * (degrees[v] as f64 - 2.0);
        }
        if alpha < 1e-3 {
            break;
        }
    }
    if best <= 0.0 {
        0
    } else {
        // Floor with a small epsilon so floating error cannot round an
        // invalid bound upward.
        (best - 1e-6).floor().max(0.0) as Weight
    }
}

/// Lower bound for **path** TSP (both endpoints free): ascend on the
/// dummy-extended instance; a cycle there is a path here with equal weight.
pub fn path_lower_bound(inst: &TspInstance, iters: usize) -> Weight {
    if inst.n() <= 1 {
        return 0;
    }
    if inst.n() == 2 {
        return inst.weight(0, 1);
    }
    held_karp_ascent_bound(&inst.with_dummy_city(), iters)
}

/// 1-tree value and degrees under potentials: `w'(u,v) = w + π_u + π_v`,
/// value = `1tree(w') − 2·Σπ`.
fn one_tree_with_degrees(inst: &TspInstance, pi: &[f64]) -> (f64, Vec<u32>) {
    let n = inst.n();
    debug_assert!(n >= 3);
    let w = |u: usize, v: usize| inst.weight(u, v) as f64 + pi[u] + pi[v];
    // Prim MST over 1..n.
    let mut in_tree = vec![false; n];
    let mut key = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut degrees = vec![0u32; n];
    in_tree[0] = true; // city 0 is the special 1-tree vertex
    key[1] = 0.0;
    let mut total = 0.0f64;
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_w = f64::INFINITY;
        for v in 1..n {
            if !in_tree[v] && key[v] < pick_w {
                pick_w = key[v];
                pick = v;
            }
        }
        in_tree[pick] = true;
        if parent[pick] != usize::MAX {
            total += w(parent[pick], pick);
            degrees[pick] += 1;
            degrees[parent[pick]] += 1;
        }
        for v in 1..n {
            if !in_tree[v] {
                let cand = w(pick, v);
                if cand < key[v] {
                    key[v] = cand;
                    parent[v] = pick;
                }
            }
        }
    }
    // Two cheapest edges at city 0.
    let mut e1 = f64::INFINITY;
    let mut e2 = f64::INFINITY;
    for v in 1..n {
        let c = w(0, v);
        if c < e1 {
            e2 = e1;
            e1 = c;
        } else if c < e2 {
            e2 = c;
        }
    }
    total += e1 + e2;
    degrees[0] += 2;
    let sum_pi: f64 = pi.iter().sum();
    (total - 2.0 * sum_pi, degrees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{brute_force_cycle, brute_force_path, held_karp_path};

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(977)) % 80 + 1
        })
    }

    #[test]
    fn one_tree_never_exceeds_cycle_optimum() {
        for n in [4usize, 6, 8] {
            for salt in 0..5 {
                let t = random_instance(n, salt);
                let (_, opt) = brute_force_cycle(&t);
                assert!(one_tree_bound(&t) <= opt, "n={n} salt={salt}");
                assert!(held_karp_ascent_bound(&t, 100) <= opt, "n={n} salt={salt}");
            }
        }
    }

    #[test]
    fn ascent_improves_or_ties_plain_bound() {
        for salt in 0..5 {
            let t = random_instance(9, salt);
            assert!(held_karp_ascent_bound(&t, 100) >= one_tree_bound(&t));
        }
    }

    #[test]
    fn path_bound_sandwiched() {
        for salt in 0..5 {
            let t = random_instance(8, salt);
            let lb = path_lower_bound(&t, 100);
            let (_, opt) = brute_force_path(&t);
            assert!(lb <= opt, "salt={salt}: {lb} > {opt}");
            // The ascent should land within 35% on these small instances.
            assert!(3 * lb >= 2 * opt, "salt={salt}: weak bound {lb} vs {opt}");
        }
    }

    #[test]
    fn near_exact_on_two_valued_reduction_shape() {
        // Weights 1 on the line, 2 elsewhere (diameter-2 reduction shape):
        // the path optimum is n-1; the ascent bound should certify ≥ 90%.
        let t = TspInstance::from_fn(20, |u, v| if u.abs_diff(v) == 1 { 1 } else { 2 });
        let (_, opt) = held_karp_path(&t);
        assert_eq!(opt, 19);
        let lb = path_lower_bound(&t, 200);
        assert!(lb <= 19);
        assert!(lb >= 17, "ascent bound too weak: {lb} vs 19");
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(
            path_lower_bound(&TspInstance::from_matrix(1, vec![0]), 10),
            0
        );
        let t2 = TspInstance::from_matrix(2, vec![0, 5, 5, 0]);
        assert_eq!(held_karp_ascent_bound(&t2, 10), 10);
        assert_eq!(path_lower_bound(&t2, 10), 5);
    }
}
