//! Held–Karp **1-tree lower bound** with subgradient ascent.
//!
//! A 1-tree (spanning tree over cities `1..n` plus the two cheapest edges
//! at city 0) weighs no more than any Hamiltonian cycle; maximizing the
//! bound over node potentials `π` (Held & Karp 1970) tightens it, often to
//! within 1–2% of the optimum.
//!
//! **Path TSP** uses the dual in its *path* form rather than a dummy-city
//! extension: a Hamiltonian path is a spanning tree whose two endpoints
//! have degree 1, so for any potentials `π`
//!
//! ```text
//! w(P) = w^π(P) − 2·Σπ + π_s + π_t ≥ MST(w^π) − 2·Σπ + (two smallest π)
//! ```
//!
//! where `w^π(u,v) = w(u,v) + π_u + π_v`. At `π = 0` this is exactly the
//! MST bound, and the ascent only climbs from there. (The classical
//! dummy-city reduction is *equivalent at the LP optimum* but is a much
//! worse place to run a subgradient method: the dummy's all-zero edges
//! let every city attach to it for free, the un-ascended 1-tree collapses
//! toward 0, and on the two-valued reduction-shaped instances this
//! workspace produces the ascent measurably stalls one unit short of the
//! bound the plain MST already certifies.)
//!
//! The ascent uses the classical step rule
//! `t_k = α·(UB − L(π_k)) / ‖g_k‖²` with `α` halved after stretches
//! without improvement, `UB` seeded by nearest neighbor.
//!
//! **Integrality rounding** — every weight in a [`TspInstance`] is an
//! integer, so every tour weight is an integer, and a real-valued
//! Lagrangian value `L` certifies `opt ≥ ⌈L − ε⌉`. The bounds here round
//! *up* (with a small epsilon so floating error can never push a bound
//! past a value it did not certify); on two-valued reduction-shaped
//! instances this one step is frequently the difference between a bound
//! one unit shy of the optimum and a proof.
//!
//! **Anytime** — [`held_karp_ascent_anytime`] and
//! [`path_lower_bound_anytime`] poll a [`Deadline`] before every
//! subgradient iteration after the first (each iteration already pays for
//! an `O(n²)` Prim pass, so the clock read is noise) and report how many
//! iterations actually ran. The first iteration always runs: a caller that
//! reached the ascent at all has committed to one Prim pass, and the
//! certificate it yields (the MST-level bound) is what every later
//! consumer keys on. With [`Deadline::none`] the loop is purely logical:
//! zero clock reads, the same iteration count on every machine.

use crate::construct::nearest_neighbor;
use crate::tour::cycle_weight;
use crate::{TspInstance, Weight};
use dclab_par::Deadline;

/// What an ascent run produced: the certified bound and how many
/// subgradient iterations actually executed (deadline-free runs always
/// execute the same deterministic count for a given instance and budget).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AscentOutcome {
    /// The certified lower bound (0 when the instance admits none).
    pub bound: Weight,
    /// Subgradient iterations executed (0 for degenerate sizes where the
    /// bound is closed-form).
    pub iters: u64,
}

/// Plain (un-ascended) 1-tree bound for **cycle** TSP.
///
/// Degenerate sizes: a 2-city "cycle" traverses the single edge twice, so
/// `n = 2` returns `2·w(0,1)` — a tight bound. For `n < 2` no cycle exists
/// and the bound is the vacuous 0 (the convention every caller of this
/// module relies on: degenerate instances never certify anything).
pub fn one_tree_bound(inst: &TspInstance) -> Weight {
    let n = inst.n();
    if n < 3 {
        return if n == 2 { 2 * inst.weight(0, 1) } else { 0 };
    }
    let pi = vec![0.0f64; n];
    let (v, _) = one_tree_with_degrees(inst, &pi);
    round_up_bound(v)
}

/// Held–Karp ascent: iteratively raise the 1-tree bound with subgradient
/// steps on node potentials. `iters` ≈ 100 converges on the reduced
/// instances this workspace produces. Deadline-free wrapper around
/// [`held_karp_ascent_anytime`].
pub fn held_karp_ascent_bound(inst: &TspInstance, iters: usize) -> Weight {
    held_karp_ascent_anytime(inst, iters, &Deadline::none()).bound
}

/// [`held_karp_ascent_bound`] with a wall-clock budget: the subgradient
/// loop checks `deadline` before every iteration after the first and stops
/// early with the best bound certified so far. `n = 2` closes the bound in
/// constant time (`2·w(0,1)`, see [`one_tree_bound`]).
pub fn held_karp_ascent_anytime(
    inst: &TspInstance,
    iters: usize,
    deadline: &Deadline,
) -> AscentOutcome {
    let n = inst.n();
    if n < 3 {
        let bound = if n == 2 { 2 * inst.weight(0, 1) } else { 0 };
        return AscentOutcome { bound, iters: 0 };
    }
    let ub = cycle_weight(inst, &nearest_neighbor(inst, 0)) as f64;
    ascent_loop(n, iters, deadline, ub, |pi| {
        let (value, degrees) = one_tree_with_degrees(inst, pi);
        let grad = degrees.iter().map(|&d| d as f64 - 2.0).collect();
        (value, grad)
    })
}

/// Lower bound for **path** TSP (both endpoints free): Held–Karp ascent
/// in path form (see the module docs). Deadline-free wrapper around
/// [`path_lower_bound_anytime`].
pub fn path_lower_bound(inst: &TspInstance, iters: usize) -> Weight {
    path_lower_bound_anytime(inst, iters, &Deadline::none()).bound
}

/// [`path_lower_bound`] with a wall-clock budget and iteration reporting.
///
/// The first subgradient iteration evaluates the relaxation at `π = 0`,
/// which is exactly the MST bound — so a single iteration already
/// certifies at least as much as a Prim pass, and every further iteration
/// only climbs. `n = 2` closes the bound in constant time (`w(0,1)`);
/// `n < 2` is the vacuous 0.
pub fn path_lower_bound_anytime(
    inst: &TspInstance,
    iters: usize,
    deadline: &Deadline,
) -> AscentOutcome {
    let n = inst.n();
    if n <= 1 {
        return AscentOutcome { bound: 0, iters: 0 };
    }
    if n == 2 {
        return AscentOutcome {
            bound: inst.weight(0, 1),
            iters: 0,
        };
    }
    let ub = crate::tour::path_weight(inst, &nearest_neighbor(inst, 0)) as f64;
    ascent_loop(n, iters, deadline, ub, |pi| {
        path_tree_with_subgradient(inst, pi)
    })
}

/// The shared subgradient loop: classical Held–Karp ascent from `π = 0`.
///
/// `eval` returns the Lagrangian value and a supergradient at the current
/// potentials. The deadline is polled before every iteration *after the
/// first* (the first always runs — see the module docs), so a
/// [`Deadline::none`] run performs zero clock reads.
fn ascent_loop(
    n: usize,
    iters: usize,
    deadline: &Deadline,
    ub: f64,
    eval: impl Fn(&[f64]) -> (f64, Vec<f64>),
) -> AscentOutcome {
    let mut pi = vec![0.0f64; n];
    let mut best = f64::NEG_INFINITY;
    let mut alpha = 2.0f64;
    let mut since_improved = 0usize;
    let mut ran = 0u64;
    for k in 0..iters {
        if k > 0 && deadline.expired() {
            break;
        }
        ran += 1;
        let (value, grad) = eval(&pi);
        if value > best {
            best = value;
            since_improved = 0;
        } else {
            since_improved += 1;
            if since_improved >= 5 {
                alpha *= 0.5;
                since_improved = 0;
            }
        }
        let norm2: f64 = grad.iter().map(|g| g * g).sum();
        if norm2 < 0.5 {
            break; // the relaxation is a feasible tour/path: bound is exact
        }
        let gap = (ub - value).max(1.0);
        let step = alpha * gap / norm2;
        for v in 0..n {
            pi[v] += step * grad[v];
        }
        if alpha < 1e-3 {
            break;
        }
    }
    AscentOutcome {
        bound: round_up_bound(best),
        iters: ran,
    }
}

/// Integer-weight rounding of a real-valued Lagrangian bound: tour weights
/// are integers, so `opt ≥ L` implies `opt ≥ ⌈L⌉`. The epsilon keeps a
/// floating value that is really an exact integer `K` (computed as
/// `K + δ`, `δ` a few ulps) from unsoundly rounding to `K + 1`.
fn round_up_bound(value: f64) -> Weight {
    if value <= 0.0 {
        0
    } else {
        (value - 1e-6).ceil().max(0.0) as Weight
    }
}

/// Path-form Lagrangian value and supergradient under potentials (see the
/// module docs): `L(π) = MST(w^π) − 2·Σπ + (two smallest π)`, supergradient
/// `g_v = deg_v(T) − 2 + [v is one of the two argmin-π vertices]`.
fn path_tree_with_subgradient(inst: &TspInstance, pi: &[f64]) -> (f64, Vec<f64>) {
    let n = inst.n();
    debug_assert!(n >= 3);
    let w = |u: usize, v: usize| inst.weight(u, v) as f64 + pi[u] + pi[v];
    // Prim MST over all n cities under the priced weights.
    let mut in_tree = vec![false; n];
    let mut key = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut degrees = vec![0u32; n];
    key[0] = 0.0;
    let mut total = 0.0f64;
    for _ in 0..n {
        let mut pick = usize::MAX;
        let mut pick_w = f64::INFINITY;
        for v in 0..n {
            if !in_tree[v] && key[v] < pick_w {
                pick_w = key[v];
                pick = v;
            }
        }
        in_tree[pick] = true;
        if parent[pick] != usize::MAX {
            total += w(parent[pick], pick);
            degrees[pick] += 1;
            degrees[parent[pick]] += 1;
        }
        for v in 0..n {
            if !in_tree[v] {
                let cand = w(pick, v);
                if cand < key[v] {
                    key[v] = cand;
                    parent[v] = pick;
                }
            }
        }
    }
    // The two smallest potentials price the path's free endpoints
    // (deterministic: ties go to the lowest index).
    let (mut i1, mut i2) = (usize::MAX, usize::MAX);
    for v in 0..n {
        if i1 == usize::MAX || pi[v] < pi[i1] {
            i2 = i1;
            i1 = v;
        } else if i2 == usize::MAX || pi[v] < pi[i2] {
            i2 = v;
        }
    }
    let sum_pi: f64 = pi.iter().sum();
    let value = total - 2.0 * sum_pi + pi[i1] + pi[i2];
    let mut grad: Vec<f64> = degrees.iter().map(|&d| d as f64 - 2.0).collect();
    grad[i1] += 1.0;
    grad[i2] += 1.0;
    (value, grad)
}

/// 1-tree value and degrees under potentials: `w'(u,v) = w + π_u + π_v`,
/// value = `1tree(w') − 2·Σπ`.
fn one_tree_with_degrees(inst: &TspInstance, pi: &[f64]) -> (f64, Vec<u32>) {
    let n = inst.n();
    debug_assert!(n >= 3);
    let w = |u: usize, v: usize| inst.weight(u, v) as f64 + pi[u] + pi[v];
    // Prim MST over 1..n.
    let mut in_tree = vec![false; n];
    let mut key = vec![f64::INFINITY; n];
    let mut parent = vec![usize::MAX; n];
    let mut degrees = vec![0u32; n];
    in_tree[0] = true; // city 0 is the special 1-tree vertex
    key[1] = 0.0;
    let mut total = 0.0f64;
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_w = f64::INFINITY;
        for v in 1..n {
            if !in_tree[v] && key[v] < pick_w {
                pick_w = key[v];
                pick = v;
            }
        }
        in_tree[pick] = true;
        if parent[pick] != usize::MAX {
            total += w(parent[pick], pick);
            degrees[pick] += 1;
            degrees[parent[pick]] += 1;
        }
        for v in 1..n {
            if !in_tree[v] {
                let cand = w(pick, v);
                if cand < key[v] {
                    key[v] = cand;
                    parent[v] = pick;
                }
            }
        }
    }
    // Two cheapest edges at city 0.
    let mut e1 = f64::INFINITY;
    let mut e2 = f64::INFINITY;
    for v in 1..n {
        let c = w(0, v);
        if c < e1 {
            e2 = e1;
            e1 = c;
        } else if c < e2 {
            e2 = c;
        }
    }
    total += e1 + e2;
    degrees[0] += 2;
    let sum_pi: f64 = pi.iter().sum();
    (total - 2.0 * sum_pi, degrees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{brute_force_cycle, brute_force_path, held_karp_path};

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(977)) % 80 + 1
        })
    }

    #[test]
    fn one_tree_never_exceeds_cycle_optimum() {
        for n in [4usize, 6, 8] {
            for salt in 0..5 {
                let t = random_instance(n, salt);
                let (_, opt) = brute_force_cycle(&t);
                assert!(one_tree_bound(&t) <= opt, "n={n} salt={salt}");
                assert!(held_karp_ascent_bound(&t, 100) <= opt, "n={n} salt={salt}");
            }
        }
    }

    #[test]
    fn ascent_improves_or_ties_plain_bound() {
        for salt in 0..5 {
            let t = random_instance(9, salt);
            assert!(held_karp_ascent_bound(&t, 100) >= one_tree_bound(&t));
        }
    }

    #[test]
    fn path_bound_sandwiched() {
        for salt in 0..5 {
            let t = random_instance(8, salt);
            let lb = path_lower_bound(&t, 100);
            let (_, opt) = brute_force_path(&t);
            assert!(lb <= opt, "salt={salt}: {lb} > {opt}");
            // The ascent should land within 35% on these small instances.
            assert!(3 * lb >= 2 * opt, "salt={salt}: weak bound {lb} vs {opt}");
        }
    }

    #[test]
    fn near_exact_on_two_valued_reduction_shape() {
        // Weights 1 on the line, 2 elsewhere (diameter-2 reduction shape):
        // the path optimum is n-1. The path-form relaxation at π = 0 is the
        // MST bound — the line itself — so the ascent certifies it exactly,
        // and a single iteration suffices.
        let t = TspInstance::from_fn(20, |u, v| if u.abs_diff(v) == 1 { 1 } else { 2 });
        let (_, opt) = held_karp_path(&t);
        assert_eq!(opt, 19);
        assert_eq!(path_lower_bound(&t, 200), 19);
        let one = path_lower_bound_anytime(&t, 1, &Deadline::none());
        assert_eq!(one.bound, 19);
        assert_eq!(one.iters, 1);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(
            path_lower_bound(&TspInstance::from_matrix(1, vec![0]), 10),
            0
        );
        let t2 = TspInstance::from_matrix(2, vec![0, 5, 5, 0]);
        assert_eq!(held_karp_ascent_bound(&t2, 10), 10);
        assert_eq!(path_lower_bound(&t2, 10), 5);
        // n = 2 has a provable 1-tree bound: the cycle uses the lone edge
        // twice. n < 2 stays at the vacuous 0.
        assert_eq!(one_tree_bound(&t2), 10);
        assert_eq!(one_tree_bound(&TspInstance::from_matrix(1, vec![0])), 0);
        assert_eq!(one_tree_bound(&TspInstance::from_matrix(0, vec![])), 0);
    }

    #[test]
    fn anytime_reports_iterations_and_respects_cancellation() {
        let t = random_instance(10, 3);
        let full = held_karp_ascent_anytime(&t, 40, &Deadline::none());
        assert!(full.iters >= 1 && full.iters <= 40);
        // Deterministic: the deadline-free loop runs the same count again.
        assert_eq!(held_karp_ascent_anytime(&t, 40, &Deadline::none()), full);
        // A pre-cancelled deadline still runs the first iteration (the
        // caller committed to one Prim pass), then stops: the result is the
        // un-ascended bound, never the vacuous 0.
        let token = dclab_par::CancelToken::new();
        token.cancel();
        let dl = Deadline::none().with_token(token);
        let cancelled = held_karp_ascent_anytime(&t, 40, &dl);
        assert_eq!(cancelled.iters, 1);
        assert_eq!(cancelled.bound, one_tree_bound(&t));
        let path_cancelled = path_lower_bound_anytime(&t, 40, &dl);
        assert_eq!(path_cancelled.iters, 1);
        assert!(path_cancelled.bound > 0);
    }
}
