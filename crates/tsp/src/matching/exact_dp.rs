//! Exact minimum-weight perfect matching by bitmask DP.
//!
//! `dp[mask]` = cheapest perfect matching of the vertex subset `mask`.
//! Pairing always starts from the lowest set bit, so each state is expanded
//! `O(k)` ways: `O(2^k k)` time, `O(2^k)` space. Practical to `k = 20`.

use crate::Weight;

const UNSET: Weight = Weight::MAX;

/// Exact minimum-weight perfect matching on `0..k` (`k` even, `k ≤ 20`).
pub fn min_weight_perfect_matching_dp(
    k: usize,
    w: &dyn Fn(usize, usize) -> Weight,
) -> Vec<(u32, u32)> {
    assert!(k.is_multiple_of(2), "perfect matching needs even k");
    assert!(k <= 20, "bitmask DP guarded at k ≤ 20");
    if k == 0 {
        return vec![];
    }
    let full: usize = (1 << k) - 1;
    let mut dp = vec![UNSET; full + 1];
    let mut choice = vec![(0u8, 0u8); full + 1];
    dp[0] = 0;
    for mask in 1..=full {
        if mask.count_ones() % 2 == 1 {
            continue;
        }
        let i = mask.trailing_zeros() as usize;
        let rest = mask & !(1 << i);
        let mut rem = rest;
        while rem != 0 {
            let j = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let prev = rest & !(1 << j);
            if dp[prev] == UNSET {
                continue;
            }
            let cand = dp[prev].saturating_add(w(i, j));
            if cand < dp[mask] {
                dp[mask] = cand;
                choice[mask] = (i as u8, j as u8);
            }
        }
    }
    assert_ne!(dp[full], UNSET, "no perfect matching found");
    let mut pairs = Vec::with_capacity(k / 2);
    let mut mask = full;
    while mask != 0 {
        let (i, j) = choice[mask];
        pairs.push((i as u32, j as u32));
        mask &= !(1 << i);
        mask &= !(1 << j);
    }
    pairs
}

/// Weight of the optimal perfect matching without reconstructing it.
pub fn min_weight_perfect_matching_value(k: usize, w: &dyn Fn(usize, usize) -> Weight) -> Weight {
    let pairs = min_weight_perfect_matching_dp(k, w);
    pairs.iter().map(|&(a, b)| w(a as usize, b as usize)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::is_perfect_matching;

    /// Oracle brute force: enumerate all perfect matchings recursively.
    fn brute(k: usize, w: &dyn Fn(usize, usize) -> Weight) -> Weight {
        fn rec(free: &mut Vec<usize>, w: &dyn Fn(usize, usize) -> Weight) -> Weight {
            if free.is_empty() {
                return 0;
            }
            let a = free.remove(0);
            let mut best = Weight::MAX;
            for idx in 0..free.len() {
                let b = free.remove(idx);
                let sub = rec(free, w);
                if sub != Weight::MAX {
                    best = best.min(sub + w(a, b));
                }
                free.insert(idx, b);
            }
            free.insert(0, a);
            best
        }
        let mut free: Vec<usize> = (0..k).collect();
        rec(&mut free, w)
    }

    #[test]
    fn dp_matches_brute_force() {
        for k in [2usize, 4, 6, 8, 10] {
            for salt in 0..4u64 {
                let w = move |a: usize, b: usize| {
                    let (a, b) = (a.min(b) as u64, a.max(b) as u64);
                    (a * 131 + b * 37 + salt * 7) % 29 + 1
                };
                let pairs = min_weight_perfect_matching_dp(k, &w);
                assert!(is_perfect_matching(k, &pairs));
                let got: Weight = pairs.iter().map(|&(a, b)| w(a as usize, b as usize)).sum();
                assert_eq!(got, brute(k, &w), "k={k} salt={salt}");
            }
        }
    }

    #[test]
    fn empty_matching() {
        assert!(min_weight_perfect_matching_dp(0, &|_, _| 1).is_empty());
    }

    #[test]
    fn two_vertices() {
        let pairs = min_weight_perfect_matching_dp(2, &|_, _| 42);
        assert_eq!(pairs, vec![(0, 1)]);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        min_weight_perfect_matching_dp(3, &|_, _| 1);
    }
}
