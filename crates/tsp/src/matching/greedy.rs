//! Greedy matching with pairwise-swap improvement.
//!
//! For large odd-vertex sets (beyond blossom's practical range) Christofides
//! falls back to: sort all pairs by weight, take greedily, then run
//! 2-exchange improvement passes (`(a,b),(c,d) → (a,c),(b,d) / (a,d),(b,c)`)
//! until a fixed point. No optimality guarantee — see DESIGN.md §3.

use crate::Weight;

/// Greedy + swap-improved matching on `0..k` (`k` even).
pub fn greedy_min_weight_matching(k: usize, w: &dyn Fn(usize, usize) -> Weight) -> Vec<(u32, u32)> {
    assert!(k.is_multiple_of(2));
    if k == 0 {
        return vec![];
    }
    let mut pairs = greedy_construct(k, w);
    improve_by_swaps(&mut pairs, w, 50);
    pairs
}

fn greedy_construct(k: usize, w: &dyn Fn(usize, usize) -> Weight) -> Vec<(u32, u32)> {
    let mut all: Vec<(Weight, u32, u32)> = Vec::with_capacity(k * (k - 1) / 2);
    for a in 0..k {
        for b in (a + 1)..k {
            all.push((w(a, b), a as u32, b as u32));
        }
    }
    all.sort_unstable();
    let mut used = vec![false; k];
    let mut pairs = Vec::with_capacity(k / 2);
    for (_, a, b) in all {
        if !used[a as usize] && !used[b as usize] {
            used[a as usize] = true;
            used[b as usize] = true;
            pairs.push((a, b));
            if pairs.len() * 2 == k {
                break;
            }
        }
    }
    pairs
}

/// Repeated 2-exchange passes; `max_passes` bounds the work.
pub fn improve_by_swaps(
    pairs: &mut [(u32, u32)],
    w: &dyn Fn(usize, usize) -> Weight,
    max_passes: usize,
) {
    let cost = |a: u32, b: u32| w(a as usize, b as usize);
    for _ in 0..max_passes {
        let mut improved = false;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                let (a, b) = pairs[i];
                let (c, d) = pairs[j];
                let cur = cost(a, b) + cost(c, d);
                let alt1 = cost(a, c) + cost(b, d);
                let alt2 = cost(a, d) + cost(b, c);
                if alt1 < cur && alt1 <= alt2 {
                    pairs[i] = (a, c);
                    pairs[j] = (b, d);
                    improved = true;
                } else if alt2 < cur {
                    pairs[i] = (a, d);
                    pairs[j] = (b, c);
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::exact_dp::min_weight_perfect_matching_value;
    use crate::matching::{is_perfect_matching, matching_weight};

    fn oracle(salt: u64) -> impl Fn(usize, usize) -> Weight {
        move |a, b| {
            let (a, b) = (a.min(b) as u64, a.max(b) as u64);
            (a * 7919 + b * 104729 + salt * 13) % 100 + 1
        }
    }

    #[test]
    fn produces_perfect_matchings() {
        for k in [2usize, 6, 12, 30] {
            let w = oracle(k as u64);
            let pairs = greedy_min_weight_matching(k, &w);
            assert!(is_perfect_matching(k, &pairs), "k={k}");
        }
    }

    #[test]
    fn close_to_exact_on_small_instances() {
        for salt in 0..6 {
            let w = oracle(salt);
            let greedy = matching_weight(&greedy_min_weight_matching(12, &w), &w);
            let exact = min_weight_perfect_matching_value(12, &w);
            assert!(greedy >= exact);
            // Swap improvement keeps greedy within 2x of optimal here; the
            // observed gap on these oracles is ≤ ~30%.
            assert!(greedy <= 2 * exact, "salt={salt}: {greedy} vs {exact}");
        }
    }

    #[test]
    fn swaps_strictly_improve_a_bad_matching() {
        // Distance on a line: pairing (0,3),(1,2) is worse than (0,1),(2,3).
        let coords = [0u64, 1, 10, 11];
        let w = move |a: usize, b: usize| coords[a].abs_diff(coords[b]);
        let mut pairs = vec![(0u32, 2u32), (1, 3)];
        improve_by_swaps(&mut pairs, &w, 10);
        let total = matching_weight(&pairs, &w);
        assert_eq!(total, 2); // (0,1) + (2,3)
    }
}
