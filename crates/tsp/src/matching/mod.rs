//! Minimum-weight matching toolbox for Christofides/Hoogeveen.
//!
//! Three backends over a dense weight oracle on `0..k` local indices:
//!
//! * [`exact_dp`] — bitmask DP, provably optimal, `O(2^k k)`, for `k ≤ 20`;
//! * [`blossom`] — Galil-style `O(k³)` blossom algorithm for maximum-weight
//!   perfect matching (run on negated weights), exact at mid sizes;
//! * [`greedy`] — greedy construction plus pairwise-swap improvement for
//!   large `k` (the documented fallback: the 3/2 guarantee formally holds
//!   wherever the matching is exact).
//!
//! [`min_weight_perfect_matching`] dispatches between them; the
//! [`near_perfect`](min_weight_near_perfect_matching) variant leaves exactly
//! two vertices uncovered (Hoogeveen's path adaptation) via two zero-weight
//! dummy vertices.

pub mod blossom;
pub mod exact_dp;
pub mod greedy;

use crate::Weight;

/// Which matching algorithm to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchingBackend {
    /// Exact DP for `k ≤ 20`, blossom for `k ≤ 300`, greedy beyond.
    Auto,
    /// Bitmask DP (panics if `k > 20`).
    ExactDp,
    /// `O(k³)` blossom.
    Blossom,
    /// Greedy + swap improvement (no optimality guarantee).
    Greedy,
}

/// Minimum-weight perfect matching on `k` vertices (`k` even) given a dense
/// weight oracle. Returns pairs of local indices, each vertex in exactly one
/// pair.
pub fn min_weight_perfect_matching(
    k: usize,
    w: &dyn Fn(usize, usize) -> Weight,
    backend: MatchingBackend,
) -> Vec<(u32, u32)> {
    assert!(
        k.is_multiple_of(2),
        "perfect matching needs an even vertex count"
    );
    if k == 0 {
        return vec![];
    }
    match backend {
        MatchingBackend::ExactDp => exact_dp::min_weight_perfect_matching_dp(k, w),
        MatchingBackend::Blossom => blossom::min_weight_perfect_matching_blossom(k, w),
        MatchingBackend::Greedy => greedy::greedy_min_weight_matching(k, w),
        MatchingBackend::Auto => {
            if k <= 20 {
                exact_dp::min_weight_perfect_matching_dp(k, w)
            } else if k <= 300 {
                blossom::min_weight_perfect_matching_blossom(k, w)
            } else {
                greedy::greedy_min_weight_matching(k, w)
            }
        }
    }
}

/// Minimum-weight matching covering all but exactly two of `k` vertices
/// (`k` even, `k ≥ 2`). Returns `(pairs, uncovered_pair)`.
///
/// Implemented by adding two dummy vertices with zero weight to every real
/// vertex and a prohibitive mutual weight, then taking a perfect matching —
/// the dummies' partners are the uncovered vertices. Globally optimal
/// whenever the underlying backend is exact.
pub fn min_weight_near_perfect_matching(
    k: usize,
    w: &dyn Fn(usize, usize) -> Weight,
    backend: MatchingBackend,
) -> (Vec<(u32, u32)>, (u32, u32)) {
    assert!(k >= 2 && k.is_multiple_of(2));
    if k == 2 {
        return (vec![], (0, 1));
    }
    // Any forbidden weight strictly above 0 suffices: a matching using the
    // dummy-dummy edge costs `forbidden + perfect(k)`, while splitting the
    // dummies costs `near_perfect(k) ≤ perfect(k)`. Using max+1 (rather
    // than a huge sentinel) keeps the weights inside every backend's
    // arithmetic range (the blossom duals in particular).
    let mut max_w: Weight = 0;
    for a in 0..k {
        for b in (a + 1)..k {
            max_w = max_w.max(w(a, b));
        }
    }
    let forbidden: Weight = max_w + 1;
    let ext = k + 2;
    let wrapped = move |a: usize, b: usize| -> Weight {
        let (a, b) = (a.min(b), a.max(b));
        if b < k {
            w(a, b)
        } else if a < k {
            0 // dummy to real
        } else {
            forbidden // dummy to dummy
        }
    };
    let pairs = min_weight_perfect_matching(ext, &wrapped, backend);
    let mut real_pairs = Vec::with_capacity(k / 2 - 1);
    let mut uncovered = Vec::with_capacity(2);
    for (a, b) in pairs {
        let (a, b) = (a.min(b), a.max(b));
        if (b as usize) < k {
            real_pairs.push((a, b));
        } else if (a as usize) < k {
            uncovered.push(a);
        } else {
            // dummy-dummy pairing can only appear if k == 2 (handled above)
            // or if every real-real weight exceeded FORBIDDEN.
            panic!("near-perfect matching paired the two dummies");
        }
    }
    assert_eq!(uncovered.len(), 2);
    (real_pairs, (uncovered[0], uncovered[1]))
}

/// Total weight of a matching under the oracle.
pub fn matching_weight(pairs: &[(u32, u32)], w: &dyn Fn(usize, usize) -> Weight) -> Weight {
    pairs.iter().map(|&(a, b)| w(a as usize, b as usize)).sum()
}

/// Check that `pairs` is a perfect matching on `0..k`.
pub fn is_perfect_matching(k: usize, pairs: &[(u32, u32)]) -> bool {
    if pairs.len() * 2 != k {
        return false;
    }
    let mut seen = vec![false; k];
    for &(a, b) in pairs {
        let (a, b) = (a as usize, b as usize);
        if a >= k || b >= k || a == b || seen[a] || seen[b] {
            return false;
        }
        seen[a] = true;
        seen[b] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(salt: u64) -> impl Fn(usize, usize) -> Weight {
        move |a, b| {
            let (a, b) = (a.min(b) as u64, a.max(b) as u64);
            (a * 7919 + b * 104729 + salt) % 50 + 1
        }
    }

    #[test]
    fn dispatcher_small_is_exact() {
        let w = oracle(3);
        let pairs = min_weight_perfect_matching(8, &w, MatchingBackend::Auto);
        assert!(is_perfect_matching(8, &pairs));
        let exact = exact_dp::min_weight_perfect_matching_dp(8, &w);
        assert_eq!(matching_weight(&pairs, &w), matching_weight(&exact, &w));
    }

    #[test]
    fn near_perfect_leaves_two() {
        let w = oracle(5);
        let (pairs, (a, b)) = min_weight_near_perfect_matching(10, &w, MatchingBackend::ExactDp);
        assert_eq!(pairs.len(), 4);
        assert_ne!(a, b);
        let mut covered: Vec<u32> = pairs.iter().flat_map(|&(x, y)| [x, y]).collect();
        covered.push(a);
        covered.push(b);
        covered.sort();
        assert_eq!(covered, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn near_perfect_cheaper_than_perfect() {
        let w = oracle(11);
        let perfect = exact_dp::min_weight_perfect_matching_dp(12, &w);
        let (near, _) = min_weight_near_perfect_matching(12, &w, MatchingBackend::ExactDp);
        assert!(matching_weight(&near, &w) <= matching_weight(&perfect, &w));
    }

    #[test]
    fn near_perfect_agrees_across_backends() {
        for salt in 0..5 {
            let w = oracle(salt);
            let mut weights = Vec::new();
            for backend in [
                MatchingBackend::ExactDp,
                MatchingBackend::Blossom,
                MatchingBackend::Auto,
            ] {
                let (pairs, (a, b)) = min_weight_near_perfect_matching(14, &w, backend);
                assert_eq!(pairs.len(), 6);
                assert_ne!(a, b);
                weights.push(matching_weight(&pairs, &w));
            }
            assert_eq!(weights[0], weights[1], "salt={salt}");
            assert_eq!(weights[0], weights[2], "salt={salt}");
        }
    }

    #[test]
    fn near_perfect_greedy_backend_is_feasible() {
        let w = oracle(9);
        let (pairs, (a, b)) = min_weight_near_perfect_matching(30, &w, MatchingBackend::Greedy);
        assert_eq!(pairs.len(), 14);
        let mut covered: Vec<u32> = pairs.iter().flat_map(|&(x, y)| [x, y]).collect();
        covered.push(a);
        covered.push(b);
        covered.sort();
        assert_eq!(covered, (0..30).collect::<Vec<_>>());
    }

    #[test]
    fn near_perfect_k2() {
        let w = oracle(0);
        let (pairs, (a, b)) = min_weight_near_perfect_matching(2, &w, MatchingBackend::Auto);
        assert!(pairs.is_empty());
        assert_eq!((a, b), (0, 1));
    }

    #[test]
    fn is_perfect_matching_rejects_bad() {
        assert!(!is_perfect_matching(4, &[(0, 1)])); // too few
        assert!(!is_perfect_matching(4, &[(0, 1), (1, 2)])); // reuse
        assert!(!is_perfect_matching(4, &[(0, 1), (2, 2)])); // self pair
        assert!(is_perfect_matching(4, &[(3, 2), (0, 1)]));
    }
}
