//! `O(n³)` maximum-weight general matching (blossom algorithm with dual
//! variables), used as the exact mid-size backend for minimum-weight perfect
//! matching in Christofides/Hoogeveen.
//!
//! This is the classical primal-dual algorithm in its dense formulation
//! (Galil's presentation; the implementation follows the widely used
//! contest-proven structure with contracted-blossom super-nodes, slack
//! tracking per root, and lazy blossom expansion). Vertices are 1-indexed
//! internally; index 0 is the null sentinel. Weights are doubled inside the
//! dual arithmetic so all duals stay integral.
//!
//! Minimum-weight perfect matching on a complete graph is obtained by
//! maximizing the flipped weights `w'(u,v) = (max_w + 1) - w(u,v)` (all
//! strictly positive, so a maximum-weight matching on an even complete graph
//! is perfect).

use crate::Weight;

type W = i64;
const INF: W = i64::MAX / 4;

#[derive(Clone, Copy, Default)]
struct Edge {
    u: usize,
    v: usize,
    w: W,
}

struct Blossom {
    n: usize,
    n_x: usize,
    g: Vec<Vec<Edge>>,
    lab: Vec<W>,
    matched: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    flower_from: Vec<Vec<usize>>,
    flower: Vec<Vec<usize>>,
    s: Vec<i32>,
    vis: Vec<i32>,
    vis_t: i32,
    q: std::collections::VecDeque<usize>,
}

impl Blossom {
    fn new(n: usize, weight: impl Fn(usize, usize) -> W) -> Self {
        let cap = 2 * n + 1;
        let mut g = vec![vec![Edge::default(); cap]; cap];
        for u in 1..=n {
            for v in 1..=n {
                g[u][v] = Edge {
                    u,
                    v,
                    w: if u == v { 0 } else { weight(u - 1, v - 1) },
                };
            }
        }
        Blossom {
            n,
            n_x: n,
            g,
            lab: vec![0; cap],
            matched: vec![0; cap],
            slack: vec![0; cap],
            st: (0..cap).collect(),
            pa: vec![0; cap],
            flower_from: vec![vec![0; n + 1]; cap],
            flower: vec![Vec::new(); cap],
            s: vec![-1; cap],
            vis: vec![0; cap],
            vis_t: 0,
            q: std::collections::VecDeque::new(),
        }
    }

    #[inline]
    fn e_delta(&self, e: &Edge) -> W {
        self.lab[e.u] + self.lab[e.v] - self.g[e.u][e.v].w * 2
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0
            || self.e_delta(&self.g[u][x]) < self.e_delta(&self.g[self.slack[x]][x])
        {
            self.slack[x] = u;
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.g[u][x].w > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            let children = self.flower[x].clone();
            for p in children {
                self.q_push(p);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let children = self.flower[x].clone();
            for p in children {
                self.set_st(p, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        let pr = self.flower[b].iter().position(|&p| p == xr).unwrap();
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        self.matched[u] = self.g[u][v].v;
        if u > self.n {
            let e = self.g[u][v];
            let xr = self.flower_from[u][e.u];
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let (a, b) = (self.flower[u][i], self.flower[u][i ^ 1]);
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.matched[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let next_u = self.st[self.pa[xnv]];
            self.set_match(xnv, next_u);
            u = next_u;
            v = xnv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.matched[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.matched[b] = self.matched[lca];
        self.flower[b].clear();
        self.flower[b].push(lca);
        let mut x = u;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.matched[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        let mut x = v;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.matched[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            self.g[b][x].w = 0;
            self.g[x][b].w = 0;
        }
        for x in 1..=self.n {
            self.flower_from[b][x] = 0;
        }
        let members = self.flower[b].clone();
        for &xs in &members {
            for x in 1..=self.n_x {
                if self.g[b][x].w == 0 || self.e_delta(&self.g[xs][x]) < self.e_delta(&self.g[b][x])
                {
                    self.g[b][x] = self.g[xs][x];
                    self.g[x][b] = self.g[x][xs];
                }
            }
            for x in 1..=self.n {
                if self.flower_from[xs][x] != 0 {
                    self.flower_from[b][x] = xs;
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let members = self.flower[b].clone();
        for &m in &members {
            self.set_st(m, m);
        }
        let xr = self.flower_from[b][self.g[b][self.pa[b]].u];
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.flower[b][i];
            let xns = self.flower[b][i + 1];
            self.pa[xs] = self.g[xns][xs].u;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for i in (pr + 1)..self.flower[b].len() {
            let xs = self.flower[b][i];
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.st[b] = 0;
    }

    fn on_found_edge(&mut self, e: Edge) -> bool {
        let u = self.st[e.u];
        let v = self.st[e.v];
        if self.s[v] == -1 {
            self.pa[v] = e.u;
            self.s[v] = 1;
            let nu = self.st[self.matched[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    fn matching_round(&mut self) -> bool {
        for x in 1..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.matched[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return false;
        }
        loop {
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.g[u][v].w > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(&self.g[u][v]) == 0 {
                            if self.on_found_edge(self.g[u][v]) {
                                return true;
                            }
                        } else {
                            let sv = self.st[v];
                            self.update_slack(u, sv);
                        }
                    }
                }
            }
            let mut d = INF;
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            for x in 1..=self.n_x {
                if self.st[x] == x && self.slack[x] != 0 {
                    let delta = self.e_delta(&self.g[self.slack[x]][x]);
                    if self.s[x] == -1 {
                        d = d.min(delta);
                    } else if self.s[x] == 0 {
                        d = d.min(delta / 2);
                    }
                }
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return false; // dual hits zero: no perfect matching
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b {
                    match self.s[b] {
                        0 => self.lab[b] += d * 2,
                        1 => self.lab[b] -= d * 2,
                        _ => {}
                    }
                }
            }
            self.q.clear();
            for x in 1..=self.n_x {
                if self.st[x] == x
                    && self.slack[x] != 0
                    && self.st[self.slack[x]] != x
                    && self.e_delta(&self.g[self.slack[x]][x]) == 0
                {
                    let e = self.g[self.slack[x]][x];
                    if self.on_found_edge(e) {
                        return true;
                    }
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    /// Run the full algorithm; returns `matched` over 1..=n.
    fn solve(&mut self) -> Vec<usize> {
        let mut w_max = 0;
        for u in 1..=self.n {
            self.flower_from[u][u] = u;
            for v in 1..=self.n {
                w_max = w_max.max(self.g[u][v].w);
            }
        }
        for u in 1..=self.n {
            self.lab[u] = w_max;
        }
        while self.matching_round() {}
        self.matched[1..=self.n].to_vec()
    }
}

/// Maximum-weight matching (not necessarily perfect) on `0..k` for a
/// positive-weight oracle; returns `mate[v]` with `usize::MAX` for
/// unmatched vertices.
pub fn max_weight_matching(k: usize, w: &dyn Fn(usize, usize) -> W) -> Vec<usize> {
    if k == 0 {
        return vec![];
    }
    let mut b = Blossom::new(k, |u, v| w(u, v).max(0));
    let matched = b.solve();
    matched
        .iter()
        .map(|&m| if m == 0 { usize::MAX } else { m - 1 })
        .collect()
}

/// Exact minimum-weight perfect matching on the complete graph `0..k`
/// (`k` even) via weight flipping.
///
/// # Panics
/// If `k` is odd, or the blossom search fails to perfectly match (cannot
/// happen on a complete graph with even `k`).
pub fn min_weight_perfect_matching_blossom(
    k: usize,
    w: &dyn Fn(usize, usize) -> Weight,
) -> Vec<(u32, u32)> {
    assert!(k.is_multiple_of(2), "perfect matching needs even k");
    if k == 0 {
        return vec![];
    }
    let mut max_w: Weight = 0;
    for a in 0..k {
        for b in (a + 1)..k {
            max_w = max_w.max(w(a, b));
        }
    }
    assert!(
        max_w < (INF / (k as i64 + 1)) as Weight,
        "weights too large for blossom dual arithmetic"
    );
    let flipped = move |a: usize, b: usize| -> W { (max_w + 1 - w(a, b)) as W };
    let mate = max_weight_matching(k, &flipped);
    let mut pairs = Vec::with_capacity(k / 2);
    for v in 0..k {
        let m = mate[v];
        assert!(
            m != usize::MAX,
            "blossom failed to produce perfect matching"
        );
        if v < m {
            pairs.push((v as u32, m as u32));
        }
    }
    assert_eq!(pairs.len() * 2, k);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::exact_dp::min_weight_perfect_matching_value;
    use crate::matching::{is_perfect_matching, matching_weight};

    fn oracle(salt: u64, modulus: u64) -> impl Fn(usize, usize) -> Weight {
        move |a, b| {
            let (a, b) = (a.min(b) as u64, a.max(b) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(2654435761))
                % modulus
                + 1
        }
    }

    #[test]
    fn blossom_matches_exact_dp_small() {
        for k in [2usize, 4, 6, 8, 10, 12] {
            for salt in 0..8 {
                let w = oracle(salt, 50);
                let pairs = min_weight_perfect_matching_blossom(k, &w);
                assert!(is_perfect_matching(k, &pairs), "k={k} salt={salt}");
                let got = matching_weight(&pairs, &w);
                let want = min_weight_perfect_matching_value(k, &w);
                assert_eq!(got, want, "k={k} salt={salt}");
            }
        }
    }

    #[test]
    fn blossom_matches_exact_dp_medium() {
        for salt in 0..3 {
            let w = oracle(salt + 100, 1000);
            let pairs = min_weight_perfect_matching_blossom(16, &w);
            assert!(is_perfect_matching(16, &pairs));
            let got = matching_weight(&pairs, &w);
            let want = min_weight_perfect_matching_value(16, &w);
            assert_eq!(got, want, "salt={salt}");
        }
    }

    #[test]
    fn blossom_large_instance_is_perfect_and_beats_greedy_construction() {
        let w = oracle(7, 500);
        let k = 60;
        let pairs = min_weight_perfect_matching_blossom(k, &w);
        assert!(is_perfect_matching(k, &pairs));
        let blossom_w = matching_weight(&pairs, &w);
        let greedy = crate::matching::greedy::greedy_min_weight_matching(k, &w);
        let greedy_w = matching_weight(&greedy, &w);
        assert!(blossom_w <= greedy_w, "{blossom_w} vs greedy {greedy_w}");
    }

    #[test]
    fn blossom_line_metric() {
        // Points on a line: optimal pairs are consecutive.
        let coords: Vec<u64> = vec![0, 1, 10, 11, 20, 21];
        let w = move |a: usize, b: usize| coords[a].abs_diff(coords[b]);
        let pairs = min_weight_perfect_matching_blossom(6, &w);
        assert_eq!(matching_weight(&pairs, &w), 3);
    }

    #[test]
    fn empty_and_two() {
        assert!(min_weight_perfect_matching_blossom(0, &|_, _| 1).is_empty());
        let pairs = min_weight_perfect_matching_blossom(2, &|_, _| 5);
        assert_eq!(pairs, vec![(0, 1)]);
    }
}
