//! Dense symmetric TSP instances.

use crate::Weight;

/// A symmetric TSP instance on cities `0..n` with a dense weight matrix.
///
/// The Theorem 2 reduction always produces a *complete* graph, so a flat
/// `n × n` matrix (single allocation, row-major) is the right layout; all
/// solvers index it directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TspInstance {
    n: usize,
    w: Vec<Weight>,
}

impl TspInstance {
    /// Build from a row-major `n × n` matrix. The matrix must be symmetric
    /// with a zero diagonal.
    pub fn from_matrix(n: usize, w: Vec<Weight>) -> Self {
        assert_eq!(w.len(), n * n, "matrix size mismatch");
        let inst = TspInstance { n, w };
        debug_assert!(inst.check_symmetric().is_ok());
        inst
    }

    /// Build by evaluating `f(u, v)` for `u ≠ v`.
    pub fn from_fn(n: usize, f: impl Fn(usize, usize) -> Weight) -> Self {
        let mut w = vec![0; n * n];
        for u in 0..n {
            for v in 0..n {
                if u != v {
                    w[u * n + v] = f(u, v);
                }
            }
        }
        let inst = TspInstance { n, w };
        assert!(
            inst.check_symmetric().is_ok(),
            "from_fn requires a symmetric weight function"
        );
        inst
    }

    /// Number of cities.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight of edge `{u, v}` (0 on the diagonal).
    #[inline]
    pub fn weight(&self, u: usize, v: usize) -> Weight {
        self.w[u * self.n + v]
    }

    /// Row of weights out of `u`.
    #[inline]
    pub fn row(&self, u: usize) -> &[Weight] {
        &self.w[u * self.n..(u + 1) * self.n]
    }

    fn check_symmetric(&self) -> Result<(), String> {
        for u in 0..self.n {
            if self.weight(u, u) != 0 {
                return Err(format!("nonzero diagonal at {u}"));
            }
            for v in (u + 1)..self.n {
                if self.weight(u, v) != self.weight(v, u) {
                    return Err(format!("asymmetric at ({u},{v})"));
                }
            }
        }
        Ok(())
    }

    /// `true` iff the triangle inequality holds on all triples — the
    /// precondition of Christofides/Hoogeveen. `O(n³)`.
    pub fn is_metric(&self) -> bool {
        for u in 0..self.n {
            for v in 0..self.n {
                if u == v {
                    continue;
                }
                let direct = self.weight(u, v);
                for x in 0..self.n {
                    if x == u || x == v {
                        continue;
                    }
                    if self.weight(u, x) + self.weight(x, v) < direct {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Minimum and maximum off-diagonal weights; `None` for `n < 2`.
    pub fn weight_range(&self) -> Option<(Weight, Weight)> {
        let mut min = Weight::MAX;
        let mut max = 0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                let w = self.weight(u, v);
                min = min.min(w);
                max = max.max(w);
            }
        }
        if self.n < 2 {
            None
        } else {
            Some((min, max))
        }
    }

    /// `k` nearest neighbors of every city, by ascending weight (ties by
    /// index), as plain per-city vectors. This is the input of the
    /// *scalar-oracle* local-search kernels (`two_opt_scalar` /
    /// `or_opt_scalar`); the fast path uses [`Self::candidate_lists`],
    /// which produces the same lists in flat SoA form via partial
    /// selection instead of a full per-city sort.
    pub fn neighbor_lists(&self, k: usize) -> Vec<Vec<u32>> {
        let k = k.min(self.n.saturating_sub(1));
        (0..self.n)
            .map(|u| {
                let mut order: Vec<u32> = (0..self.n as u32).filter(|&v| v as usize != u).collect();
                order.sort_by_key(|&v| (self.weight(u, v as usize), v));
                order.truncate(k);
                order
            })
            .collect()
    }

    /// Flat SoA candidate lists for the vectorized local-search kernels:
    /// same contents and order as [`Self::neighbor_lists`], built with
    /// partial selection and with the candidate edge weights precomputed.
    /// See [`crate::localsearch::CandidateLists`].
    pub fn candidate_lists(&self, k: usize) -> crate::localsearch::CandidateLists {
        crate::localsearch::CandidateLists::build(self, k)
    }

    /// Extend with a "dummy" city at index `n` whose edges all weigh 0.
    ///
    /// Cycle tours of the extended instance correspond 1:1 (and weight-equal)
    /// to Hamiltonian *paths* of the original: remove the dummy from the
    /// cycle and its two 0-weight incident edges. This is how local-search
    /// heuristics solve Path TSP (the extension is intentionally *not*
    /// metric; only metric-requiring algorithms must avoid it).
    pub fn with_dummy_city(&self) -> TspInstance {
        let n = self.n + 1;
        let mut w = vec![0; n * n];
        for u in 0..self.n {
            for v in 0..self.n {
                w[u * n + v] = self.weight(u, v);
            }
        }
        TspInstance { n, w }
    }

    /// Total weight of all edges (upper bound scaffold for branch & bound).
    pub fn total_weight(&self) -> Weight {
        let mut s = 0;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                s += self.weight(u, v);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TspInstance {
        // 4 cities on a line at coordinates 0, 1, 3, 6.
        let coords = [0i64, 1, 3, 6];
        TspInstance::from_fn(4, |u, v| coords[u].abs_diff(coords[v]))
    }

    #[test]
    fn weights_and_rows() {
        let t = small();
        assert_eq!(t.weight(0, 3), 6);
        assert_eq!(t.weight(3, 0), 6);
        assert_eq!(t.row(1), &[1, 0, 2, 5]);
    }

    #[test]
    fn line_metric_is_metric() {
        assert!(small().is_metric());
    }

    #[test]
    fn non_metric_detected() {
        let t = TspInstance::from_matrix(3, vec![0, 1, 10, 1, 0, 1, 10, 1, 0]);
        assert!(!t.is_metric());
    }

    #[test]
    fn neighbor_lists_sorted() {
        let t = small();
        let nl = t.neighbor_lists(2);
        assert_eq!(nl[0], vec![1, 2]);
        assert_eq!(nl[3], vec![2, 1]);
        let full = t.neighbor_lists(10);
        assert_eq!(full[0].len(), 3);
    }

    #[test]
    fn dummy_city_zero_weights() {
        let t = small().with_dummy_city();
        assert_eq!(t.n(), 5);
        for v in 0..4 {
            assert_eq!(t.weight(4, v), 0);
        }
        assert_eq!(t.weight(0, 3), 6);
    }

    #[test]
    fn weight_range() {
        assert_eq!(small().weight_range(), Some((1, 6)));
        assert_eq!(TspInstance::from_matrix(1, vec![0]).weight_range(), None);
    }

    #[test]
    #[should_panic(expected = "matrix size mismatch")]
    fn bad_matrix_size_panics() {
        TspInstance::from_matrix(2, vec![0, 1, 1]);
    }
}
