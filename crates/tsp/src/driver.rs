//! High-level solve entry points: parallel multi-start heuristics and the
//! path↔cycle dummy-city bridge.

use crate::lk::{chained_lk_with_candidates, ChainedLkConfig};
use crate::localsearch::CandidateLists;
use crate::tour::{cycle_with_dummy_to_path, path_weight};
use crate::{TspInstance, Weight};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the multi-start heuristic driver.
#[derive(Clone, Debug)]
pub struct HeuristicConfig {
    /// Independent chained-LK restarts (run in parallel).
    pub restarts: usize,
    /// Per-restart chained-LK settings.
    pub chained: ChainedLkConfig,
    /// Base RNG seed; restart `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for HeuristicConfig {
    fn default() -> Self {
        HeuristicConfig {
            restarts: 4,
            chained: ChainedLkConfig::default(),
            seed: 0xDC1AB,
        }
    }
}

/// Multi-start chained-LK for **cycle** TSP. Restarts run in parallel via
/// `dclab-par`; the result is deterministic for a fixed config (best of a
/// fixed set of seeded runs, ties by restart index).
pub fn solve_cycle_heuristic(inst: &TspInstance, cfg: &HeuristicConfig) -> (Vec<u32>, Weight) {
    let n = inst.n();
    assert!(n >= 1, "empty instance");
    let restarts = cfg.restarts.max(1);
    // One candidate-list build shared (read-only) by every restart — the
    // build is the same for all of them, and under a tight deadline an
    // already-expired run shouldn't pay for lists it cannot use.
    let cands = if n > 3 && !cfg.chained.local.deadline.expired() {
        CandidateLists::build(inst, cfg.chained.local.neighbor_k)
    } else {
        CandidateLists::empty(n)
    };
    let runs = dclab_par::par_map_indexed(restarts, |i| {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(i as u64));
        let start_city = i % n;
        chained_lk_with_candidates(inst, start_city, &cfg.chained, &cands, &mut rng)
    });
    runs.into_iter()
        .min_by_key(|(_, w)| *w)
        .expect("at least one restart")
}

/// Multi-start chained-LK for **path** TSP (both endpoints free), via the
/// zero-weight dummy city.
pub fn solve_path_heuristic(inst: &TspInstance, cfg: &HeuristicConfig) -> (Vec<u32>, Weight) {
    let n = inst.n();
    assert!(n >= 1, "empty instance");
    if n == 1 {
        return (vec![0], 0);
    }
    let ext = inst.with_dummy_city();
    let (cycle, _) = solve_cycle_heuristic(&ext, cfg);
    let path = cycle_with_dummy_to_path(n, &cycle);
    let w = path_weight(inst, &path);
    (path, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{brute_force_path, held_karp_path};
    use crate::tour::is_permutation;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(6151) ^ b.wrapping_mul(3079) ^ salt.wrapping_mul(389)) % 100 + 1
        })
    }

    #[test]
    fn path_heuristic_matches_exact_on_small() {
        for salt in 0..5 {
            let t = random_instance(8, salt);
            let (_, opt) = brute_force_path(&t);
            let (path, w) = solve_path_heuristic(&t, &HeuristicConfig::default());
            assert!(is_permutation(8, &path));
            assert_eq!(path_weight(&t, &path), w);
            assert!(w >= opt);
            assert!(w <= opt + opt / 4, "salt={salt}: {w} vs {opt}");
        }
    }

    #[test]
    fn path_heuristic_reasonable_at_medium_size() {
        let t = random_instance(60, 3);
        let (_, w) = solve_path_heuristic(&t, &HeuristicConfig::default());
        // Sanity: heuristic at least beats the naive identity order.
        let identity: Vec<u32> = (0..60).collect();
        assert!(w <= path_weight(&t, &identity));
    }

    #[test]
    fn deterministic_given_config() {
        let t = random_instance(30, 11);
        let cfg = HeuristicConfig::default();
        assert_eq!(
            solve_path_heuristic(&t, &cfg),
            solve_path_heuristic(&t, &cfg)
        );
    }

    #[test]
    fn heuristic_upper_bounds_held_karp() {
        for salt in 0..3 {
            let t = random_instance(12, salt);
            let (_, exact) = held_karp_path(&t);
            let (_, heur) = solve_path_heuristic(&t, &HeuristicConfig::default());
            assert!(heur >= exact);
        }
    }

    #[test]
    fn single_city() {
        let t = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(
            solve_path_heuristic(&t, &HeuristicConfig::default()).0,
            vec![0]
        );
    }
}
