//! Chained local search ("chained Lin–Kernighan" shape): repeat
//! (local optimum → double-bridge kick) keeping the best tour found.
//!
//! This is the practical engine the paper's Section I-A points at (Concorde
//! and LKH being the reference implementations); our kernel composes the
//! 2-opt and Or-opt moves of [`crate::localsearch`] — the classic "2.5-opt"
//! neighborhood — under double-bridge perturbations, which is the same
//! metaheuristic skeleton as chained LK.

use crate::localsearch::{local_opt, LocalSearchConfig, TourState};
use crate::tour::cycle_weight;
use crate::{construct, TspInstance, Weight};
use rand::{Rng, RngExt};

/// Configuration for a chained-LK run.
#[derive(Clone, Debug)]
pub struct ChainedLkConfig {
    /// Local-search tunables.
    pub local: LocalSearchConfig,
    /// Number of double-bridge kicks after the first descent.
    pub kicks: usize,
}

impl Default for ChainedLkConfig {
    fn default() -> Self {
        ChainedLkConfig {
            local: LocalSearchConfig::default(),
            kicks: 30,
        }
    }
}

/// The classic 4-opt double bridge: split the tour into four non-empty
/// segments A|B|C|D and reconnect as A|C|B|D. It cannot be undone by
/// 2-opt alone, which is what makes it the canonical kick.
///
/// The three cut points are sampled *distinct* (strictly `0 < p < q < r
/// < n`): coinciding cuts would silently degenerate the 4-opt kick into a
/// plain segment move that 2-opt can undo, wasting the kick.
pub fn double_bridge<R: Rng>(order: &[u32], rng: &mut R) -> Vec<u32> {
    let n = order.len();
    if n < 8 {
        return order.to_vec();
    }
    // Rejection-sample three distinct interior cut points; with n ≥ 8
    // a collision has probability < 3/7 per draw, so this terminates in
    // a couple of rounds in expectation.
    let (p, q, r) = loop {
        let mut cuts = [
            rng.random_range(1..n),
            rng.random_range(1..n),
            rng.random_range(1..n),
        ];
        cuts.sort_unstable();
        if cuts[0] != cuts[1] && cuts[1] != cuts[2] {
            break (cuts[0], cuts[1], cuts[2]);
        }
    };
    debug_assert!(0 < p && p < q && q < r && r < n, "four non-empty segments");
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&order[..p]);
    out.extend_from_slice(&order[q..r]);
    out.extend_from_slice(&order[p..q]);
    out.extend_from_slice(&order[r..]);
    // B and C are both non-empty and swapped, so the kick always produces
    // a genuinely different tour.
    debug_assert_ne!(out, order);
    out
}

/// Run chained local search from a nearest-neighbor start at `start_city`.
/// Returns the best cycle found and its weight.
pub fn chained_lk<R: Rng>(
    inst: &TspInstance,
    start_city: usize,
    cfg: &ChainedLkConfig,
    rng: &mut R,
) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 3 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = cycle_weight(inst, &order);
        return (order, w);
    }
    let start = construct::nearest_neighbor(inst, start_city);
    if cfg.local.deadline.expired() {
        // Deadline beat us to the first descent: surrender the construction
        // tour now rather than paying for neighbor lists it cannot use.
        let w = cycle_weight(inst, &start);
        return (start, w);
    }
    let neighbors = inst.neighbor_lists(cfg.local.neighbor_k);
    let mut state = TourState::new(start);
    local_opt(inst, &mut state, &neighbors, &cfg.local);
    let mut best = state.order.clone();
    let mut best_w = cycle_weight(inst, &best);
    for _ in 0..cfg.kicks {
        // Checkpoint between kicks: an expired deadline surrenders the
        // incumbent (never worse than the construction tour) instead of
        // finishing the kick schedule.
        if cfg.local.deadline.expired() {
            break;
        }
        let kicked = double_bridge(&best, rng);
        let mut s = TourState::new(kicked);
        local_opt(inst, &mut s, &neighbors, &cfg.local);
        let w = cycle_weight(inst, &s.order);
        if w < best_w {
            best_w = w;
            best = s.order.clone();
        }
    }
    (best, best_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force_cycle;
    use crate::tour::is_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(57)) % 200 + 1
        })
    }

    #[test]
    fn double_bridge_preserves_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let order: Vec<u32> = (0..20).collect();
        for _ in 0..50 {
            let kicked = double_bridge(&order, &mut rng);
            assert!(is_permutation(20, &kicked));
        }
    }

    #[test]
    fn double_bridge_is_never_a_no_op() {
        // Distinct cuts guarantee a genuine 4-opt move: the kicked tour
        // must always differ from the input (coinciding cuts used to
        // collapse the kick into a move 2-opt could undo, or the identity).
        let mut rng = StdRng::seed_from_u64(5);
        for n in [8usize, 9, 12, 25, 60] {
            let order: Vec<u32> = (0..n as u32).collect();
            for _ in 0..200 {
                let kicked = double_bridge(&order, &mut rng);
                assert!(is_permutation(n, &kicked));
                assert_ne!(kicked, order, "degenerate kick at n={n}");
            }
        }
    }

    #[test]
    fn double_bridge_small_tours_passthrough() {
        let mut rng = StdRng::seed_from_u64(2);
        let order: Vec<u32> = (0..6).collect();
        assert_eq!(double_bridge(&order, &mut rng), order);
    }

    #[test]
    fn chained_lk_finds_optimum_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        for salt in 0..4 {
            let t = random_instance(9, salt);
            let (_, opt) = brute_force_cycle(&t);
            let (order, w) = chained_lk(&t, 0, &ChainedLkConfig::default(), &mut rng);
            assert!(is_permutation(9, &order));
            assert_eq!(cycle_weight(&t, &order), w);
            assert!(w >= opt);
            assert!(
                w <= opt + opt / 5,
                "salt={salt}: chained LK {w} far from opt {opt}"
            );
        }
    }

    #[test]
    fn expired_deadline_surrenders_the_construction_tour() {
        // The anytime contract at its boundary: a deadline that expired
        // before work began still yields a full valid tour — exactly the
        // nearest-neighbor construction, never anything worse.
        use dclab_par::{CancelToken, Deadline};
        let t = random_instance(40, 4);
        let token = CancelToken::new();
        token.cancel();
        let mut cfg = ChainedLkConfig::default();
        cfg.local.deadline = Deadline::none().with_token(token);
        let (order, w) = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(1));
        assert!(is_permutation(40, &order));
        assert_eq!(cycle_weight(&t, &order), w);
        let nn = crate::construct::nearest_neighbor(&t, 0);
        assert_eq!(w, cycle_weight(&t, &nn), "incumbent == construction");
    }

    #[test]
    fn mid_run_cancellation_never_beats_uncancelled_quality_floor() {
        // Cancelling between kicks keeps the best incumbent so far: the
        // result is always ≥ the construction (in quality) and the tour
        // remains a permutation.
        use dclab_par::{CancelToken, Deadline};
        let t = random_instance(60, 8);
        let nn_w = cycle_weight(&t, &crate::construct::nearest_neighbor(&t, 0));
        for cancel_immediately in [false, true] {
            let token = CancelToken::new();
            if cancel_immediately {
                token.cancel();
            }
            let mut cfg = ChainedLkConfig::default();
            cfg.local.deadline = Deadline::none().with_token(token);
            let (order, w) = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(2));
            assert!(is_permutation(60, &order));
            assert!(w <= nn_w, "incumbent {w} worse than construction {nn_w}");
        }
    }

    #[test]
    fn chained_lk_deterministic_under_seed() {
        let t = random_instance(40, 9);
        let cfg = ChainedLkConfig::default();
        let a = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(7));
        let b = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
