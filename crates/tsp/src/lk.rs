//! Chained local search ("chained Lin–Kernighan" shape): repeat
//! (local optimum → double-bridge kick) keeping the best tour found.
//!
//! This is the practical engine the paper's Section I-A points at (Concorde
//! and LKH being the reference implementations); our kernel composes the
//! 2-opt and Or-opt moves of [`crate::localsearch`] — the classic "2.5-opt"
//! neighborhood — under double-bridge perturbations, which is the same
//! metaheuristic skeleton as chained LK.
//!
//! The fast path ([`chained_lk`] / [`chained_lk_with_candidates`]) runs on
//! flat SoA [`CandidateLists`] and exploits kick locality: a double bridge
//! only changes four tour edges, so after the first full descent each
//! re-optimization seeds the don't-look bits with everything *except* the
//! eight junction cities and pays only for the perturbed neighborhood.
//! [`chained_lk_scalar`] is the pre-SoA pipeline kept verbatim as the
//! differential / performance baseline: `Vec<Vec<u32>>` neighbor lists,
//! scalar gain scans, full descent from scratch after every kick.

use crate::localsearch::{
    local_opt_scalar, local_opt_with_dlb, CandidateLists, LocalSearchConfig, TourState,
};
use crate::tour::cycle_weight;
use crate::{construct, TspInstance, Weight};
use rand::{Rng, RngExt};

/// Configuration for a chained-LK run.
#[derive(Clone, Debug)]
pub struct ChainedLkConfig {
    /// Local-search tunables.
    pub local: LocalSearchConfig,
    /// Number of double-bridge kicks after the first descent.
    pub kicks: usize,
}

impl Default for ChainedLkConfig {
    fn default() -> Self {
        ChainedLkConfig {
            local: LocalSearchConfig::default(),
            kicks: 30,
        }
    }
}

/// The classic 4-opt double bridge: split the tour into four non-empty
/// segments A|B|C|D and reconnect as A|C|B|D. It cannot be undone by
/// 2-opt alone, which is what makes it the canonical kick.
///
/// The three cut points are sampled *distinct* (strictly `0 < p < q < r
/// < n`): coinciding cuts would silently degenerate the 4-opt kick into a
/// plain segment move that 2-opt can undo, wasting the kick.
///
/// Returns the kicked tour and `Some((p, q, r))` when a kick happened
/// (`None` for the `n < 8` passthrough), so callers can locate the four
/// new junctions for kick-local don't-look seeding.
pub fn double_bridge_with_cuts<R: Rng>(
    order: &[u32],
    rng: &mut R,
) -> (Vec<u32>, Option<(usize, usize, usize)>) {
    let n = order.len();
    if n < 8 {
        return (order.to_vec(), None);
    }
    // Rejection-sample three distinct interior cut points; with n ≥ 8
    // a collision has probability < 3/7 per draw, so this terminates in
    // a couple of rounds in expectation.
    let (p, q, r) = loop {
        let mut cuts = [
            rng.random_range(1..n),
            rng.random_range(1..n),
            rng.random_range(1..n),
        ];
        cuts.sort_unstable();
        if cuts[0] != cuts[1] && cuts[1] != cuts[2] {
            break (cuts[0], cuts[1], cuts[2]);
        }
    };
    debug_assert!(0 < p && p < q && q < r && r < n, "four non-empty segments");
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&order[..p]);
    out.extend_from_slice(&order[q..r]);
    out.extend_from_slice(&order[p..q]);
    out.extend_from_slice(&order[r..]);
    // B and C are both non-empty and swapped, so the kick always produces
    // a genuinely different tour.
    debug_assert_ne!(out, order);
    (out, Some((p, q, r)))
}

/// [`double_bridge_with_cuts`] without the cut report.
pub fn double_bridge<R: Rng>(order: &[u32], rng: &mut R) -> Vec<u32> {
    double_bridge_with_cuts(order, rng).0
}

/// The positions (in the *kicked* tour A|C|B|D) flanking the four new
/// junction edges — the only cities whose neighborhoods a double bridge
/// with cuts `(p, q, r)` changes.
fn kick_junction_positions(n: usize, p: usize, q: usize, r: usize) -> [usize; 8] {
    let end_c = p + (r - q);
    [p - 1, p, end_c - 1, end_c, r - 1, r, n - 1, 0]
}

/// Run chained local search from a nearest-neighbor start at `start_city`,
/// reusing prebuilt candidate lists (the multi-start driver builds them
/// once and shares them across restarts). Returns the best cycle found and
/// its weight.
pub fn chained_lk_with_candidates<R: Rng>(
    inst: &TspInstance,
    start_city: usize,
    cfg: &ChainedLkConfig,
    cands: &CandidateLists,
    rng: &mut R,
) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 3 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = cycle_weight(inst, &order);
        return (order, w);
    }
    // One trace handle per run, hoisted out of the kick loop: a disabled
    // trace costs one thread-local read here and a branch per kick, never
    // a clock read (the e15_trace bench gates this against
    // `chained_lk_untraced`).
    let trace = dclab_trace::current();
    let mut span = trace.span("lk");
    let start = construct::nearest_neighbor(inst, start_city);
    if cfg.local.deadline.expired() {
        // Deadline beat us to the first descent: surrender the construction
        // tour now.
        if span.is_enabled() {
            span.set_detail(format!("n={n} rounds=0 kicks=0/{}", cfg.kicks));
        }
        let w = cycle_weight(inst, &start);
        return (start, w);
    }
    let mut dlb = vec![false; n];
    let mut state = TourState::new(start);
    local_opt_with_dlb(inst, &mut state, cands, &cfg.local, &mut dlb);
    let mut best = state.order.clone();
    let mut best_w = cycle_weight(inst, &best);
    let mut kicks_done = 0usize;
    for _ in 0..cfg.kicks {
        // Checkpoint between kicks: an expired deadline surrenders the
        // incumbent (never worse than the construction tour) instead of
        // finishing the kick schedule.
        if cfg.local.deadline.expired() {
            break;
        }
        let (kicked, cuts) = double_bridge_with_cuts(&best, rng);
        let mut s = TourState::new(kicked);
        // Kick-local seeding: only the four junction edges changed, so
        // every city away from them starts asleep and the descent touches
        // just the perturbed neighborhood (improvements then wake their
        // own surroundings transitively).
        match cuts {
            Some((p, q, r)) if cfg.local.dont_look => {
                dlb.fill(true);
                for jp in kick_junction_positions(n, p, q, r) {
                    dlb[s.order[jp] as usize] = false;
                }
            }
            _ => dlb.fill(false),
        }
        local_opt_with_dlb(inst, &mut s, cands, &cfg.local, &mut dlb);
        kicks_done += 1;
        let w = cycle_weight(inst, &s.order);
        if w < best_w {
            best_w = w;
            best = s.order.clone();
        }
    }
    if span.is_enabled() {
        // rounds = first descent + one re-optimization per completed kick.
        span.set_detail(format!(
            "n={n} rounds={} kicks={kicks_done}/{}",
            kicks_done + 1,
            cfg.kicks
        ));
    }
    (best, best_w)
}

/// [`chained_lk_with_candidates`] with the tracing hooks compiled out —
/// the body is otherwise verbatim. Two jobs, mirroring the
/// [`chained_lk_scalar`] oracle pattern: the differential baseline for the
/// "tracing never perturbs a solve" bit-identity tests, and the untraced
/// throughput baseline the `e15_trace` bench holds the instrumented path
/// to (disabled tracing within 2%, enabled within 5%).
#[doc(hidden)]
pub fn chained_lk_untraced<R: Rng>(
    inst: &TspInstance,
    start_city: usize,
    cfg: &ChainedLkConfig,
    cands: &CandidateLists,
    rng: &mut R,
) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 3 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = cycle_weight(inst, &order);
        return (order, w);
    }
    let start = construct::nearest_neighbor(inst, start_city);
    if cfg.local.deadline.expired() {
        let w = cycle_weight(inst, &start);
        return (start, w);
    }
    let mut dlb = vec![false; n];
    let mut state = TourState::new(start);
    local_opt_with_dlb(inst, &mut state, cands, &cfg.local, &mut dlb);
    let mut best = state.order.clone();
    let mut best_w = cycle_weight(inst, &best);
    for _ in 0..cfg.kicks {
        if cfg.local.deadline.expired() {
            break;
        }
        let (kicked, cuts) = double_bridge_with_cuts(&best, rng);
        let mut s = TourState::new(kicked);
        match cuts {
            Some((p, q, r)) if cfg.local.dont_look => {
                dlb.fill(true);
                for jp in kick_junction_positions(n, p, q, r) {
                    dlb[s.order[jp] as usize] = false;
                }
            }
            _ => dlb.fill(false),
        }
        local_opt_with_dlb(inst, &mut s, cands, &cfg.local, &mut dlb);
        let w = cycle_weight(inst, &s.order);
        if w < best_w {
            best_w = w;
            best = s.order.clone();
        }
    }
    (best, best_w)
}

/// [`chained_lk_with_candidates`] with the candidate lists built on the
/// spot — the convenience entry point for single runs.
pub fn chained_lk<R: Rng>(
    inst: &TspInstance,
    start_city: usize,
    cfg: &ChainedLkConfig,
    rng: &mut R,
) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 3 || cfg.local.deadline.expired() {
        // Don't pay for a candidate build the run cannot use.
        return chained_lk_with_candidates(inst, start_city, cfg, &CandidateLists::empty(n), rng);
    }
    let cands = CandidateLists::build(inst, cfg.local.neighbor_k);
    chained_lk_with_candidates(inst, start_city, cfg, &cands, rng)
}

/// The pre-SoA chained-LK pipeline, kept as the performance baseline the
/// `e14_localsearch` speedup headline is measured against: full per-city
/// sort in [`TspInstance::neighbor_lists`], scalar oracle descents
/// ([`local_opt_scalar`]), don't-look bits reset before every descent.
/// Same kick schedule and RNG consumption as the fast path.
pub fn chained_lk_scalar<R: Rng>(
    inst: &TspInstance,
    start_city: usize,
    cfg: &ChainedLkConfig,
    rng: &mut R,
) -> (Vec<u32>, Weight) {
    let n = inst.n();
    if n <= 3 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = cycle_weight(inst, &order);
        return (order, w);
    }
    let start = construct::nearest_neighbor(inst, start_city);
    if cfg.local.deadline.expired() {
        let w = cycle_weight(inst, &start);
        return (start, w);
    }
    let neighbors = inst.neighbor_lists(cfg.local.neighbor_k);
    let mut state = TourState::new(start);
    local_opt_scalar(inst, &mut state, &neighbors, &cfg.local);
    let mut best = state.order.clone();
    let mut best_w = cycle_weight(inst, &best);
    for _ in 0..cfg.kicks {
        if cfg.local.deadline.expired() {
            break;
        }
        let kicked = double_bridge(&best, rng);
        let mut s = TourState::new(kicked);
        local_opt_scalar(inst, &mut s, &neighbors, &cfg.local);
        let w = cycle_weight(inst, &s.order);
        if w < best_w {
            best_w = w;
            best = s.order.clone();
        }
    }
    (best, best_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute_force_cycle;
    use crate::tour::is_permutation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(57)) % 200 + 1
        })
    }

    #[test]
    fn double_bridge_preserves_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let order: Vec<u32> = (0..20).collect();
        for _ in 0..50 {
            let kicked = double_bridge(&order, &mut rng);
            assert!(is_permutation(20, &kicked));
        }
    }

    #[test]
    fn double_bridge_is_never_a_no_op() {
        // Distinct cuts guarantee a genuine 4-opt move: the kicked tour
        // must always differ from the input (coinciding cuts used to
        // collapse the kick into a move 2-opt could undo, or the identity).
        let mut rng = StdRng::seed_from_u64(5);
        for n in [8usize, 9, 12, 25, 60] {
            let order: Vec<u32> = (0..n as u32).collect();
            for _ in 0..200 {
                let kicked = double_bridge(&order, &mut rng);
                assert!(is_permutation(n, &kicked));
                assert_ne!(kicked, order, "degenerate kick at n={n}");
            }
        }
    }

    #[test]
    fn double_bridge_small_tours_passthrough() {
        let mut rng = StdRng::seed_from_u64(2);
        let order: Vec<u32> = (0..6).collect();
        assert_eq!(double_bridge(&order, &mut rng), order);
        assert_eq!(double_bridge_with_cuts(&order, &mut rng).1, None);
    }

    #[test]
    fn junction_positions_cover_the_four_new_edges() {
        // A double bridge turns A|B|C|D into A|C|B|D; the new edges are
        // exactly (end A, start C), (end C, start B), (end B, start D) and
        // the closing edge (end D, start A).
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20;
        let order: Vec<u32> = (0..n as u32).collect();
        for _ in 0..50 {
            let (kicked, cuts) = double_bridge_with_cuts(&order, &mut rng);
            let (p, q, r) = cuts.unwrap();
            let junctions = kick_junction_positions(n, p, q, r);
            // Every tour edge of `kicked` that does not exist in `order`
            // must be flanked by junction positions.
            for i in 0..n {
                let a = kicked[i];
                let b = kicked[(i + 1) % n];
                let old_edge = (b as i64 - a as i64).rem_euclid(n as i64) == 1
                    || (a as i64 - b as i64).rem_euclid(n as i64) == 1;
                if !old_edge {
                    assert!(
                        junctions.contains(&i) && junctions.contains(&((i + 1) % n)),
                        "new edge at position {i} not covered by {junctions:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn chained_lk_finds_optimum_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(3);
        for salt in 0..4 {
            let t = random_instance(9, salt);
            let (_, opt) = brute_force_cycle(&t);
            let (order, w) = chained_lk(&t, 0, &ChainedLkConfig::default(), &mut rng);
            assert!(is_permutation(9, &order));
            assert_eq!(cycle_weight(&t, &order), w);
            assert!(w >= opt);
            assert!(
                w <= opt + opt / 5,
                "salt={salt}: chained LK {w} far from opt {opt}"
            );
        }
    }

    #[test]
    fn scalar_pipeline_matches_fast_path_quality_class() {
        // The two pipelines differ in don't-look seeding (kick-local vs
        // full reset), so tours may differ — but both must stay close to
        // optimal on small instances.
        for salt in 0..4 {
            let t = random_instance(10, salt + 20);
            let (_, opt) = brute_force_cycle(&t);
            let cfg = ChainedLkConfig::default();
            let (of, wf) = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(4));
            let (os, ws) = chained_lk_scalar(&t, 0, &cfg, &mut StdRng::seed_from_u64(4));
            assert!(is_permutation(10, &of));
            assert!(is_permutation(10, &os));
            assert_eq!(cycle_weight(&t, &of), wf);
            assert_eq!(cycle_weight(&t, &os), ws);
            assert!(wf <= opt + opt / 4, "fast {wf} vs opt {opt}");
            assert!(ws <= opt + opt / 4, "scalar {ws} vs opt {opt}");
        }
    }

    #[test]
    fn expired_deadline_surrenders_the_construction_tour() {
        // The anytime contract at its boundary: a deadline that expired
        // before work began still yields a full valid tour — exactly the
        // nearest-neighbor construction, never anything worse.
        use dclab_par::{CancelToken, Deadline};
        let t = random_instance(40, 4);
        let token = CancelToken::new();
        token.cancel();
        let mut cfg = ChainedLkConfig::default();
        cfg.local.deadline = Deadline::none().with_token(token);
        let (order, w) = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(1));
        assert!(is_permutation(40, &order));
        assert_eq!(cycle_weight(&t, &order), w);
        let nn = crate::construct::nearest_neighbor(&t, 0);
        assert_eq!(w, cycle_weight(&t, &nn), "incumbent == construction");
    }

    #[test]
    fn mid_run_cancellation_never_beats_uncancelled_quality_floor() {
        // Cancelling between kicks keeps the best incumbent so far: the
        // result is always ≥ the construction (in quality) and the tour
        // remains a permutation.
        use dclab_par::{CancelToken, Deadline};
        let t = random_instance(60, 8);
        let nn_w = cycle_weight(&t, &crate::construct::nearest_neighbor(&t, 0));
        for cancel_immediately in [false, true] {
            let token = CancelToken::new();
            if cancel_immediately {
                token.cancel();
            }
            let mut cfg = ChainedLkConfig::default();
            cfg.local.deadline = Deadline::none().with_token(token);
            let (order, w) = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(2));
            assert!(is_permutation(60, &order));
            assert!(w <= nn_w, "incumbent {w} worse than construction {nn_w}");
        }
    }

    #[test]
    fn tracing_never_perturbs_the_run() {
        // The `Trace::disabled()` contract: instrumented runs — with no
        // trace installed AND with a live trace recording — are
        // bit-identical to the untraced twin (the pre-instrumentation
        // body kept verbatim).
        let t = random_instance(60, 21);
        let cfg = ChainedLkConfig::default();
        let cands = t.candidate_lists(cfg.local.neighbor_k);
        let oracle = chained_lk_untraced(&t, 0, &cfg, &cands, &mut StdRng::seed_from_u64(13));
        let disabled =
            chained_lk_with_candidates(&t, 0, &cfg, &cands, &mut StdRng::seed_from_u64(13));
        assert_eq!(oracle, disabled, "disabled tracing must be bit-identical");
        let trace = dclab_trace::Trace::enabled();
        let enabled = {
            let _g = trace.install();
            chained_lk_with_candidates(&t, 0, &cfg, &cands, &mut StdRng::seed_from_u64(13))
        };
        assert_eq!(oracle, enabled, "live tracing must be bit-identical");
        let spans = trace.finish("t".into(), "lk".into()).unwrap().spans;
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "lk");
        assert!(
            spans[0].detail.contains("kicks=30/30"),
            "{}",
            spans[0].detail
        );
    }

    #[test]
    fn chained_lk_deterministic_under_seed() {
        let t = random_instance(40, 9);
        let cfg = ChainedLkConfig::default();
        let a = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(7));
        let b = chained_lk(&t, 0, &cfg, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let cands = t.candidate_lists(cfg.local.neighbor_k);
        let c = chained_lk_with_candidates(&t, 0, &cfg, &cands, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, c, "prebuilt candidates must not change the run");
    }
}
