//! Held–Karp dynamic programming: `O(2^n n²)` time, `O(2^n n)` space.
//!
//! This is the algorithm behind Corollary 1 of the paper — the exact
//! `O(2^n n²)` bound for `L(p)`-labeling on small-diameter graphs. Both the
//! classical cycle variant and the *path* variant (both endpoints free,
//! which the reduction needs) are provided, with tour reconstruction.
//!
//! Memory note: the DP table stores `2^n · n` `u32` entries plus `u8`
//! parents; n = 24 needs ~1.5 GiB, so construction is guarded at n ≤ 24.

use crate::{TspInstance, Weight};

const UNREACHED: u32 = u32::MAX;

/// Exact minimum-weight Hamiltonian path with both endpoints free.
///
/// Returns `(order, weight)`.
///
/// # Panics
/// If `n == 0` or `n > 24`, or if any single edge weight exceeds `u32::MAX/2`
/// (the compact DP stores weights in `u32`).
pub fn held_karp_path(inst: &TspInstance) -> (Vec<u32>, Weight) {
    let n = inst.n();
    assert!(n >= 1, "empty instance");
    assert!(n <= 24, "Held-Karp guarded at n ≤ 24 (memory)");
    if n == 1 {
        return (vec![0], 0);
    }
    check_weights(inst);
    let full: usize = (1usize << n) - 1;
    // dp[mask * n + j] = min weight of a path visiting exactly `mask`,
    // ending at city j (j ∈ mask), starting anywhere in mask.
    let mut dp = vec![UNREACHED; (full + 1) * n];
    let mut parent = vec![u8::MAX; (full + 1) * n];
    for j in 0..n {
        dp[(1 << j) * n + j] = 0;
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let mut rem = mask;
        while rem != 0 {
            let j = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let prev_mask = mask & !(1 << j);
            let mut best = UNREACHED;
            let mut best_i = u8::MAX;
            let mut prem = prev_mask;
            while prem != 0 {
                let i = prem.trailing_zeros() as usize;
                prem &= prem - 1;
                let base = dp[prev_mask * n + i];
                if base == UNREACHED {
                    continue;
                }
                let cand = base + inst.weight(i, j) as u32;
                if cand < best {
                    best = cand;
                    best_i = i as u8;
                }
            }
            dp[mask * n + j] = best;
            parent[mask * n + j] = best_i;
        }
    }
    let (mut end, mut best) = (0usize, UNREACHED);
    for j in 0..n {
        let w = dp[full * n + j];
        if w < best {
            best = w;
            end = j;
        }
    }
    // Reconstruct backwards.
    let mut order = Vec::with_capacity(n);
    let mut mask = full;
    let mut j = end;
    loop {
        order.push(j as u32);
        let p = parent[mask * n + j];
        let next_mask = mask & !(1 << j);
        if p == u8::MAX {
            debug_assert_eq!(next_mask.count_ones(), 0);
            break;
        }
        mask = next_mask;
        j = p as usize;
    }
    order.reverse();
    (order, best as Weight)
}

/// Exact minimum-weight Hamiltonian cycle (city 0 pinned as the start).
///
/// # Panics
/// Same guards as [`held_karp_path`]; additionally `n ≥ 1`.
pub fn held_karp_cycle(inst: &TspInstance) -> (Vec<u32>, Weight) {
    let n = inst.n();
    assert!(n >= 1, "empty instance");
    assert!(n <= 24, "Held-Karp guarded at n ≤ 24 (memory)");
    if n == 1 {
        return (vec![0], 0);
    }
    if n == 2 {
        return (vec![0, 1], 2 * inst.weight(0, 1));
    }
    check_weights(inst);
    // Subsets over cities 1..n (city 0 implicit start).
    let m = n - 1;
    let full: usize = (1usize << m) - 1;
    let mut dp = vec![UNREACHED; (full + 1) * m];
    let mut parent = vec![u8::MAX; (full + 1) * m];
    for j in 0..m {
        dp[(1 << j) * m + j] = inst.weight(0, j + 1) as u32;
    }
    for mask in 1..=full {
        if mask.count_ones() < 2 {
            continue;
        }
        let mut rem = mask;
        while rem != 0 {
            let j = rem.trailing_zeros() as usize;
            rem &= rem - 1;
            let prev_mask = mask & !(1 << j);
            let mut best = UNREACHED;
            let mut best_i = u8::MAX;
            let mut prem = prev_mask;
            while prem != 0 {
                let i = prem.trailing_zeros() as usize;
                prem &= prem - 1;
                let base = dp[prev_mask * m + i];
                if base == UNREACHED {
                    continue;
                }
                let cand = base + inst.weight(i + 1, j + 1) as u32;
                if cand < best {
                    best = cand;
                    best_i = i as u8;
                }
            }
            dp[mask * m + j] = best;
            parent[mask * m + j] = best_i;
        }
    }
    let (mut end, mut best) = (0usize, UNREACHED);
    for j in 0..m {
        let w = dp[full * m + j];
        if w == UNREACHED {
            continue;
        }
        let total = w + inst.weight(j + 1, 0) as u32;
        if total < best {
            best = total;
            end = j;
        }
    }
    let mut order = vec![0u32];
    let mut tail = Vec::with_capacity(m);
    let mut mask = full;
    let mut j = end;
    loop {
        tail.push((j + 1) as u32);
        let p = parent[mask * m + j];
        if p == u8::MAX {
            break;
        }
        mask &= !(1 << j);
        j = p as usize;
    }
    tail.reverse();
    order.extend(tail);
    (order, best as Weight)
}

fn check_weights(inst: &TspInstance) {
    if let Some((_, max)) = inst.weight_range() {
        assert!(
            max <= (u32::MAX / 2) as Weight,
            "edge weight too large for compact Held-Karp DP"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::brute::{brute_force_cycle, brute_force_path};
    use crate::tour::{cycle_weight, is_permutation, path_weight};

    fn pseudo_random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a * 7919 + b * 104729 + salt * 31) % 97 + 1
        })
    }

    #[test]
    fn matches_brute_force_path() {
        for n in 2..=8 {
            for salt in 0..3 {
                let t = pseudo_random_instance(n, salt);
                let (order, w) = held_karp_path(&t);
                let (_, bw) = brute_force_path(&t);
                assert_eq!(w, bw, "n={n} salt={salt}");
                assert!(is_permutation(n, &order));
                assert_eq!(path_weight(&t, &order), w, "reconstruction consistent");
            }
        }
    }

    #[test]
    fn matches_brute_force_cycle() {
        for n in 3..=8 {
            for salt in 0..3 {
                let t = pseudo_random_instance(n, salt);
                let (order, w) = held_karp_cycle(&t);
                let (_, bw) = brute_force_cycle(&t);
                assert_eq!(w, bw, "n={n} salt={salt}");
                assert!(is_permutation(n, &order));
                assert_eq!(cycle_weight(&t, &order), w);
            }
        }
    }

    #[test]
    fn trivial_sizes() {
        let t1 = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(held_karp_path(&t1), (vec![0], 0));
        assert_eq!(held_karp_cycle(&t1), (vec![0], 0));
        let t2 = TspInstance::from_matrix(2, vec![0, 9, 9, 0]);
        assert_eq!(held_karp_path(&t2).1, 9);
        assert_eq!(held_karp_cycle(&t2).1, 18);
    }

    #[test]
    fn path_equals_cycle_on_dummy_extension() {
        for salt in 0..4 {
            let t = pseudo_random_instance(7, salt);
            let (_, pw) = held_karp_path(&t);
            let ext = t.with_dummy_city();
            let (_, cw) = held_karp_cycle(&ext);
            assert_eq!(pw, cw, "dummy-city equivalence broken (salt={salt})");
        }
    }
}
