//! Branch-and-bound exact Path TSP.
//!
//! A second exact engine besides Held–Karp: depth-first extension of a
//! partial path with an admissible lower bound
//! `partial weight + MST(remaining ∪ {tip})`. Exponential worst case but
//! no `2^n` memory, and dramatically faster than Held–Karp on structured
//! instances (e.g. the two-valued weight matrices the Theorem 2 reduction
//! produces for diameter-2 graphs); also handles `n > 24` when the
//! instance is benign. Used in tests as a third independent exact oracle.

use crate::tour::path_weight;
use crate::{TspInstance, Weight};

/// Exact minimum-weight Hamiltonian path (free endpoints) by DFS
/// branch-and-bound with MST lower bounds.
///
/// `node_budget` caps the number of search nodes (returns `None` when
/// exceeded, so callers can fall back to Held–Karp).
pub fn branch_bound_path(inst: &TspInstance, node_budget: u64) -> Option<(Vec<u32>, Weight)> {
    let n = inst.n();
    assert!(n >= 1);
    if n == 1 {
        return Some((vec![0], 0));
    }
    // Initial incumbent: nearest-neighbor path from every start, improved
    // by the cheapest construction available here (NN only — callers who
    // want tighter incumbents can pre-seed via local search).
    let mut best_order: Vec<u32> = (0..n as u32).collect();
    let mut best_w = path_weight(inst, &best_order);
    for s in 0..n {
        let order = nn_path(inst, s);
        let w = path_weight(inst, &order);
        if w < best_w {
            best_w = w;
            best_order = order;
        }
    }
    let mut nodes = 0u64;
    let mut path = Vec::with_capacity(n);
    let mut used = vec![false; n];
    // Branch on the start vertex (symmetric pairs pruned by index order:
    // a path and its reverse are equal, so force start < end).
    for s in 0..n {
        path.push(s as u32);
        used[s] = true;
        if !dfs(
            inst,
            &mut path,
            &mut used,
            0,
            &mut best_w,
            &mut best_order,
            &mut nodes,
            node_budget,
        ) {
            return None; // budget exhausted
        }
        used[s] = false;
        path.pop();
    }
    Some((best_order, best_w))
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    inst: &TspInstance,
    path: &mut Vec<u32>,
    used: &mut Vec<bool>,
    acc: Weight,
    best_w: &mut Weight,
    best_order: &mut Vec<u32>,
    nodes: &mut u64,
    budget: u64,
) -> bool {
    *nodes += 1;
    if *nodes > budget {
        return false;
    }
    let n = inst.n();
    if path.len() == n {
        // Symmetry break: canonical orientation only.
        if path[0] <= path[n - 1] && acc < *best_w {
            *best_w = acc;
            *best_order = path.clone();
        }
        return true;
    }
    let tip = *path.last().unwrap() as usize;
    // Admissible bound: MST over {tip} ∪ remaining.
    let bound = acc + mst_over_remaining(inst, used, tip);
    if bound >= *best_w {
        return true; // prune
    }
    // Order children by edge weight (cheapest-first finds incumbents early).
    let mut children: Vec<(Weight, usize)> = (0..n)
        .filter(|&v| !used[v])
        .map(|v| (inst.weight(tip, v), v))
        .collect();
    children.sort_unstable();
    for (w, v) in children {
        path.push(v as u32);
        used[v] = true;
        let ok = dfs(inst, path, used, acc + w, best_w, best_order, nodes, budget);
        used[v] = false;
        path.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// Prim MST over the tip vertex plus all unused vertices — an admissible
/// completion bound (any Hamiltonian completion spans exactly that set).
fn mst_over_remaining(inst: &TspInstance, used: &[bool], tip: usize) -> Weight {
    let n = inst.n();
    let mut in_tree = vec![false; n];
    let mut key = vec![Weight::MAX; n];
    let members: Vec<usize> = std::iter::once(tip)
        .chain((0..n).filter(|&v| !used[v]))
        .collect();
    if members.len() <= 1 {
        return 0;
    }
    key[members[0]] = 0;
    let mut total = 0;
    for _ in 0..members.len() {
        let mut pick = usize::MAX;
        let mut pick_w = Weight::MAX;
        for &v in &members {
            if !in_tree[v] && key[v] < pick_w {
                pick_w = key[v];
                pick = v;
            }
        }
        in_tree[pick] = true;
        total += pick_w;
        for &v in &members {
            if !in_tree[v] {
                let w = inst.weight(pick, v);
                if w < key[v] {
                    key[v] = w;
                }
            }
        }
    }
    total
}

fn nn_path(inst: &TspInstance, start: usize) -> Vec<u32> {
    crate::construct::nearest_neighbor(inst, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::held_karp_path;
    use crate::tour::is_permutation;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(31)) % 90 + 1
        })
    }

    #[test]
    fn matches_held_karp() {
        for n in [4usize, 6, 8, 10, 12] {
            for salt in 0..3 {
                let t = random_instance(n, salt);
                let (order, w) = branch_bound_path(&t, u64::MAX).unwrap();
                let (_, hk) = held_karp_path(&t);
                assert_eq!(w, hk, "n={n} salt={salt}");
                assert!(is_permutation(n, &order));
                assert_eq!(path_weight(&t, &order), w);
            }
        }
    }

    #[test]
    fn two_valued_weights_are_fast() {
        // The Theorem 2 shape for diameter-2 graphs: weights ∈ {1, 2},
        // with a guaranteed weight-1 Hamiltonian path (the identity order).
        let t = TspInstance::from_fn(26, |u, v| if u.abs_diff(v) == 1 { 1 } else { 2 });
        // Held–Karp would refuse (n > 24); B&B solves it in a tiny budget.
        let (order, w) = branch_bound_path(&t, 3_000_000).expect("budget large enough");
        assert!(is_permutation(26, &order));
        assert_eq!(w, 25); // a weight-1 Hamiltonian path exists here
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let t = random_instance(12, 9);
        assert!(branch_bound_path(&t, 5).is_none());
    }

    #[test]
    fn trivial_sizes() {
        let t = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(branch_bound_path(&t, 10).unwrap(), (vec![0], 0));
        let t2 = TspInstance::from_matrix(2, vec![0, 7, 7, 0]);
        assert_eq!(branch_bound_path(&t2, 100).unwrap().1, 7);
    }
}
