//! Branch-and-bound exact Path TSP.
//!
//! A second exact engine besides Held–Karp: depth-first extension of a
//! partial path with an admissible lower bound
//! `partial weight + MST(remaining ∪ {tip})`. Exponential worst case but
//! no `2^n` memory, and dramatically faster than Held–Karp on structured
//! instances (e.g. the two-valued weight matrices the Theorem 2 reduction
//! produces for diameter-2 graphs); also handles `n > 24` when the
//! instance is benign. Used in tests as a third independent exact oracle.

use crate::tour::path_weight;
use crate::{TspInstance, Weight};
use dclab_par::Deadline;
use std::sync::atomic::{AtomicU64, Ordering};

/// How an anytime branch-and-bound run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BbStatus {
    /// The search tree was exhausted: the incumbent is a proven optimum
    /// (relative to any shared incumbent bound — see
    /// [`branch_bound_path_anytime`]).
    Proved,
    /// The node budget ran out first.
    BudgetExhausted,
    /// The wall-clock deadline (or its cancel token) fired first.
    Cancelled,
}

/// Result of an anytime branch-and-bound run: always a full valid path —
/// the best incumbent found — plus how the search ended.
#[derive(Clone, Debug)]
pub struct BbResult {
    /// Best incumbent path (a full permutation of the cities).
    pub order: Vec<u32>,
    /// Weight of `order`.
    pub weight: Weight,
    /// How the search ended (proved, exhausted, cancelled, …).
    pub status: BbStatus,
}

/// Exact minimum-weight Hamiltonian path (free endpoints) by DFS
/// branch-and-bound with MST lower bounds.
///
/// `node_budget` caps the number of search nodes (returns `None` when
/// exceeded, so callers can fall back to Held–Karp).
pub fn branch_bound_path(inst: &TspInstance, node_budget: u64) -> Option<(Vec<u32>, Weight)> {
    let r = branch_bound_path_anytime(inst, node_budget, &Deadline::none(), None, None);
    match r.status {
        BbStatus::Proved => Some((r.order, r.weight)),
        // With Deadline::none() only the budget can stop the search; the
        // legacy contract reports that as None.
        BbStatus::BudgetExhausted | BbStatus::Cancelled => None,
    }
}

/// Anytime variant: always returns the best incumbent found, never aborts
/// empty-handed. The `deadline` is checked once per search node (a node
/// already pays for an MST bound, so the clock read is noise) and once per
/// nearest-neighbor construction start.
///
/// `shared_bound`, when present, is a cross-worker incumbent *value* (a
/// racing portfolio publishes each member's best span there): the search
/// additionally prunes any branch whose lower bound cannot beat it. The
/// returned incumbent is still this run's own best path; on
/// [`BbStatus::Proved`] the exhausted search certifies that no path is
/// strictly cheaper than `min(returned weight, shared bound)` — since the
/// shared bound only ever holds weights achieved elsewhere, the racing
/// harvest's minimum is then a proven optimum.
///
/// `root_bound`, when present, must be a *proven* lower bound on the
/// optimal path weight (e.g. a Held–Karp ascent certificate). The run then
/// stops with [`BbStatus::Proved`] as soon as
/// `min(own incumbent, shared bound) ≤ root_bound` — the incumbent (or the
/// portfolio minimum) has met a valid lower bound, so it is optimal and no
/// search is needed. On bound-tight instances this turns the construction
/// sweep itself into a proof: the first nearest-neighbor start that
/// matches the root bound ends the run in `O(n²)` total.
pub fn branch_bound_path_anytime(
    inst: &TspInstance,
    node_budget: u64,
    deadline: &Deadline,
    shared_bound: Option<&AtomicU64>,
    root_bound: Option<Weight>,
) -> BbResult {
    let n = inst.n();
    assert!(n >= 1);
    if n == 1 {
        return BbResult {
            order: vec![0],
            weight: 0,
            status: BbStatus::Proved,
        };
    }
    // `min(own best, shared) ≤ root` — the incumbent pool met a proven
    // lower bound, nothing cheaper can exist.
    let proved_by_root = |w: Weight| -> bool {
        match root_bound {
            Some(root) => {
                let pool = match shared_bound {
                    Some(s) => w.min(s.load(Ordering::Relaxed)),
                    None => w,
                };
                pool <= root
            }
            None => false,
        }
    };
    // Initial incumbent: nearest-neighbor path from every start, improved
    // by the cheapest construction available here (NN only — callers who
    // want tighter incumbents can pre-seed via local search). Deadline
    // checked per start so a 1 ms budget at n = 512 cannot hide in the
    // O(n²)-per-start construction sweep.
    let mut best_order: Vec<u32> = (0..n as u32).collect();
    let mut best_w = path_weight(inst, &best_order);
    let mut constructed_all = true;
    for s in 0..n {
        if proved_by_root(best_w) {
            if let Some(shared) = shared_bound {
                shared.fetch_min(best_w, Ordering::Relaxed);
            }
            return BbResult {
                order: best_order,
                weight: best_w,
                status: BbStatus::Proved,
            };
        }
        if deadline.expired() {
            constructed_all = false;
            break;
        }
        let order = nn_path(inst, s);
        let w = path_weight(inst, &order);
        if w < best_w {
            best_w = w;
            best_order = order;
        }
    }
    if let Some(shared) = shared_bound {
        shared.fetch_min(best_w, Ordering::Relaxed);
    }
    if proved_by_root(best_w) {
        return BbResult {
            order: best_order,
            weight: best_w,
            status: BbStatus::Proved,
        };
    }
    if !constructed_all {
        return BbResult {
            order: best_order,
            weight: best_w,
            status: BbStatus::Cancelled,
        };
    }
    // One handle per search; the disabled mode reduces every per-node
    // checkpoint to a dead branch on a hoisted bool (no clock reads).
    let trace = dclab_trace::current();
    let mut span = trace.span("bb");
    let mut search = Search {
        inst,
        best_w,
        best_order,
        nodes: 0,
        budget: node_budget,
        deadline,
        shared_bound,
        root_bound,
        traced: trace.is_enabled(),
        trace: &trace,
    };
    let mut path = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut stopped = None;
    // Branch on the start vertex (symmetric pairs pruned by index order:
    // a path and its reverse are equal, so force start < end).
    for s in 0..n {
        path.push(s as u32);
        used[s] = true;
        let outcome = search.dfs(&mut path, &mut used, 0);
        used[s] = false;
        path.pop();
        if let Err(stop) = outcome {
            stopped = Some(stop);
            break;
        }
    }
    let status = stopped.unwrap_or(BbStatus::Proved);
    if span.is_enabled() {
        span.set_detail(format!("n={n} nodes={} status={status:?}", search.nodes));
    }
    BbResult {
        order: search.best_order,
        weight: search.best_w,
        status,
    }
}

/// Node interval between flight-recorder checkpoints (power of two so the
/// cadence test is a mask). ~65k nodes of MST-bounded DFS is a few
/// milliseconds — fine-grained enough to see where a budget went.
const BB_CHECKPOINT_NODES: u64 = 1 << 16;

/// DFS state bundle (keeps the recursion signature tractable).
struct Search<'a> {
    inst: &'a TspInstance,
    best_w: Weight,
    best_order: Vec<u32>,
    nodes: u64,
    budget: u64,
    deadline: &'a Deadline,
    shared_bound: Option<&'a AtomicU64>,
    root_bound: Option<Weight>,
    /// Hoisted `trace.is_enabled()` so the per-node checkpoint test is a
    /// single predictable branch when tracing is off.
    traced: bool,
    trace: &'a dclab_trace::Trace,
}

impl Search<'_> {
    /// `Err` carries why the search stopped early; the incumbent stays on
    /// `self` either way.
    fn dfs(
        &mut self,
        path: &mut Vec<u32>,
        used: &mut Vec<bool>,
        acc: Weight,
    ) -> Result<(), BbStatus> {
        self.nodes += 1;
        if self.nodes > self.budget {
            return Err(BbStatus::BudgetExhausted);
        }
        if self.deadline.expired() {
            return Err(BbStatus::Cancelled);
        }
        if self.traced && self.nodes.is_multiple_of(BB_CHECKPOINT_NODES) {
            let (nodes, best_w) = (self.nodes, self.best_w);
            self.trace
                .instant("bb_checkpoint", || format!("nodes={nodes} best={best_w}"));
        }
        let inst = self.inst;
        let n = inst.n();
        if path.len() == n {
            // Symmetry break: canonical orientation only.
            if path[0] <= path[n - 1] && acc < self.best_w {
                self.best_w = acc;
                self.best_order = path.clone();
                if let Some(shared) = self.shared_bound {
                    shared.fetch_min(acc, Ordering::Relaxed);
                }
                if self.root_bound.is_some_and(|root| acc <= root) {
                    // The new incumbent met a proven lower bound: optimal.
                    return Err(BbStatus::Proved);
                }
            }
            return Ok(());
        }
        let tip = *path.last().unwrap() as usize;
        // Admissible bound: MST over {tip} ∪ remaining. The prune threshold
        // also consults the shared cross-worker incumbent — both thresholds
        // only ever shrink, so every pruned branch provably holds nothing
        // cheaper than the final min(best_w, shared).
        let prune_at = match self.shared_bound {
            Some(shared) => self.best_w.min(shared.load(Ordering::Relaxed)),
            None => self.best_w,
        };
        if self.root_bound.is_some_and(|root| prune_at <= root) {
            // Some member of the incumbent pool (this run or a racing
            // sibling publishing into `shared_bound`) already met a proven
            // lower bound — the remaining search cannot improve on it.
            return Err(BbStatus::Proved);
        }
        let bound = acc + mst_over_remaining(inst, used, tip);
        if bound >= prune_at {
            return Ok(()); // prune
        }
        // Order children by edge weight (cheapest-first finds incumbents early).
        let mut children: Vec<(Weight, usize)> = (0..n)
            .filter(|&v| !used[v])
            .map(|v| (inst.weight(tip, v), v))
            .collect();
        children.sort_unstable();
        for (w, v) in children {
            path.push(v as u32);
            used[v] = true;
            let outcome = self.dfs(path, used, acc + w);
            used[v] = false;
            path.pop();
            outcome?;
        }
        Ok(())
    }
}

/// Prim MST over the tip vertex plus all unused vertices — an admissible
/// completion bound (any Hamiltonian completion spans exactly that set).
fn mst_over_remaining(inst: &TspInstance, used: &[bool], tip: usize) -> Weight {
    let n = inst.n();
    let mut in_tree = vec![false; n];
    let mut key = vec![Weight::MAX; n];
    let members: Vec<usize> = std::iter::once(tip)
        .chain((0..n).filter(|&v| !used[v]))
        .collect();
    if members.len() <= 1 {
        return 0;
    }
    key[members[0]] = 0;
    let mut total = 0;
    for _ in 0..members.len() {
        let mut pick = usize::MAX;
        let mut pick_w = Weight::MAX;
        for &v in &members {
            if !in_tree[v] && key[v] < pick_w {
                pick_w = key[v];
                pick = v;
            }
        }
        in_tree[pick] = true;
        total += pick_w;
        for &v in &members {
            if !in_tree[v] {
                let w = inst.weight(pick, v);
                if w < key[v] {
                    key[v] = w;
                }
            }
        }
    }
    total
}

fn nn_path(inst: &TspInstance, start: usize) -> Vec<u32> {
    crate::construct::nearest_neighbor(inst, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::held_karp_path;
    use crate::tour::is_permutation;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(31)) % 90 + 1
        })
    }

    #[test]
    fn matches_held_karp() {
        for n in [4usize, 6, 8, 10, 12] {
            for salt in 0..3 {
                let t = random_instance(n, salt);
                let (order, w) = branch_bound_path(&t, u64::MAX).unwrap();
                let (_, hk) = held_karp_path(&t);
                assert_eq!(w, hk, "n={n} salt={salt}");
                assert!(is_permutation(n, &order));
                assert_eq!(path_weight(&t, &order), w);
            }
        }
    }

    #[test]
    fn two_valued_weights_are_fast() {
        // The Theorem 2 shape for diameter-2 graphs: weights ∈ {1, 2},
        // with a guaranteed weight-1 Hamiltonian path (the identity order).
        let t = TspInstance::from_fn(26, |u, v| if u.abs_diff(v) == 1 { 1 } else { 2 });
        // Held–Karp would refuse (n > 24); B&B solves it in a tiny budget.
        let (order, w) = branch_bound_path(&t, 3_000_000).expect("budget large enough");
        assert!(is_permutation(26, &order));
        assert_eq!(w, 25); // a weight-1 Hamiltonian path exists here
    }

    #[test]
    fn budget_exhaustion_reports_none() {
        let t = random_instance(12, 9);
        assert!(branch_bound_path(&t, 5).is_none());
    }

    #[test]
    fn anytime_budget_exhaustion_keeps_a_full_incumbent() {
        let t = random_instance(12, 9);
        let r = branch_bound_path_anytime(&t, 5, &Deadline::none(), None, None);
        assert_eq!(r.status, BbStatus::BudgetExhausted);
        assert!(is_permutation(12, &r.order));
        assert_eq!(path_weight(&t, &r.order), r.weight);
        // The incumbent is at least as good as the best NN construction.
        let nn_best = (0..12)
            .map(|s| path_weight(&t, &nn_path(&t, s)))
            .min()
            .unwrap();
        assert!(r.weight <= nn_best);
    }

    #[test]
    fn anytime_cancellation_keeps_a_full_incumbent() {
        use dclab_par::CancelToken;
        let t = random_instance(14, 3);
        let token = CancelToken::new();
        token.cancel(); // expired before the search starts
        let deadline = Deadline::none().with_token(token);
        let r = branch_bound_path_anytime(&t, u64::MAX, &deadline, None, None);
        assert_eq!(r.status, BbStatus::Cancelled);
        assert!(is_permutation(14, &r.order));
        assert_eq!(path_weight(&t, &r.order), r.weight);
    }

    #[test]
    fn shared_bound_prunes_without_losing_the_optimum() {
        use std::sync::atomic::AtomicU64;
        for salt in 0..4 {
            let t = random_instance(10, salt);
            let (_, opt) = held_karp_path(&t);
            // A shared bound strictly above the optimum must not hide it:
            // the search still proves and returns the true optimum.
            let shared = AtomicU64::new(opt + 1);
            let r = branch_bound_path_anytime(&t, u64::MAX, &Deadline::none(), Some(&shared), None);
            assert_eq!(r.status, BbStatus::Proved);
            assert_eq!(r.weight, opt, "salt {salt}");
            // A shared bound at the optimum may prune the optimal branch,
            // but Proved then certifies "nothing cheaper than the shared
            // value exists" — the incumbent can never beat it.
            let shared = AtomicU64::new(opt);
            let r = branch_bound_path_anytime(&t, u64::MAX, &Deadline::none(), Some(&shared), None);
            assert_eq!(r.status, BbStatus::Proved);
            assert!(r.weight >= opt);
        }
    }

    #[test]
    fn trivial_sizes() {
        let t = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(branch_bound_path(&t, 10).unwrap(), (vec![0], 0));
        let t2 = TspInstance::from_matrix(2, vec![0, 7, 7, 0]);
        assert_eq!(branch_bound_path(&t2, 100).unwrap().1, 7);
    }
}
