//! Exact TSP solvers: brute force (reference oracle) and Held–Karp.

pub mod branch_bound;
pub mod brute;
pub mod held_karp;

pub use branch_bound::{branch_bound_path, branch_bound_path_anytime, BbResult, BbStatus};
pub use brute::{brute_force_cycle, brute_force_path};
pub use held_karp::{held_karp_cycle, held_karp_path};
