//! Brute-force enumeration — the reference oracle for every other solver.
//!
//! Heap's algorithm over `(n-1)!` permutations (first city pinned for the
//! cycle case to quotient out rotations). Intended for `n ≤ 11`.

use crate::tour::{cycle_weight, path_weight};
use crate::{TspInstance, Weight};

/// Exact minimum-weight Hamiltonian cycle by full enumeration.
///
/// # Panics
/// If `n > 12` (factorial blowup) or `n == 0`.
pub fn brute_force_cycle(inst: &TspInstance) -> (Vec<u32>, Weight) {
    let n = inst.n();
    assert!((1..=12).contains(&n), "brute force limited to 1 ≤ n ≤ 12");
    if n <= 2 {
        let order: Vec<u32> = (0..n as u32).collect();
        let w = cycle_weight(inst, &order);
        return (order, w);
    }
    // Pin city 0 first; permute the rest.
    let mut rest: Vec<u32> = (1..n as u32).collect();
    let mut best: Option<(Vec<u32>, Weight)> = None;
    permute(&mut rest, 0, &mut |perm| {
        let mut order = Vec::with_capacity(n);
        order.push(0);
        order.extend_from_slice(perm);
        let w = cycle_weight(inst, &order);
        if best.as_ref().is_none_or(|(_, bw)| w < *bw) {
            best = Some((order, w));
        }
    });
    best.unwrap()
}

/// Exact minimum-weight Hamiltonian *path* (both endpoints free) by full
/// enumeration.
///
/// # Panics
/// If `n > 11` or `n == 0`.
pub fn brute_force_path(inst: &TspInstance) -> (Vec<u32>, Weight) {
    let n = inst.n();
    assert!((1..=11).contains(&n), "brute force limited to 1 ≤ n ≤ 11");
    let mut cities: Vec<u32> = (0..n as u32).collect();
    let mut best: Option<(Vec<u32>, Weight)> = None;
    permute(&mut cities, 0, &mut |perm| {
        // A path and its reversal have equal weight; skip half the work.
        if n >= 2 && perm[0] > perm[n - 1] {
            return;
        }
        let w = path_weight(inst, perm);
        if best.as_ref().is_none_or(|(_, bw)| w < *bw) {
            best = Some((perm.to_vec(), w));
        }
    });
    best.unwrap()
}

fn permute(xs: &mut [u32], k: usize, visit: &mut impl FnMut(&[u32])) {
    if k == xs.len() {
        visit(xs);
        return;
    }
    for i in k..xs.len() {
        xs.swap(k, i);
        permute(xs, k + 1, visit);
        xs.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tour::is_permutation;

    fn line(coords: &[i64]) -> TspInstance {
        TspInstance::from_fn(coords.len(), |u, v| coords[u].abs_diff(coords[v]))
    }

    #[test]
    fn path_on_line_is_sorted_order() {
        let t = line(&[0, 10, 3, 7, 1]);
        let (order, w) = brute_force_path(&t);
        assert_eq!(w, 10); // sweep left-to-right
        assert!(is_permutation(5, &order));
    }

    #[test]
    fn cycle_on_line_doubles_span() {
        let t = line(&[0, 10, 3, 7, 1]);
        let (_, w) = brute_force_cycle(&t);
        assert_eq!(w, 20);
    }

    #[test]
    fn tiny_instances() {
        let t = line(&[0, 5]);
        assert_eq!(brute_force_path(&t).1, 5);
        assert_eq!(brute_force_cycle(&t).1, 10);
        let t1 = line(&[0]);
        assert_eq!(brute_force_path(&t1).1, 0);
    }

    #[test]
    fn path_never_heavier_than_cycle() {
        let t = TspInstance::from_fn(7, |u, v| {
            let (a, b) = (u.min(v), u.max(v));
            ((a * 7919 + b * 104729) % 50 + 1) as u64
        });
        let (_, pw) = brute_force_path(&t);
        let (_, cw) = brute_force_cycle(&t);
        assert!(pw <= cw);
    }
}
