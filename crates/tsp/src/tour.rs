//! Tour (cycle) and Hamiltonian-path helpers shared by all solvers.

use crate::{TspInstance, Weight};

/// Weight of the closed tour visiting `order` cyclically.
pub fn cycle_weight(inst: &TspInstance, order: &[u32]) -> Weight {
    if order.len() < 2 {
        return 0;
    }
    let mut w = 0;
    for i in 0..order.len() {
        let a = order[i] as usize;
        let b = order[(i + 1) % order.len()] as usize;
        w += inst.weight(a, b);
    }
    w
}

/// Weight of the open Hamiltonian path visiting `order` in sequence.
pub fn path_weight(inst: &TspInstance, order: &[u32]) -> Weight {
    let mut w = 0;
    for win in order.windows(2) {
        w += inst.weight(win[0] as usize, win[1] as usize);
    }
    w
}

/// `true` iff `order` is a permutation of `0..n`.
pub fn is_permutation(n: usize, order: &[u32]) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &c in order {
        let c = c as usize;
        if c >= n || seen[c] {
            return false;
        }
        seen[c] = true;
    }
    true
}

/// Convert a cycle on the dummy-extended instance (see
/// [`TspInstance::with_dummy_city`]) back to a Hamiltonian path on the
/// original `n` cities: rotate so the dummy (`city == n`) is first, drop it.
pub fn cycle_with_dummy_to_path(n: usize, cycle: &[u32]) -> Vec<u32> {
    assert_eq!(cycle.len(), n + 1, "cycle must include the dummy city");
    let dummy_pos = cycle
        .iter()
        .position(|&c| c as usize == n)
        .expect("dummy city missing from cycle");
    let mut path = Vec::with_capacity(n);
    for i in 1..=n {
        path.push(cycle[(dummy_pos + i) % (n + 1)]);
    }
    debug_assert!(is_permutation(n, &path));
    path
}

/// Prefix sums of edge weights along a path — exactly the labels assigned by
/// Claim 1 of the paper (`l(v_i) = Σ_{t<i} w_{t,t+1}`).
pub fn path_prefix_weights(inst: &TspInstance, order: &[u32]) -> Vec<Weight> {
    let mut out = Vec::with_capacity(order.len());
    let mut acc = 0;
    out.push(0);
    for win in order.windows(2) {
        acc += inst.weight(win[0] as usize, win[1] as usize);
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line4() -> TspInstance {
        let coords = [0i64, 1, 3, 6];
        TspInstance::from_fn(4, |u, v| coords[u].abs_diff(coords[v]))
    }

    #[test]
    fn weights_of_identity_order() {
        let t = line4();
        assert_eq!(path_weight(&t, &[0, 1, 2, 3]), 6);
        assert_eq!(cycle_weight(&t, &[0, 1, 2, 3]), 12);
    }

    #[test]
    fn permutation_check() {
        assert!(is_permutation(4, &[2, 0, 3, 1]));
        assert!(!is_permutation(4, &[0, 1, 2])); // wrong length
        assert!(!is_permutation(4, &[0, 1, 1, 3])); // duplicate
        assert!(!is_permutation(4, &[0, 1, 2, 4])); // out of range
    }

    #[test]
    fn dummy_cycle_roundtrip() {
        let path = cycle_with_dummy_to_path(4, &[2, 0, 4, 3, 1]);
        assert_eq!(path, vec![3, 1, 2, 0]);
        let t = line4();
        let ext = t.with_dummy_city();
        // Path weight equals the cycle weight on the extended instance.
        assert_eq!(cycle_weight(&ext, &[2, 0, 4, 3, 1]), path_weight(&t, &path));
    }

    #[test]
    fn prefix_weights_are_claim1_labels() {
        let t = line4();
        assert_eq!(path_prefix_weights(&t, &[0, 1, 2, 3]), vec![0, 1, 3, 6]);
        assert_eq!(path_prefix_weights(&t, &[3, 2, 1, 0]), vec![0, 3, 5, 6]);
    }

    #[test]
    fn degenerate_sizes() {
        let t = TspInstance::from_matrix(1, vec![0]);
        assert_eq!(cycle_weight(&t, &[0]), 0);
        assert_eq!(path_weight(&t, &[0]), 0);
        assert_eq!(path_prefix_weights(&t, &[0]), vec![0]);
    }
}
