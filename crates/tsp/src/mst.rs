//! Minimum spanning tree on dense instances (Prim, `O(n²)`).

use crate::{TspInstance, Weight};

/// Edges `(u, v)` of a minimum spanning tree of the complete graph described
/// by `inst`, plus the total weight. `n-1` edges for `n ≥ 1`.
pub fn prim_mst(inst: &TspInstance) -> (Vec<(u32, u32)>, Weight) {
    let n = inst.n();
    if n == 0 {
        return (vec![], 0);
    }
    let mut in_tree = vec![false; n];
    let mut best_w = vec![Weight::MAX; n];
    let mut best_to = vec![0u32; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut total = 0;
    in_tree[0] = true;
    for v in 1..n {
        best_w[v] = inst.weight(0, v);
        best_to[v] = 0;
    }
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_w = Weight::MAX;
        for v in 0..n {
            if !in_tree[v] && best_w[v] < pick_w {
                pick_w = best_w[v];
                pick = v;
            }
        }
        debug_assert_ne!(pick, usize::MAX);
        in_tree[pick] = true;
        edges.push((best_to[pick], pick as u32));
        total += pick_w;
        for v in 0..n {
            if !in_tree[v] {
                let w = inst.weight(pick, v);
                if w < best_w[v] {
                    best_w[v] = w;
                    best_to[v] = pick as u32;
                }
            }
        }
    }
    (edges, total)
}

/// Degree of each vertex in an edge multiset.
pub fn degrees(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut deg = vec![0u32; n];
    for &(u, v) in edges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    deg
}

/// Vertices of odd degree in an edge multiset (always an even count).
pub fn odd_degree_vertices(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    degrees(n, edges)
        .iter()
        .enumerate()
        .filter(|(_, &d)| d % 2 == 1)
        .map(|(v, _)| v as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(coords: &[i64]) -> TspInstance {
        TspInstance::from_fn(coords.len(), |u, v| coords[u].abs_diff(coords[v]))
    }

    #[test]
    fn mst_of_line_is_the_line() {
        let t = line(&[0, 1, 3, 6, 10]);
        let (edges, w) = prim_mst(&t);
        assert_eq!(edges.len(), 4);
        assert_eq!(w, 10);
    }

    #[test]
    fn mst_connects_everything() {
        let t = TspInstance::from_fn(9, |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a * 31 + b * 17) % 23 + 1
        });
        let (edges, _) = prim_mst(&t);
        assert_eq!(edges.len(), 8);
        // Union-find style connectivity check.
        let mut comp: Vec<usize> = (0..9).collect();
        fn find(c: &mut Vec<usize>, x: usize) -> usize {
            if c[x] != x {
                let r = find(c, c[x]);
                c[x] = r;
            }
            c[x]
        }
        for &(u, v) in &edges {
            let (ru, rv) = (find(&mut comp, u as usize), find(&mut comp, v as usize));
            comp[ru] = rv;
        }
        let root = find(&mut comp, 0);
        assert!((0..9).all(|v| find(&mut comp, v) == root));
    }

    #[test]
    fn odd_vertices_even_count() {
        let edges = vec![(0, 1), (1, 2), (2, 3), (1, 3)];
        let odd = odd_degree_vertices(5, &edges);
        assert_eq!(odd.len() % 2, 0);
        assert_eq!(odd, vec![0, 1]); // deg: 1,3,2,2,0
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(prim_mst(&TspInstance::from_matrix(1, vec![0])).0.len(), 0);
        assert_eq!(prim_mst(&TspInstance::from_matrix(0, vec![])).1, 0);
    }

    #[test]
    fn mst_weight_lower_bounds_path_optimum() {
        // A Hamiltonian path is a spanning tree, so MST ≤ optimal path.
        let t = line(&[0, 4, 9, 11, 20]);
        let (_, mst_w) = prim_mst(&t);
        let (_, path_w) = crate::exact::brute_force_path(&t);
        assert!(mst_w <= path_w);
    }
}
