//! The fast descent kernel: chunked, branch-free 2-opt gain scans over the
//! flat SoA [`CandidateLists`], Or-opt insertion scans over the same
//! precomputed candidate weights, and don't-look bits shared by both move
//! families. Semantically identical to [`super::scalar`] (the differential
//! oracle) — any change to move selection here must land there too.

use super::candidates::{CandidateLists, CHUNK};
use super::{apply_two_opt, LocalSearchConfig, OrOptMove, TourState, DEADLINE_SCAN_MASK};
use crate::{TspInstance, Weight};

/// "Not an improvement" lane filler: far below any real gain, far above
/// `i64` underflow when compared or copied.
const NEG: i64 = i64::MIN / 4;

/// Combined 2-opt + Or-opt descent to a local optimum. Returns the total
/// weight improvement. `dlb` is caller-owned so chained LK can seed it
/// kick-locally; bits already `true` are trusted.
pub(super) fn descent(
    inst: &TspInstance,
    state: &mut TourState,
    cands: &CandidateLists,
    cfg: &LocalSearchConfig,
    dlb: &mut [bool],
    do_two: bool,
    do_or: bool,
) -> Weight {
    let n = state.n();
    if n < 4 {
        return 0;
    }
    debug_assert_eq!(dlb.len(), n);
    debug_assert_eq!(cands.n(), n);
    let mut total: Weight = 0;
    let mut scans: u64 = 0;
    for _ in 0..cfg.max_rounds {
        let mut improved_round = false;
        for a in 0..n {
            if cfg.dont_look && dlb[a] {
                continue;
            }
            scans += 1;
            if scans & DEADLINE_SCAN_MASK == 0 && cfg.deadline.expired() {
                return total;
            }
            let mut moved = false;
            if do_two {
                if let Some((gain, dir, b, c)) = best_two_opt(inst, state, cands, a) {
                    let d = apply_two_opt(state, dir, a, b, c);
                    for x in [a, b, c, d] {
                        dlb[x] = false;
                    }
                    total += gain as Weight;
                    moved = true;
                }
            }
            if !moved && do_or {
                if let Some(mv) = first_or_opt(inst, state, cands, a) {
                    let i = state.position(a);
                    state.splice_after(i, mv.seg_len, mv.anchor, mv.reversed);
                    for x in mv.wake {
                        dlb[x] = false;
                    }
                    total += mv.gain as Weight;
                    moved = true;
                }
            }
            if moved {
                improved_round = true;
            } else {
                dlb[a] = true;
            }
        }
        if !improved_round {
            break;
        }
    }
    total
}

/// Best-gain 2-opt move out of `a` over both tour edges `(a, succ(a))` and
/// `(pred(a), a)`, scanning the sorted candidate prefix with `w_ac < w_ab`
/// in fixed chunks of [`CHUNK`]. Returns `(gain, dir, b, c)`; strict
/// best-gain comparison makes the lowest-index qualifying candidate win
/// ties, matching the scalar oracle's scan order exactly.
fn best_two_opt(
    inst: &TspInstance,
    state: &TourState,
    cands: &CandidateLists,
    a: usize,
) -> Option<(i64, usize, usize, usize)> {
    let n = state.n();
    let ia = state.position(a);
    let mut best_gain = 0i64;
    let mut best: Option<(usize, usize, usize)> = None;
    let (ids, wts) = cands.padded(a);
    for dir in 0..2 {
        let ib = if dir == 0 {
            state.succ_pos(ia)
        } else {
            state.pred_pos(ia)
        };
        let b = state.city_at(ib);
        let w_ab = inst.weight(a, b) as i64;
        let mut base = 0;
        while base < ids.len() {
            let id8 = &ids[base..base + CHUNK];
            let wt8 = &wts[base..base + CHUNK];
            let mut gain8 = [NEG; CHUNK];
            // Whole-chunk evaluation with per-lane masking instead of an
            // early exit: padding lanes hold (a, PAD_WEIGHT), so every lane
            // loads safely and the loop body is branch-free (the qualify
            // test compiles to a select, not a branch).
            for l in 0..CHUNK {
                let c = id8[l] as usize;
                let w_ac = wt8[l];
                let ic = state.position(c);
                let idx = if dir == 0 {
                    let s = ic + 1;
                    s - ((s == n) as usize) * n
                } else {
                    ic + ((ic == 0) as usize) * n - 1
                };
                let d = state.city_at(idx);
                let g = w_ab + inst.weight(c, d) as i64 - w_ac - inst.weight(b, d) as i64;
                gain8[l] = if w_ac < w_ab { g } else { NEG };
            }
            for l in 0..CHUNK {
                if gain8[l] > best_gain {
                    best_gain = gain8[l];
                    best = Some((dir, b, id8[l] as usize));
                }
            }
            // Sorted cutoff: once the last lane fails `w_ac < w_ab`, no
            // later chunk can qualify either.
            if wt8[CHUNK - 1] >= w_ab {
                break;
            }
            base += CHUNK;
        }
    }
    best.map(|(dir, b, c)| (best_gain, dir, b, c))
}

/// First-improvement Or-opt: relocate the segment of length 1–3 starting
/// at `a` (cyclically — it may wrap the array boundary) to after a
/// candidate city, forward via candidates of the segment head, reversed
/// via candidates of the segment tail. Candidate edge weights come from
/// the SoA lists; only the replaced tour edges are read from the matrix.
fn first_or_opt(
    inst: &TspInstance,
    state: &TourState,
    cands: &CandidateLists,
    a: usize,
) -> Option<OrOptMove> {
    let n = state.n();
    let max_len = 3.min(n - 3);
    let i = state.position(a);
    let ip = state.pred_pos(i);
    let p = state.city_at(ip);
    for seg_len in 1..=max_len {
        let j = (i + seg_len - 1) % n;
        let sl = state.city_at(j);
        let q = state.city_at(state.succ_pos(j));
        let remove_base =
            inst.weight(p, a) as i64 + inst.weight(sl, q) as i64 - inst.weight(p, q) as i64;
        let (head_ids, head_wts) = (cands.ids(a), cands.weights(a));
        for l in 0..head_ids.len() {
            let c = head_ids[l] as usize;
            let pc = state.position(c);
            if (pc + n - i) % n < seg_len || c == p {
                continue;
            }
            let d = state.city_at(state.succ_pos(pc));
            let gain =
                remove_base + inst.weight(c, d) as i64 - head_wts[l] - inst.weight(sl, d) as i64;
            if gain > 0 {
                return Some(OrOptMove {
                    gain,
                    seg_len,
                    anchor: pc,
                    reversed: false,
                    wake: [p, q, a, sl, c, d],
                });
            }
        }
        if seg_len > 1 {
            let (tail_ids, tail_wts) = (cands.ids(sl), cands.weights(sl));
            for l in 0..tail_ids.len() {
                let c = tail_ids[l] as usize;
                let pc = state.position(c);
                if (pc + n - i) % n < seg_len || c == p {
                    continue;
                }
                let d = state.city_at(state.succ_pos(pc));
                let gain =
                    remove_base + inst.weight(c, d) as i64 - tail_wts[l] - inst.weight(a, d) as i64;
                if gain > 0 {
                    return Some(OrOptMove {
                        gain,
                        seg_len,
                        anchor: pc,
                        reversed: true,
                        wake: [p, q, a, sl, c, d],
                    });
                }
            }
        }
    }
    None
}
