//! Flat, cache-friendly candidate neighbor lists — the SoA backbone of the
//! vectorized local-search kernels.
//!
//! [`TspInstance::neighbor_lists`] returns `Vec<Vec<u32>>`: one heap
//! allocation per city, ids only, weights re-read from the matrix on every
//! gain evaluation. [`CandidateLists`] replaces that with a CSR-style
//! layout: one flat id array and one flat weight array sharing a per-city
//! offset table, rows padded to the chunk width so the gain scan runs in
//! fixed-size, branch-free blocks with no tail loop. The candidate edge
//! weights `w(u, cand)` are precomputed at build time, so the hot 2-opt
//! scan reads one contiguous `i64` lane per city and never touches the
//! `n × n` matrix for the removed-edge side of the gain.
//!
//! Ids and weights live in two parallel arrays (split SoA rather than
//! byte-interleaved pairs) so the weight lane stays densely packed for
//! autovectorization; both are indexed by the same offsets.
//!
//! The build uses partial selection (`select_nth_unstable`) + a sort of
//! the `k` survivors — `O(n + k log k)` per city instead of the full
//! `O(n log n)` sort `neighbor_lists` pays — and produces the *same* list
//! contents and order (ascending `(weight, id)`), which is what makes the
//! scalar kernels exact differential oracles for the vectorized ones.

use crate::TspInstance;

/// Fixed chunk width of the vectorized gain scan. Rows are padded to a
/// multiple of this so the scan needs no tail handling.
pub const CHUNK: usize = 8;

/// Sentinel weight for padding lanes: large enough that a padded lane can
/// never qualify (`w_ac < w_ab` is false), small enough that the gain
/// arithmetic stays far from `i64` overflow.
pub(crate) const PAD_WEIGHT: i64 = i64::MAX / 4;

/// `k`-nearest-neighbor candidate lists in flat CSR layout, rows sorted by
/// ascending `(weight, id)` and padded to [`CHUNK`].
#[derive(Clone, Debug)]
pub struct CandidateLists {
    n: usize,
    k: usize,
    /// Padded row width (`k` rounded up to a multiple of [`CHUNK`]).
    stride: usize,
    /// `n + 1` CSR offsets into `ids`/`wts` (uniformly strided today, but
    /// kept explicit so sparse candidate sets can reuse the layout).
    offsets: Vec<u32>,
    /// Flat candidate ids; padding lanes hold the owning city itself (a
    /// valid index, so masked lanes still load safely).
    ids: Vec<u32>,
    /// `w(u, ids[i])` as `i64`, parallel to `ids`; [`PAD_WEIGHT`] on
    /// padding lanes.
    wts: Vec<i64>,
}

impl CandidateLists {
    /// Build the `k`-nearest candidate lists of `inst` by partial
    /// selection. Row contents and order match
    /// [`TspInstance::neighbor_lists`] exactly.
    pub fn build(inst: &TspInstance, k: usize) -> CandidateLists {
        let n = inst.n();
        let trace = dclab_trace::current();
        let mut span = trace.span("candidates");
        if span.is_enabled() {
            span.set_detail(format!("n={n} k={k}"));
        }
        let k = k.min(n.saturating_sub(1));
        let stride = if k == 0 { 0 } else { k.div_ceil(CHUNK) * CHUNK };
        let mut offsets = Vec::with_capacity(n + 1);
        let mut ids = Vec::with_capacity(n * stride);
        let mut wts = Vec::with_capacity(n * stride);
        let mut scratch: Vec<(i64, u32)> = Vec::with_capacity(n.saturating_sub(1));
        for u in 0..n {
            offsets.push((u * stride) as u32);
            scratch.clear();
            let row = inst.row(u);
            for (v, &w) in row.iter().enumerate() {
                if v != u {
                    debug_assert!(
                        (w as i64) < PAD_WEIGHT,
                        "weight too large for gain arithmetic"
                    );
                    scratch.push((w as i64, v as u32));
                }
            }
            if k < scratch.len() {
                // Partial selection: the k smallest (by (weight, id)) land
                // in front, unordered; only those get sorted.
                scratch.select_nth_unstable(k);
                scratch.truncate(k);
            }
            scratch.sort_unstable();
            for &(w, v) in &scratch {
                ids.push(v);
                wts.push(w);
            }
            for _ in scratch.len()..stride {
                ids.push(u as u32);
                wts.push(PAD_WEIGHT);
            }
        }
        offsets.push((n * stride) as u32);
        CandidateLists {
            n,
            k,
            stride,
            offsets,
            ids,
            wts,
        }
    }

    /// Build the `k`-nearest candidate lists from a weight *function*
    /// instead of a materialised matrix — same row contents, order
    /// (ascending `(weight, id)`) and padding as [`Self::build`] whenever
    /// `f(u, v) == inst.weight(u, v)`. This is the entry point for the
    /// oracle route, which works at sizes where no `n × n` matrix exists.
    pub fn build_from_fn(
        n: usize,
        k: usize,
        mut f: impl FnMut(usize, usize) -> u64,
    ) -> CandidateLists {
        let trace = dclab_trace::current();
        let mut span = trace.span("candidates");
        if span.is_enabled() {
            span.set_detail(format!("n={n} k={k} from_fn"));
        }
        let k = k.min(n.saturating_sub(1));
        let stride = if k == 0 { 0 } else { k.div_ceil(CHUNK) * CHUNK };
        let mut offsets = Vec::with_capacity(n + 1);
        let mut ids = Vec::with_capacity(n * stride);
        let mut wts = Vec::with_capacity(n * stride);
        let mut scratch: Vec<(i64, u32)> = Vec::with_capacity(n.saturating_sub(1));
        for u in 0..n {
            offsets.push((u * stride) as u32);
            scratch.clear();
            for v in 0..n {
                if v != u {
                    let w = f(u, v);
                    debug_assert!(
                        (w as i64) < PAD_WEIGHT,
                        "weight too large for gain arithmetic"
                    );
                    scratch.push((w as i64, v as u32));
                }
            }
            if k < scratch.len() {
                scratch.select_nth_unstable(k);
                scratch.truncate(k);
            }
            scratch.sort_unstable();
            for &(w, v) in &scratch {
                ids.push(v);
                wts.push(w);
            }
            for _ in scratch.len()..stride {
                ids.push(u as u32);
                wts.push(PAD_WEIGHT);
            }
        }
        offsets.push((n * stride) as u32);
        CandidateLists {
            n,
            k,
            stride,
            offsets,
            ids,
            wts,
        }
    }

    /// A candidate-free list (used when a deadline pre-expired and paying
    /// for the build would be wasted: every scan sees zero candidates).
    pub fn empty(n: usize) -> CandidateLists {
        CandidateLists {
            n,
            k: 0,
            stride: 0,
            offsets: vec![0; n + 1],
            ids: Vec::new(),
            wts: Vec::new(),
        }
    }

    /// Number of cities the lists were built for.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Real (unpadded) candidates per city.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The real candidate ids of `u`, ascending by `(weight, id)`.
    #[inline]
    pub fn ids(&self, u: usize) -> &[u32] {
        let s = self.offsets[u] as usize;
        &self.ids[s..s + self.k]
    }

    /// The real candidate weights of `u`, parallel to [`Self::ids`].
    #[inline]
    pub fn weights(&self, u: usize) -> &[i64] {
        let s = self.offsets[u] as usize;
        &self.wts[s..s + self.k]
    }

    /// The padded `(ids, weights)` row of `u`: length is a multiple of
    /// [`CHUNK`]; padding lanes hold `(u, PAD_WEIGHT)`.
    #[inline]
    pub(crate) fn padded(&self, u: usize) -> (&[u32], &[i64]) {
        let s = self.offsets[u] as usize;
        (&self.ids[s..s + self.stride], &self.wts[s..s + self.stride])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(97)) % 100 + 1
        })
    }

    #[test]
    fn matches_neighbor_lists_exactly() {
        for (n, k, salt) in [(1, 4, 0), (2, 1, 1), (7, 3, 2), (30, 10, 3), (30, 64, 4)] {
            let t = random_instance(n, salt);
            let nl = t.neighbor_lists(k);
            let cl = CandidateLists::build(&t, k);
            for u in 0..n {
                assert_eq!(cl.ids(u), nl[u].as_slice(), "n={n} k={k} u={u}");
                let ws: Vec<i64> = nl[u]
                    .iter()
                    .map(|&v| t.weight(u, v as usize) as i64)
                    .collect();
                assert_eq!(cl.weights(u), ws.as_slice());
            }
        }
    }

    #[test]
    fn rows_padded_to_chunk_with_sentinels() {
        let t = random_instance(20, 5);
        let cl = CandidateLists::build(&t, 10);
        for u in 0..20 {
            let (ids, wts) = cl.padded(u);
            assert_eq!(ids.len() % CHUNK, 0);
            assert_eq!(ids.len(), 16);
            for l in cl.k()..ids.len() {
                assert_eq!(ids[l] as usize, u);
                assert_eq!(wts[l], PAD_WEIGHT);
            }
            // Sorted ascending over the real prefix.
            for w in cl.weights(u).windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn build_from_fn_is_byte_identical_to_build() {
        for (n, k, salt) in [(1, 4, 0), (2, 1, 1), (7, 3, 2), (30, 10, 3), (30, 64, 4)] {
            let t = random_instance(n, salt);
            let by_matrix = CandidateLists::build(&t, k);
            let by_fn = CandidateLists::build_from_fn(n, k, |u, v| t.weight(u, v));
            for u in 0..n {
                assert_eq!(by_fn.ids(u), by_matrix.ids(u), "n={n} k={k} u={u}");
                assert_eq!(by_fn.weights(u), by_matrix.weights(u));
                assert_eq!(by_fn.padded(u), by_matrix.padded(u));
            }
        }
    }

    #[test]
    fn empty_lists_have_no_candidates() {
        let cl = CandidateLists::empty(5);
        for u in 0..5 {
            assert!(cl.ids(u).is_empty());
            assert!(cl.padded(u).0.is_empty());
        }
    }
}
