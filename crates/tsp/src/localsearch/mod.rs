//! Tour-improvement local search: 2-opt and Or-opt over cycle tours, with
//! candidate neighbor lists and don't-look bits (the standard machinery of
//! Lin–Kernighan-family implementations).
//!
//! All moves operate on *cycles*; Path TSP is handled by the dummy-city
//! equivalence (see [`crate::instance::TspInstance::with_dummy_city`]).

use crate::{TspInstance, Weight};
use dclab_par::Deadline;

/// Tunables for the local-search kernels; the ablation experiment (E8)
/// sweeps these.
#[derive(Clone, Debug)]
pub struct LocalSearchConfig {
    /// Candidate-list size (nearest neighbors per city).
    pub neighbor_k: usize,
    /// Enable don't-look bits (skip cities whose neighborhood was
    /// unchanged since their last failed scan).
    pub dont_look: bool,
    /// Enable the Or-opt pass (segment relocation, lengths 1–3).
    pub or_opt: bool,
    /// Safety cap on full improvement rounds.
    pub max_rounds: usize,
    /// Cooperative wall-clock budget, checked once per improvement round
    /// (and between chained-LK kicks upstream). The default
    /// [`Deadline::none`] never fires and costs nothing, keeping
    /// deadline-free runs bit-identical to the pre-deadline code.
    pub deadline: Deadline,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            neighbor_k: 10,
            dont_look: true,
            or_opt: true,
            max_rounds: 200,
            deadline: Deadline::none(),
        }
    }
}

/// A cycle tour with a position index, the mutable state local search works
/// on.
pub struct TourState {
    pub order: Vec<u32>,
    pos: Vec<u32>,
}

impl TourState {
    /// Wrap a tour (must be a permutation of `0..n`).
    pub fn new(order: Vec<u32>) -> Self {
        let mut pos = vec![0u32; order.len()];
        for (i, &c) in order.iter().enumerate() {
            pos[c as usize] = i as u32;
        }
        TourState { order, pos }
    }

    #[inline]
    fn n(&self) -> usize {
        self.order.len()
    }

    #[inline]
    fn succ_pos(&self, i: usize) -> usize {
        if i + 1 == self.n() {
            0
        } else {
            i + 1
        }
    }

    #[inline]
    fn pred_pos(&self, i: usize) -> usize {
        if i == 0 {
            self.n() - 1
        } else {
            i - 1
        }
    }

    #[inline]
    fn city_at(&self, i: usize) -> usize {
        self.order[i] as usize
    }

    #[inline]
    fn position(&self, c: usize) -> usize {
        self.pos[c] as usize
    }

    /// Reverse the tour segment between positions `i..=j` (inclusive,
    /// wrapping not required: caller normalizes `i < j`).
    fn reverse_segment(&mut self, mut i: usize, mut j: usize) {
        while i < j {
            self.order.swap(i, j);
            self.pos[self.order[i] as usize] = i as u32;
            self.pos[self.order[j] as usize] = j as u32;
            i += 1;
            j -= 1;
        }
    }

    fn rebuild_pos(&mut self) {
        for (i, &c) in self.order.iter().enumerate() {
            self.pos[c as usize] = i as u32;
        }
    }
}

#[inline]
fn w(inst: &TspInstance, a: usize, b: usize) -> i64 {
    inst.weight(a, b) as i64
}

/// Run 2-opt to a local optimum using candidate lists. Returns the total
/// improvement in tour weight.
pub fn two_opt(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
) -> Weight {
    let n = state.n();
    if n < 4 {
        return 0;
    }
    let mut dont_look = vec![false; n];
    let mut total_gain: i64 = 0;
    for _ in 0..cfg.max_rounds {
        if cfg.deadline.expired() {
            break; // keep the incumbent; the tour is valid at any round edge
        }
        let mut improved_any = false;
        for a in 0..n {
            if cfg.dont_look && dont_look[a] {
                continue;
            }
            let mut improved_here = false;
            // Try both tour edges incident to `a`: (a, succ) and (pred, a).
            'dirs: for dir in 0..2 {
                let ia = state.position(a);
                let ib = if dir == 0 {
                    state.succ_pos(ia)
                } else {
                    state.pred_pos(ia)
                };
                let b = state.city_at(ib);
                let w_ab = w(inst, a, b);
                for &c in &neighbors[a] {
                    let c = c as usize;
                    if c == b {
                        continue;
                    }
                    let w_ac = w(inst, a, c);
                    if w_ac >= w_ab {
                        break; // neighbor lists are sorted; no 2-opt gain further out
                    }
                    let ic = state.position(c);
                    let id = if dir == 0 {
                        state.succ_pos(ic)
                    } else {
                        state.pred_pos(ic)
                    };
                    let d = state.city_at(id);
                    if d == a {
                        continue;
                    }
                    let gain = w_ab + w(inst, c, d) - w_ac - w(inst, b, d);
                    if gain > 0 {
                        // Removing tour edges (x1,x2),(y1,y2) with
                        // x2 = succ(x1), y2 = succ(y1) and adding
                        // (x1,y1),(x2,y2) reverses the directed segment
                        // x2..y1. dir 0: (a,b),(c,d); dir 1: (b,a),(d,c).
                        let (px2, py1) = if dir == 0 {
                            (state.position(b), state.position(c))
                        } else {
                            (state.position(a), state.position(d))
                        };
                        let (lo, hi) = if px2 <= py1 {
                            (px2, py1)
                        } else {
                            // Segment wraps; reverse its linear complement
                            // (y2..x1), which yields the same cycle.
                            (py1 + 1, px2 - 1)
                        };
                        // Reverse the shorter side of the cycle.
                        if hi - lo < n - (hi - lo + 1) {
                            state.reverse_segment(lo, hi);
                        } else {
                            reverse_complement(state, lo, hi);
                        }
                        total_gain += gain;
                        improved_here = true;
                        improved_any = true;
                        dont_look[a] = false;
                        dont_look[b] = false;
                        dont_look[c] = false;
                        dont_look[d] = false;
                        break 'dirs;
                    }
                }
            }
            if !improved_here {
                dont_look[a] = true;
            }
        }
        if !improved_any {
            break;
        }
    }
    debug_assert!(total_gain >= 0);
    total_gain as Weight
}

/// Reverse the cyclic complement of `lo..=hi`, which leaves the same cycle
/// as reversing `lo..=hi` but touches fewer elements when the segment is
/// more than half the tour.
fn reverse_complement(state: &mut TourState, lo: usize, hi: usize) {
    let n = state.n();
    let len = n - (hi - lo + 1);
    let mut i = (hi + 1) % n;
    let mut j = (lo + n - 1) % n;
    for _ in 0..len / 2 {
        state.order.swap(i, j);
        i = (i + 1) % n;
        j = (j + n - 1) % n;
    }
    state.rebuild_pos();
}

/// Or-opt: relocate segments of length 1–3 next to a candidate neighbor,
/// in either orientation. First-improvement, repeated until a fixed point
/// (bounded by `cfg.max_rounds`). Returns total improvement.
pub fn or_opt(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
) -> Weight {
    let n = state.n();
    if n < 5 {
        return 0;
    }
    let mut total_gain: i64 = 0;
    for _ in 0..cfg.max_rounds {
        if cfg.deadline.expired() {
            break;
        }
        let mut improved = false;
        'scan: for start in 0..n {
            for seg_len in 1..=3usize.min(n - 3) {
                let i = start;
                let j = (start + seg_len - 1) % n;
                if j < i {
                    continue; // avoid wrap-around segments; rotation covers them
                }
                let prev = state.city_at(state.pred_pos(i));
                let next = state.city_at(state.succ_pos(j));
                let s0 = state.city_at(i);
                let s1 = state.city_at(j);
                if prev == s1 || next == s0 {
                    continue; // segment covers whole tour
                }
                let removal_gain = w(inst, prev, s0) + w(inst, s1, next) - w(inst, prev, next);
                if removal_gain <= 0 {
                    continue;
                }
                // Candidate insertion points: after neighbors of s0/s1.
                for &cand in neighbors[s0].iter().chain(neighbors[s1].iter()) {
                    let c = cand as usize;
                    let pc = state.position(c);
                    // Skip candidates inside or adjacent to the segment.
                    if (i..=j).contains(&pc) || c == prev {
                        continue;
                    }
                    let d = state.city_at(state.succ_pos(pc));
                    if (i..=j).contains(&state.position(d)) {
                        continue;
                    }
                    let base = w(inst, c, d);
                    let fwd = w(inst, c, s0) + w(inst, s1, d) - base;
                    let rev = w(inst, c, s1) + w(inst, s0, d) - base;
                    let (cost, reversed) = if fwd <= rev {
                        (fwd, false)
                    } else {
                        (rev, true)
                    };
                    if removal_gain - cost > 0 {
                        apply_or_opt(state, i, j, c, reversed);
                        total_gain += removal_gain - cost;
                        improved = true;
                        continue 'scan;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert!(total_gain >= 0);
    total_gain as Weight
}

/// Splice `order[i..=j]` (possibly reversed) right after city `c`.
fn apply_or_opt(state: &mut TourState, i: usize, j: usize, c: usize, reversed: bool) {
    let mut seg: Vec<u32> = state.order[i..=j].to_vec();
    if reversed {
        seg.reverse();
    }
    state.order.drain(i..=j);
    let pc = state
        .order
        .iter()
        .position(|&x| x as usize == c)
        .expect("insertion anchor vanished");
    let at = pc + 1;
    for (k, &s) in seg.iter().enumerate() {
        state.order.insert(at + k, s);
    }
    state.rebuild_pos();
}

/// Run 2-opt and (optionally) Or-opt alternately until neither improves.
pub fn local_opt(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut total = 0;
    loop {
        let g2 = two_opt(inst, state, neighbors, cfg);
        let go = if cfg.or_opt {
            or_opt(inst, state, neighbors, cfg)
        } else {
            0
        };
        total += g2 + go;
        if g2 + go == 0 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::nearest_neighbor;
    use crate::exact::brute_force_cycle;
    use crate::tour::cycle_weight;
    use crate::tour::is_permutation;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(97)) % 100 + 1
        })
    }

    #[test]
    fn two_opt_improves_and_preserves_permutation() {
        for salt in 0..5 {
            let t = random_instance(30, salt);
            let start = nearest_neighbor(&t, 0);
            let before = cycle_weight(&t, &start);
            let mut state = TourState::new(start);
            let nl = t.neighbor_lists(10);
            let gain = two_opt(&t, &mut state, &nl, &LocalSearchConfig::default());
            assert!(is_permutation(30, &state.order));
            assert_eq!(cycle_weight(&t, &state.order) + gain, before);
        }
    }

    #[test]
    fn or_opt_improves_and_preserves_permutation() {
        for salt in 5..10 {
            let t = random_instance(25, salt);
            let start = nearest_neighbor(&t, 0);
            let before = cycle_weight(&t, &start);
            let mut state = TourState::new(start);
            let nl = t.neighbor_lists(8);
            let gain = or_opt(&t, &mut state, &nl, &LocalSearchConfig::default());
            assert!(is_permutation(25, &state.order));
            assert_eq!(cycle_weight(&t, &state.order) + gain, before);
        }
    }

    #[test]
    fn local_opt_close_to_optimal_small() {
        for salt in 0..5 {
            let t = random_instance(9, salt);
            let (_, opt) = brute_force_cycle(&t);
            let mut state = TourState::new(nearest_neighbor(&t, 0));
            let nl = t.neighbor_lists(8);
            local_opt(&t, &mut state, &nl, &LocalSearchConfig::default());
            let w = cycle_weight(&t, &state.order);
            assert!(w >= opt);
            assert!(w <= opt * 3 / 2 + 20, "salt={salt}: {w} vs {opt}");
        }
    }

    #[test]
    fn two_opt_fixes_a_crossing() {
        // Four points on a square; the crossing tour 0-2-1-3 must be fixed.
        let pts = [(0i64, 0i64), (10, 0), (10, 10), (0, 10)];
        let t = TspInstance::from_fn(4, |u, v| {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            ((dx * dx + dy * dy) as f64).sqrt() as u64
        });
        let mut state = TourState::new(vec![0, 2, 1, 3]);
        let nl = t.neighbor_lists(3);
        two_opt(&t, &mut state, &nl, &LocalSearchConfig::default());
        let w = cycle_weight(&t, &state.order);
        assert_eq!(w, 40);
    }

    #[test]
    fn tiny_tours_untouched() {
        let t = random_instance(3, 0);
        let mut state = TourState::new(vec![0, 1, 2]);
        let nl = t.neighbor_lists(2);
        assert_eq!(
            two_opt(&t, &mut state, &nl, &LocalSearchConfig::default()),
            0
        );
        assert_eq!(
            or_opt(&t, &mut state, &nl, &LocalSearchConfig::default()),
            0
        );
        assert_eq!(state.order, vec![0, 1, 2]);
    }
}
