//! Tour-improvement local search: a combined 2-opt + Or-opt descent over
//! cycle tours, with flat SoA candidate lists ([`CandidateLists`]),
//! don't-look bits shared across the two move families, and chunked,
//! branch-free 2-opt gain scans.
//!
//! Two interchangeable kernels implement the *same* descent semantics:
//!
//! * [`local_opt`] / [`two_opt`] / [`or_opt`] — the fast path: CSR
//!   candidate lists with precomputed edge weights, gain evaluation in
//!   fixed chunks of [`candidates::CHUNK`] with a branch-free best-gain
//!   reduction ([`vector`]);
//! * [`local_opt_scalar`] / [`two_opt_scalar`] / [`or_opt_scalar`] — the
//!   scalar oracle: plain `Vec<Vec<u32>>` neighbor lists, weights re-read
//!   from the matrix, one candidate at a time ([`scalar`]).
//!
//! The two paths pick identical moves in identical order (best 2-opt gain
//! over the sorted candidate prefix with lowest-index ties, then
//! first-improvement Or-opt), so from the same start they produce the same
//! tour *array*, not just the same weight — which is what the differential
//! property suite pins, exactly like `DistanceMatrix::compute_sequential`
//! does for the bit-parallel APSP.
//!
//! All moves operate on *cycles*; Path TSP is handled by the dummy-city
//! equivalence (see [`crate::instance::TspInstance::with_dummy_city`]).

use crate::{TspInstance, Weight};
use dclab_par::Deadline;

pub mod candidates;
mod scalar;
mod vector;

pub use candidates::CandidateLists;

/// Deadline checkpoint period: the descent polls `cfg.deadline` every this
/// many city scans (a power of two so the test is one mask). One scan is
/// `O(neighbor_k)` work, so a 5 ms budget overshoots by microseconds, not
/// by a whole improvement round (the pre-PR-6 behavior overshot a 5 ms
/// deadline by ~50 ms at n = 512).
const DEADLINE_SCAN_MASK: u64 = 63;

/// Tunables for the local-search kernels; the ablation experiment (E8)
/// sweeps these.
#[derive(Clone, Debug)]
pub struct LocalSearchConfig {
    /// Candidate-list size (nearest neighbors per city).
    pub neighbor_k: usize,
    /// Enable don't-look bits (skip cities whose neighborhood was
    /// unchanged since their last failed scan). Bits are shared by the
    /// 2-opt and Or-opt move families: a city is only marked once both
    /// failed to improve it, and any successful move wakes the cities it
    /// touched.
    pub dont_look: bool,
    /// Enable the Or-opt arm (segment relocation, lengths 1–3, including
    /// segments that wrap the array boundary).
    pub or_opt: bool,
    /// Safety cap on full improvement rounds.
    pub max_rounds: usize,
    /// Cooperative wall-clock budget, checked every
    /// [`DEADLINE_SCAN_MASK`]` + 1` city scans (and between chained-LK
    /// kicks upstream). The default [`Deadline::none`] never fires and
    /// costs an amortized branch, keeping deadline-free runs bit-identical
    /// to the pre-deadline code.
    pub deadline: Deadline,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        LocalSearchConfig {
            neighbor_k: 10,
            dont_look: true,
            or_opt: true,
            max_rounds: 200,
            deadline: Deadline::none(),
        }
    }
}

/// A cycle tour with a position index, the mutable state local search works
/// on. Both move applications are `O(moved segment)`: reversals flip the
/// shorter arc of the cycle, Or-opt splices rotate the shorter of the two
/// regions between the segment and its insertion point — never a full
/// `pos` rebuild.
pub struct TourState {
    /// Current visiting order (a permutation of the cities).
    pub order: Vec<u32>,
    pos: Vec<u32>,
    /// Reusable gather buffer for [`Self::splice_after`].
    scratch: Vec<u32>,
}

impl TourState {
    /// Wrap a tour (must be a permutation of `0..n`).
    pub fn new(order: Vec<u32>) -> Self {
        let mut pos = vec![0u32; order.len()];
        for (i, &c) in order.iter().enumerate() {
            pos[c as usize] = i as u32;
        }
        TourState {
            order,
            pos,
            scratch: Vec::new(),
        }
    }

    #[inline]
    pub(crate) fn n(&self) -> usize {
        self.order.len()
    }

    #[inline]
    pub(crate) fn succ_pos(&self, i: usize) -> usize {
        if i + 1 == self.n() {
            0
        } else {
            i + 1
        }
    }

    #[inline]
    pub(crate) fn pred_pos(&self, i: usize) -> usize {
        if i == 0 {
            self.n() - 1
        } else {
            i - 1
        }
    }

    #[inline]
    pub(crate) fn city_at(&self, i: usize) -> usize {
        self.order[i] as usize
    }

    #[inline]
    pub(crate) fn position(&self, c: usize) -> usize {
        self.pos[c] as usize
    }

    /// `true` iff `pos` is the exact inverse of `order` and `order` is a
    /// permutation — the invariant every move must preserve. Test/debug
    /// helper; `O(n)`.
    pub fn check_consistent(&self) -> bool {
        let n = self.n();
        crate::tour::is_permutation(n, &self.order)
            && self.pos.len() == n
            && self
                .order
                .iter()
                .enumerate()
                .all(|(i, &c)| self.pos[c as usize] as usize == i)
    }

    /// Reverse the cycle arc whose linear span is `lo..=hi`, flipping
    /// whichever side of the cycle is shorter (the linear segment or its
    /// cyclic complement — both yield the same cycle). Positions are
    /// patched inline; cost is `O(min(|segment|, n − |segment|))`.
    pub fn reverse_arc(&mut self, lo: usize, hi: usize) {
        let n = self.n();
        debug_assert!(lo <= hi && hi < n);
        let inner = hi - lo + 1;
        if inner * 2 <= n {
            let (mut i, mut j) = (lo, hi);
            while i < j {
                self.order.swap(i, j);
                self.pos[self.order[i] as usize] = i as u32;
                self.pos[self.order[j] as usize] = j as u32;
                i += 1;
                j -= 1;
            }
        } else {
            // Reverse the cyclic complement (hi+1 .. lo-1, wrapping): same
            // cycle, fewer swaps, and no pos rebuild.
            let len = n - inner;
            let mut i = if hi + 1 == n { 0 } else { hi + 1 };
            let mut j = if lo == 0 { n - 1 } else { lo - 1 };
            for _ in 0..len / 2 {
                self.order.swap(i, j);
                self.pos[self.order[i] as usize] = i as u32;
                self.pos[self.order[j] as usize] = j as u32;
                i = if i + 1 == n { 0 } else { i + 1 };
                j = if j == 0 { n - 1 } else { j - 1 };
            }
        }
    }

    /// Splice the `seg_len` cities starting at position `i` (cyclically —
    /// the segment may wrap the array boundary) to directly after the city
    /// at position `anchor`, optionally reversed.
    ///
    /// Only the cyclic region between the segment and the anchor moves —
    /// whichever of the two directions is shorter — and `pos` is patched
    /// for exactly that region, so the cost is `O(cyclic distance)`, not
    /// `O(n)`. The anchor must lie outside the segment and must not be the
    /// segment's predecessor (a no-op the caller should skip).
    pub fn splice_after(&mut self, i: usize, seg_len: usize, anchor: usize, reversed: bool) {
        let n = self.n();
        debug_assert!(seg_len >= 1 && seg_len < n);
        debug_assert!(
            (anchor + n - i) % n >= seg_len,
            "anchor inside the spliced segment"
        );
        debug_assert_ne!((anchor + 1) % n, i, "no-op splice (anchor is pred)");
        let j = (i + seg_len - 1) % n;
        // Region A: i ..= anchor going forward (segment, mid cities,
        // anchor). Region B: anchor+1 ..= j going forward (succ(anchor),
        // mid cities, segment). Rotating either by seg_len lands the
        // segment right after the anchor; pick the shorter.
        let fwd = (anchor + n - i) % n + 1;
        let start_b = if anchor + 1 == n { 0 } else { anchor + 1 };
        let bwd = (j + n - start_b) % n + 1;
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let (start, len) = if fwd <= bwd { (i, fwd) } else { (start_b, bwd) };
        let mut idx = start;
        for _ in 0..len {
            scratch.push(self.order[idx]);
            idx = if idx + 1 == n { 0 } else { idx + 1 };
        }
        if fwd <= bwd {
            scratch.rotate_left(seg_len);
            if reversed {
                scratch[len - seg_len..].reverse();
            }
        } else {
            scratch.rotate_right(seg_len);
            if reversed {
                scratch[..seg_len].reverse();
            }
        }
        let mut idx = start;
        for &c in &scratch {
            self.order[idx] = c;
            self.pos[c as usize] = idx as u32;
            idx = if idx + 1 == n { 0 } else { idx + 1 };
        }
        self.scratch = scratch;
    }
}

/// Apply the 2-opt move that removes tour edges `(a,b)`/`(c,d)` (dir 0,
/// where `b = succ(a)`, `d = succ(c)`) or `(b,a)`/`(d,c)` (dir 1, preds)
/// and reconnects `(a,c)`/`(b,d)`, reversing the shorter arc. Returns `d`
/// so callers can wake its don't-look bit. Shared by both kernels so their
/// tour arrays stay identical, not just weight-equal.
pub(crate) fn apply_two_opt(
    state: &mut TourState,
    dir: usize,
    a: usize,
    b: usize,
    c: usize,
) -> usize {
    let ic = state.position(c);
    let id = if dir == 0 {
        state.succ_pos(ic)
    } else {
        state.pred_pos(ic)
    };
    let d = state.city_at(id);
    // Removing tour edges (x1,x2),(y1,y2) with x2 = succ(x1), y2 = succ(y1)
    // and adding (x1,y1),(x2,y2) reverses the directed segment x2..y1.
    // dir 0: (a,b),(c,d); dir 1: (b,a),(d,c).
    let (px2, py1) = if dir == 0 {
        (state.position(b), state.position(c))
    } else {
        (state.position(a), id)
    };
    let (lo, hi) = if px2 <= py1 {
        (px2, py1)
    } else {
        // Segment wraps; its linear complement (y2..x1) yields the same
        // cycle when reversed.
        (py1 + 1, px2 - 1)
    };
    state.reverse_arc(lo, hi);
    d
}

/// One improving Or-opt insertion found by a candidate scan, in the form
/// [`TourState::splice_after`] consumes.
pub(crate) struct OrOptMove {
    pub gain: i64,
    pub seg_len: usize,
    /// Position of the insertion anchor city.
    pub anchor: usize,
    pub reversed: bool,
    /// Cities whose incident tour edges change — their don't-look bits
    /// must be cleared: segment predecessor/successor, segment head/tail,
    /// anchor and anchor's old successor.
    pub wake: [usize; 6],
}

/// Run the combined 2-opt + Or-opt descent to a local optimum over `cands`
/// (the fast SoA path) with a caller-provided don't-look state: bits
/// already set are trusted, so chained LK can seed all-but-the-kick-sites
/// set and pay only for the perturbed neighborhood. Returns the total
/// improvement in tour weight.
pub fn local_opt_with_dlb(
    inst: &TspInstance,
    state: &mut TourState,
    cands: &CandidateLists,
    cfg: &LocalSearchConfig,
    dlb: &mut [bool],
) -> Weight {
    vector::descent(inst, state, cands, cfg, dlb, true, cfg.or_opt)
}

/// Run 2-opt and Or-opt (per `cfg.or_opt`) to a combined local optimum.
/// Returns the total improvement in tour weight.
pub fn local_opt(
    inst: &TspInstance,
    state: &mut TourState,
    cands: &CandidateLists,
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut dlb = vec![false; state.n()];
    vector::descent(inst, state, cands, cfg, &mut dlb, true, cfg.or_opt)
}

/// Run 2-opt alone to a local optimum (chunked vectorized scan). Returns
/// the total improvement.
pub fn two_opt(
    inst: &TspInstance,
    state: &mut TourState,
    cands: &CandidateLists,
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut dlb = vec![false; state.n()];
    vector::descent(inst, state, cands, cfg, &mut dlb, true, false)
}

/// Run Or-opt alone to a local optimum. Returns the total improvement.
pub fn or_opt(
    inst: &TspInstance,
    state: &mut TourState,
    cands: &CandidateLists,
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut dlb = vec![false; state.n()];
    vector::descent(inst, state, cands, cfg, &mut dlb, false, true)
}

/// The scalar oracle twin of [`local_opt_with_dlb`]: identical descent
/// semantics over plain sorted neighbor lists, weights read from the
/// matrix. Kept simple on purpose — it is the reference the differential
/// property suite compares the vectorized path against, and the baseline
/// the `e14_localsearch` speedup is measured over.
pub fn local_opt_scalar_with_dlb(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
    dlb: &mut [bool],
) -> Weight {
    scalar::descent(inst, state, neighbors, cfg, dlb, true, cfg.or_opt)
}

/// Scalar oracle twin of [`local_opt`].
pub fn local_opt_scalar(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut dlb = vec![false; state.n()];
    scalar::descent(inst, state, neighbors, cfg, &mut dlb, true, cfg.or_opt)
}

/// Scalar oracle twin of [`two_opt`].
pub fn two_opt_scalar(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut dlb = vec![false; state.n()];
    scalar::descent(inst, state, neighbors, cfg, &mut dlb, true, false)
}

/// Scalar oracle twin of [`or_opt`].
pub fn or_opt_scalar(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
) -> Weight {
    let mut dlb = vec![false; state.n()];
    scalar::descent(inst, state, neighbors, cfg, &mut dlb, false, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::nearest_neighbor;
    use crate::exact::brute_force_cycle;
    use crate::tour::cycle_weight;
    use crate::tour::is_permutation;

    fn random_instance(n: usize, salt: u64) -> TspInstance {
        TspInstance::from_fn(n, move |u, v| {
            let (a, b) = (u.min(v) as u64, u.max(v) as u64);
            (a.wrapping_mul(7919) ^ b.wrapping_mul(104729) ^ salt.wrapping_mul(97)) % 100 + 1
        })
    }

    #[test]
    fn two_opt_improves_and_preserves_permutation() {
        for salt in 0..5 {
            let t = random_instance(30, salt);
            let start = nearest_neighbor(&t, 0);
            let before = cycle_weight(&t, &start);
            let mut state = TourState::new(start);
            let cl = t.candidate_lists(10);
            let gain = two_opt(&t, &mut state, &cl, &LocalSearchConfig::default());
            assert!(is_permutation(30, &state.order));
            assert!(state.check_consistent());
            assert_eq!(cycle_weight(&t, &state.order) + gain, before);
        }
    }

    #[test]
    fn or_opt_improves_and_preserves_permutation() {
        for salt in 5..10 {
            let t = random_instance(25, salt);
            let start = nearest_neighbor(&t, 0);
            let before = cycle_weight(&t, &start);
            let mut state = TourState::new(start);
            let cl = t.candidate_lists(8);
            let gain = or_opt(&t, &mut state, &cl, &LocalSearchConfig::default());
            assert!(is_permutation(25, &state.order));
            assert!(state.check_consistent());
            assert_eq!(cycle_weight(&t, &state.order) + gain, before);
        }
    }

    #[test]
    fn local_opt_close_to_optimal_small() {
        for salt in 0..5 {
            let t = random_instance(9, salt);
            let (_, opt) = brute_force_cycle(&t);
            let mut state = TourState::new(nearest_neighbor(&t, 0));
            let cl = t.candidate_lists(8);
            local_opt(&t, &mut state, &cl, &LocalSearchConfig::default());
            let w = cycle_weight(&t, &state.order);
            assert!(w >= opt);
            assert!(w <= opt * 3 / 2 + 20, "salt={salt}: {w} vs {opt}");
        }
    }

    #[test]
    fn two_opt_fixes_a_crossing() {
        // Four points on a square; the crossing tour 0-2-1-3 must be fixed.
        let pts = [(0i64, 0i64), (10, 0), (10, 10), (0, 10)];
        let t = TspInstance::from_fn(4, |u, v| {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            ((dx * dx + dy * dy) as f64).sqrt() as u64
        });
        let mut state = TourState::new(vec![0, 2, 1, 3]);
        let cl = t.candidate_lists(3);
        two_opt(&t, &mut state, &cl, &LocalSearchConfig::default());
        let w = cycle_weight(&t, &state.order);
        assert_eq!(w, 40);
    }

    #[test]
    fn tiny_tours_untouched() {
        let t = random_instance(3, 0);
        let mut state = TourState::new(vec![0, 1, 2]);
        let cl = t.candidate_lists(2);
        assert_eq!(
            two_opt(&t, &mut state, &cl, &LocalSearchConfig::default()),
            0
        );
        assert_eq!(
            or_opt(&t, &mut state, &cl, &LocalSearchConfig::default()),
            0
        );
        assert_eq!(state.order, vec![0, 1, 2]);
    }

    #[test]
    fn scalar_oracle_agrees_with_vectorized_path() {
        // The by-construction contract, spot-checked here and hammered by
        // the differential property suite in tests/localsearch_props.rs:
        // same start → same final *array*.
        for salt in 0..8 {
            let t = random_instance(40, salt);
            let start = nearest_neighbor(&t, (salt as usize) % 40);
            let cfg = LocalSearchConfig::default();
            let cl = t.candidate_lists(cfg.neighbor_k);
            let nl = t.neighbor_lists(cfg.neighbor_k);
            let mut fast = TourState::new(start.clone());
            let mut oracle = TourState::new(start);
            let gf = local_opt(&t, &mut fast, &cl, &cfg);
            let go = local_opt_scalar(&t, &mut oracle, &nl, &cfg);
            assert_eq!(fast.order, oracle.order, "salt={salt}");
            assert_eq!(gf, go);
        }
    }

    #[test]
    fn or_opt_gain_is_rotation_invariant() {
        // The wrap-around fix: Or-opt segments crossing the array boundary
        // used to be skipped ("rotation covers them" — nothing rotated), so
        // the gain found depended on where position 0 happened to fall.
        // Gains over a cycle are rotation-invariant, so every rotation of
        // the same starting tour must reach the same improvement.
        let t = random_instance(14, 3);
        let start = nearest_neighbor(&t, 0);
        let cfg = LocalSearchConfig::default();
        let cl = t.candidate_lists(6);
        let mut gains = Vec::new();
        for r in 0..14 {
            let mut rotated = start.clone();
            rotated.rotate_left(r);
            let mut state = TourState::new(rotated);
            let g = or_opt(&t, &mut state, &cl, &cfg);
            assert!(state.check_consistent());
            gains.push(g);
        }
        assert!(gains[0] > 0, "fixture must have an improving Or-opt move");
        assert!(
            gains.iter().all(|&g| g == gains[0]),
            "gain varies with rotation: {gains:?}"
        );
    }

    #[test]
    fn or_opt_finds_wraparound_segment_move() {
        // A direct exhibit: cities on a line, optimal cycle is the sweep
        // 0-1-2-...-n-1. Start from the sweep with the pair (0, 1) cut out
        // and parked between 4 and 5, then rotate so that the misplaced
        // pair spans the array boundary. The only improving Or-opt move
        // relocates exactly that wrapped pair; the old kernel's `j < i`
        // skip returned gain 0 here.
        let coords = [0i64, 2, 10, 12, 14, 16, 18, 20];
        let t = TspInstance::from_fn(8, |u, v| coords[u].abs_diff(coords[v]));
        // Sweep with [0, 1] parked between 4 and 5: 2-3-4-0-1-5-6-7.
        // Rotated so the pair (0, 1) sits at positions 7 and 0.
        let tour: Vec<u32> = vec![1, 5, 6, 7, 2, 3, 4, 0];
        let mut state = TourState::new(tour);
        let before = cycle_weight(&t, &state.order);
        let cl = t.candidate_lists(7);
        let gain = or_opt(&t, &mut state, &cl, &LocalSearchConfig::default());
        assert!(gain > 0, "wrapped segment move not found");
        assert!(state.check_consistent());
        assert_eq!(cycle_weight(&t, &state.order) + gain, before);
    }

    #[test]
    fn splice_and_reverse_keep_pos_consistent() {
        // Directed exercise of the O(moved) move applications across wrap
        // boundaries and both rotation directions.
        let n = 11;
        let mut state = TourState::new((0..n as u32).collect());
        for (i, len, anchor, rev) in [
            (0usize, 3usize, 6usize, false),
            (9, 2, 4, true),   // segment wraps the boundary
            (10, 3, 5, false), // wraps with length 3
            (4, 1, 0, true),
            (7, 3, 2, true), // backward region shorter
        ] {
            state.splice_after(i, len, anchor, rev);
            assert!(state.check_consistent(), "splice({i},{len},{anchor},{rev})");
        }
        for (lo, hi) in [(0usize, 10usize), (2, 3), (1, 9), (5, 5)] {
            state.reverse_arc(lo, hi);
            assert!(state.check_consistent(), "reverse_arc({lo},{hi})");
        }
    }
}
