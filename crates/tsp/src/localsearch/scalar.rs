//! The scalar oracle descent: the pre-SoA kernel shape, kept deliberately
//! simple — plain `Vec<Vec<u32>>` neighbor lists, every weight re-read
//! from the matrix, one candidate at a time with an early break on the
//! sorted list. This is the reference implementation the differential
//! property suite compares [`super::vector`] against (same role
//! `DistanceMatrix::compute_sequential` plays for the bit-parallel APSP),
//! and the baseline the `e14_localsearch` speedup is measured over.
//!
//! Move *selection* is identical to the vectorized path by construction:
//! best-gain 2-opt over the qualifying candidate prefix (strict `>`, so
//! the lowest-index candidate wins ties), then first-improvement Or-opt,
//! same scan order, shared move application. From the same start both
//! kernels therefore produce the same tour array, not just the same
//! weight.

use super::{apply_two_opt, LocalSearchConfig, OrOptMove, TourState, DEADLINE_SCAN_MASK};
use crate::{TspInstance, Weight};

/// Scalar twin of [`super::vector::descent`] — see there for the descent
/// contract.
pub(super) fn descent(
    inst: &TspInstance,
    state: &mut TourState,
    neighbors: &[Vec<u32>],
    cfg: &LocalSearchConfig,
    dlb: &mut [bool],
    do_two: bool,
    do_or: bool,
) -> Weight {
    let n = state.n();
    if n < 4 {
        return 0;
    }
    debug_assert_eq!(dlb.len(), n);
    debug_assert_eq!(neighbors.len(), n);
    let mut total: Weight = 0;
    let mut scans: u64 = 0;
    for _ in 0..cfg.max_rounds {
        let mut improved_round = false;
        for a in 0..n {
            if cfg.dont_look && dlb[a] {
                continue;
            }
            scans += 1;
            if scans & DEADLINE_SCAN_MASK == 0 && cfg.deadline.expired() {
                return total;
            }
            let mut moved = false;
            if do_two {
                if let Some((gain, dir, b, c)) = best_two_opt(inst, state, neighbors, a) {
                    let d = apply_two_opt(state, dir, a, b, c);
                    for x in [a, b, c, d] {
                        dlb[x] = false;
                    }
                    total += gain as Weight;
                    moved = true;
                }
            }
            if !moved && do_or {
                if let Some(mv) = first_or_opt(inst, state, neighbors, a) {
                    let i = state.position(a);
                    state.splice_after(i, mv.seg_len, mv.anchor, mv.reversed);
                    for x in mv.wake {
                        dlb[x] = false;
                    }
                    total += mv.gain as Weight;
                    moved = true;
                }
            }
            if moved {
                improved_round = true;
            } else {
                dlb[a] = true;
            }
        }
        if !improved_round {
            break;
        }
    }
    total
}

/// Scalar twin of [`super::vector::best_two_opt`]: sequential scan with an
/// early break at the first candidate failing `w_ac < w_ab`.
fn best_two_opt(
    inst: &TspInstance,
    state: &TourState,
    neighbors: &[Vec<u32>],
    a: usize,
) -> Option<(i64, usize, usize, usize)> {
    let ia = state.position(a);
    let mut best_gain = 0i64;
    let mut best: Option<(usize, usize, usize)> = None;
    for dir in 0..2 {
        let ib = if dir == 0 {
            state.succ_pos(ia)
        } else {
            state.pred_pos(ia)
        };
        let b = state.city_at(ib);
        let w_ab = inst.weight(a, b) as i64;
        for &cand in &neighbors[a] {
            let c = cand as usize;
            let w_ac = inst.weight(a, c) as i64;
            if w_ac >= w_ab {
                break;
            }
            let ic = state.position(c);
            let idx = if dir == 0 {
                state.succ_pos(ic)
            } else {
                state.pred_pos(ic)
            };
            let d = state.city_at(idx);
            let g = w_ab + inst.weight(c, d) as i64 - w_ac - inst.weight(b, d) as i64;
            if g > best_gain {
                best_gain = g;
                best = Some((dir, b, c));
            }
        }
    }
    best.map(|(dir, b, c)| (best_gain, dir, b, c))
}

/// Scalar twin of [`super::vector::first_or_opt`], weights read from the
/// matrix.
fn first_or_opt(
    inst: &TspInstance,
    state: &TourState,
    neighbors: &[Vec<u32>],
    a: usize,
) -> Option<OrOptMove> {
    let n = state.n();
    let max_len = 3.min(n - 3);
    let i = state.position(a);
    let ip = state.pred_pos(i);
    let p = state.city_at(ip);
    for seg_len in 1..=max_len {
        let j = (i + seg_len - 1) % n;
        let sl = state.city_at(j);
        let q = state.city_at(state.succ_pos(j));
        let remove_base =
            inst.weight(p, a) as i64 + inst.weight(sl, q) as i64 - inst.weight(p, q) as i64;
        for &cand in &neighbors[a] {
            let c = cand as usize;
            let pc = state.position(c);
            if (pc + n - i) % n < seg_len || c == p {
                continue;
            }
            let d = state.city_at(state.succ_pos(pc));
            let gain = remove_base + inst.weight(c, d) as i64
                - inst.weight(a, c) as i64
                - inst.weight(sl, d) as i64;
            if gain > 0 {
                return Some(OrOptMove {
                    gain,
                    seg_len,
                    anchor: pc,
                    reversed: false,
                    wake: [p, q, a, sl, c, d],
                });
            }
        }
        if seg_len > 1 {
            for &cand in &neighbors[sl] {
                let c = cand as usize;
                let pc = state.position(c);
                if (pc + n - i) % n < seg_len || c == p {
                    continue;
                }
                let d = state.city_at(state.succ_pos(pc));
                let gain = remove_base + inst.weight(c, d) as i64
                    - inst.weight(sl, c) as i64
                    - inst.weight(a, d) as i64;
                if gain > 0 {
                    return Some(OrOptMove {
                        gain,
                        seg_len,
                        anchor: pc,
                        reversed: true,
                        wake: [p, q, a, sl, c, d],
                    });
                }
            }
        }
    }
    None
}
