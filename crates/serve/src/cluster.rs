//! Cluster mode: consistent-hash routing of canonical instance keys
//! across serve replicas.
//!
//! `dclab serve --cluster a:7001,b:7002,...` makes every replica a router:
//! each `/solve` request's [`CacheKey::hash`](crate::cache::CacheKey) —
//! the isomorphism-invariant canonical identity from PR 2 — is looked up
//! on a shared hash ring, and the replica that owns the key either solves
//! locally or proxies to the owner. Because every replica builds the ring
//! from the same `--cluster` list, they all agree on ownership with zero
//! coordination traffic, and isomorphic relabelings of one instance land
//! on the same owner (one cache entry, one archive record, cluster-wide).
//!
//! The ring uses virtual nodes (`VNODES` points per replica, placed by
//! FNV-64 over `addr#index`) so key ranges stay balanced for small replica
//! counts and only `1/N` of keys move when a replica joins or leaves.
//! Warm-up/replication reuses the existing `dclab store export/import`
//! streaming — there is no separate replication protocol.
//!
//! Forwarding protocol (plain HTTP between replicas):
//!
//! * the proxy adds `x-dclab-forwarded: <self-addr>` — a replica seeing
//!   that header always solves locally (loop prevention, one hop max);
//! * every cluster-routed response carries `x-dclab-routed:
//!   local|forwarded|fallback` so clients and the loadgen soak can audit
//!   routing behavior;
//! * a proxy failure (owner down, timeout) falls back to a local solve —
//!   the mesh degrades to independent replicas instead of erroring, which
//!   is what keeps a soak 5xx-free through single-replica restarts.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dclab_graph::canon::Fnv64;

use crate::http::Request;

/// Loop-prevention header: present on replica-to-replica forwarded
/// requests; its value is the proxying replica's address.
pub const FORWARDED_HEADER: &str = "x-dclab-forwarded";

/// Response header naming the route taken: `local`, `forwarded`, or
/// `fallback`.
pub const ROUTED_HEADER: &str = "x-dclab-routed";

/// Virtual nodes per replica on the ring. 64 points keeps the max/min
/// ownership ratio tight (≈1.3 at N=2..8) while the ring stays a few
/// hundred entries — binary search cost is noise next to a solve.
const VNODES: usize = 64;

/// Proxy connect/read/write timeout. Generous enough for a warm hit or a
/// small solve on the owner; a slow owner trips the local fallback rather
/// than stalling the client indefinitely.
const PROXY_TIMEOUT: Duration = Duration::from_secs(10);

/// Consistent-hash ring over the replica set, plus this node's identity.
#[derive(Debug)]
pub struct Cluster {
    /// Replica addresses exactly as given on the command line (the ring
    /// hash is over these strings, so every replica must receive the same
    /// list — document order does not matter, the ring sorts by point).
    replicas: Vec<String>,
    /// `(ring_point, replica_index)` sorted by point.
    ring: Vec<(u64, usize)>,
    /// Index of this node in `replicas`.
    self_index: usize,
}

impl Cluster {
    /// Build the ring from the `--cluster` replica list. `self_addr` must
    /// appear in the list (it is how a replica knows which ranges are its
    /// own); returns `None` otherwise so the caller can fail fast with a
    /// configuration error.
    pub fn new(replicas: Vec<String>, self_addr: &str) -> Option<Cluster> {
        let self_index = replicas.iter().position(|r| r == self_addr)?;
        let mut ring = Vec::with_capacity(replicas.len() * VNODES);
        for (i, addr) in replicas.iter().enumerate() {
            for v in 0..VNODES {
                let mut h = Fnv64::new();
                h.write_bytes(addr.as_bytes());
                h.write_bytes(b"#");
                h.write_u64(v as u64);
                ring.push((h.finish(), i));
            }
        }
        ring.sort_unstable();
        Some(Cluster {
            replicas,
            ring,
            self_index,
        })
    }

    pub fn replicas(&self) -> &[String] {
        &self.replicas
    }

    pub fn self_addr(&self) -> &str {
        &self.replicas[self.self_index]
    }

    /// Which replica owns `key_hash`: first ring point at or after the
    /// hash, wrapping to the first point past the top.
    pub fn owner_index(&self, key_hash: u64) -> usize {
        let i = self.ring.partition_point(|&(p, _)| p < key_hash);
        let (_, replica) = self.ring[i % self.ring.len()];
        replica
    }

    /// `Some(owner_addr)` when another replica owns the key, `None` when
    /// this node does.
    pub fn owner_if_remote(&self, key_hash: u64) -> Option<&str> {
        let owner = self.owner_index(key_hash);
        (owner != self.self_index).then(|| self.replicas[owner].as_str())
    }
}

/// A relayed upstream response: status, the upstream's `x-dclab-cache`
/// header when present, and the body verbatim.
pub struct ProxiedResponse {
    pub status: u16,
    pub cache_status: Option<String>,
    pub body: Vec<u8>,
}

/// Forward `req` to the owning replica and relay its response. The
/// request is re-sent with its original target (query string and all) and
/// body; `connection: close` keeps the proxy protocol trivially correct
/// (replica-to-replica connections are cheap on the reactor). Any error —
/// connect, timeout, malformed upstream response — returns `Err` and the
/// caller solves locally instead.
pub fn proxy(
    owner: &str,
    req: &Request,
    rid: &str,
    self_addr: &str,
) -> std::io::Result<ProxiedResponse> {
    let addr = owner
        .parse::<std::net::SocketAddr>()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let mut stream = TcpStream::connect_timeout(&addr, PROXY_TIMEOUT)?;
    stream.set_read_timeout(Some(PROXY_TIMEOUT))?;
    stream.set_write_timeout(Some(PROXY_TIMEOUT))?;
    stream.set_nodelay(true)?;
    let head = format!(
        "{} {} HTTP/1.1\r\nhost: {}\r\ncontent-length: {}\r\nx-request-id: {}\r\n{}: {}\r\nconnection: close\r\n\r\n",
        req.method,
        req.target,
        owner,
        req.body.len(),
        rid,
        FORWARDED_HEADER,
        self_addr,
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(&req.body)?;
    stream.flush()?;
    read_proxy_response(&mut stream)
}

fn bad(msg: &'static str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Read one `connection: close` HTTP response: status line, headers,
/// `content-length` body.
fn read_proxy_response(stream: &mut impl Read) -> std::io::Result<ProxiedResponse> {
    let mut buf = Vec::with_capacity(4096);
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("upstream closed before response head"));
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.len() > 64 * 1024 {
            return Err(bad("upstream response head too large"));
        }
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length = None;
    let mut cache_status = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        if name == "content-length" {
            content_length = value.parse::<usize>().ok();
        } else if name == "x-dclab-cache" {
            cache_status = Some(value.to_string());
        }
    }
    let content_length = content_length.ok_or_else(|| bad("missing content-length"))?;
    if content_length > crate::http::MAX_BODY_BYTES {
        return Err(bad("upstream body too large"));
    }
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 8192];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(bad("upstream closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok(ProxiedResponse {
        status,
        cache_status,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node() -> (Cluster, Cluster) {
        let replicas = vec!["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()];
        let a = Cluster::new(replicas.clone(), "127.0.0.1:7001").unwrap();
        let b = Cluster::new(replicas, "127.0.0.1:7002").unwrap();
        (a, b)
    }

    #[test]
    fn replicas_agree_on_ownership() {
        let (a, b) = two_node();
        for key in (0..10_000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)) {
            assert_eq!(a.owner_index(key), b.owner_index(key), "key {key:#x}");
        }
    }

    #[test]
    fn ownership_is_roughly_balanced() {
        let (a, _) = two_node();
        let total = 20_000u64;
        let mine = (0..total)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .filter(|&k| a.owner_index(k) == 0)
            .count() as f64;
        let share = mine / total as f64;
        assert!(
            (0.3..=0.7).contains(&share),
            "replica 0 owns {share:.2} of the keyspace"
        );
    }

    #[test]
    fn remote_owner_is_never_self() {
        let (a, b) = two_node();
        for key in (0..1000u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15)) {
            if let Some(owner) = a.owner_if_remote(key) {
                assert_eq!(owner, b.self_addr());
                assert!(b.owner_if_remote(key).is_none(), "owner must serve locally");
            } else {
                assert_eq!(b.owner_if_remote(key), Some(a.self_addr()));
            }
        }
    }

    #[test]
    fn self_must_be_in_replica_list() {
        assert!(Cluster::new(vec!["a:1".into(), "b:2".into()], "c:3").is_none());
    }

    #[test]
    fn join_moves_only_a_fraction_of_keys() {
        let two = Cluster::new(
            vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
            "127.0.0.1:7001",
        )
        .unwrap();
        let three = Cluster::new(
            vec![
                "127.0.0.1:7001".into(),
                "127.0.0.1:7002".into(),
                "127.0.0.1:7003".into(),
            ],
            "127.0.0.1:7001",
        )
        .unwrap();
        let total = 20_000u64;
        let moved = (0..total)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15))
            .filter(|&k| {
                let before = two.replicas()[two.owner_index(k)].clone();
                let after = three.replicas()[three.owner_index(k)].clone();
                before != after
            })
            .count() as f64;
        let fraction = moved / total as f64;
        // Consistent hashing: adding a third replica should move about 1/3
        // of keys, nowhere near the ~100% a mod-N scheme reshuffles.
        assert!(
            fraction < 0.55,
            "adding a replica moved {fraction:.2} of keys"
        );
    }

    #[test]
    fn proxy_response_parser_handles_split_reads() {
        // A reader that returns one byte at a time exercises the head/body
        // accumulation paths.
        struct OneByte<'a>(&'a [u8], usize);
        impl Read for OneByte<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                if self.1 >= self.0.len() {
                    return Ok(0);
                }
                buf[0] = self.0[self.1];
                self.1 += 1;
                Ok(1)
            }
        }
        let raw = b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\nx-dclab-cache: hit\r\n\r\nhello";
        let resp = read_proxy_response(&mut OneByte(raw, 0)).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.cache_status.as_deref(), Some("hit"));
        assert_eq!(resp.body, b"hello");
        // Truncated upstream is an error, not a phantom success.
        let trunc = b"HTTP/1.1 200 OK\r\ncontent-length: 5\r\n\r\nhe";
        assert!(read_proxy_response(&mut OneByte(trunc, 0)).is_err());
    }
}
