//! # dclab-serve — the production solve service.
//!
//! PR 1 built the engine's single front door ([`dclab_engine::solve`]);
//! this crate keeps it open: a long-running, dependency-free HTTP/1.1
//! service over `std::net` that converts repeated solves of the same
//! small-diameter instance into O(1) cache lookups.
//!
//! The load-bearing idea is the **canonical-instance cache**
//! ([`cache::ReportCache`]): requests are keyed by the graph's
//! degree-refinement canonical form (`dclab_graph::canon`) combined with
//! the p-vector, strategy, and budget, so isomorphic relabelings of the
//! same edge list share one entry. Reports are stored in canonical vertex
//! space and translated back through each requester's own permutation —
//! a cached labeling is always valid for the exact graph the client sent.
//! Hash collisions are confirmed against the canonical edge list, so 1-WL
//! incompleteness can only cost a miss, never a wrong answer. Concurrent
//! identical requests are single-flighted: one solve runs, everyone
//! shares the result.
//!
//! Layers:
//!
//! * [`http`] — minimal HTTP/1.1 parsing/writing (bounded, keep-alive).
//! * [`cache`] — sharded LRU keyed by canonical instance identity, with
//!   single-flight deduplication.
//! * [`metrics`] — lock-free counters + log-scale latency histogram.
//! * [`server`] — routing, graceful shutdown, per-request solve tracing
//!   (every response carries `X-Request-Id`; finished traces land in a
//!   [`dclab_trace::FlightRecorder`] behind `GET /debug/traces`, feed the
//!   `dclab_phase_seconds` histograms, and slow solves get a structured
//!   log line behind `GET /debug/slowlog`).
//! * `reactor` (Linux) — the default serve core: a std-only epoll
//!   reactor driving per-connection state machines, with CPU-bound
//!   solves dispatched to a bounded [`dclab_par::WorkerPool`] and
//!   completions returned over an eventfd. Connection budget is
//!   decoupled from (and far above) the worker count; overload sheds
//!   `503 + Retry-After` before a worker is consumed.
//! * `blocking` — the pre-reactor thread-per-connection path, retained
//!   behind `--legacy-blocking` as the reactor's differential oracle and
//!   as the non-Linux fallback.
//! * `cluster` — consistent-hash routing of canonical instance identities
//!   across replicas (`--cluster`), with non-owners proxying one hop.
//! * [`persist`] — glue to the persistent solution archive
//!   (`dclab-store`): warm-boot the cache on start, read-through on LRU
//!   miss, write-behind fresh solves, seal the log at the shutdown drain.
//! * [`loadgen`] — replay harness (mixed + exact corpora, per-pass stats,
//!   multi-replica soak histograms, the CI `--self-test`).

pub mod cache;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod persist;
pub mod server;

pub(crate) mod blocking;
pub mod cluster;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;

/// Defaults shared by [`ServeConfig`] and the reactor, exposed so the CLI
/// can print them in `--help` without duplicating the numbers.
pub mod reactor_defaults {
    /// Default connection budget (`--max-conns`). Far above the worker
    /// count by design: idle keep-alive connections cost only a file
    /// descriptor and a small buffer, not a thread.
    pub const MAX_CONNS: usize = 1024;
    /// Default idle deadline in milliseconds (`--conn-idle-ms`) before a
    /// connection that is neither dispatched nor writing is reaped.
    pub const CONN_IDLE_MS: u64 = 5_000;
}

pub use cache::{CacheKey, CacheStatus, ReportCache};
pub use loadgen::{self_test, soak, Client, CorpusItem, PassStats, SoakConfig, SoakStats};
pub use metrics::{Metrics, StoreGauges};
pub use server::{start, ServeConfig, ServerHandle, SlowLog};
