//! # dclab-serve — the production solve service.
//!
//! PR 1 built the engine's single front door ([`dclab_engine::solve`]);
//! this crate keeps it open: a long-running, dependency-free HTTP/1.1
//! service over `std::net` that converts repeated solves of the same
//! small-diameter instance into O(1) cache lookups.
//!
//! The load-bearing idea is the **canonical-instance cache**
//! ([`cache::ReportCache`]): requests are keyed by the graph's
//! degree-refinement canonical form (`dclab_graph::canon`) combined with
//! the p-vector, strategy, and budget, so isomorphic relabelings of the
//! same edge list share one entry. Reports are stored in canonical vertex
//! space and translated back through each requester's own permutation —
//! a cached labeling is always valid for the exact graph the client sent.
//! Hash collisions are confirmed against the canonical edge list, so 1-WL
//! incompleteness can only cost a miss, never a wrong answer. Concurrent
//! identical requests are single-flighted: one solve runs, everyone
//! shares the result.
//!
//! Layers:
//!
//! * [`http`] — minimal HTTP/1.1 parsing/writing (bounded, keep-alive).
//! * [`cache`] — sharded LRU keyed by canonical instance identity, with
//!   single-flight deduplication.
//! * [`metrics`] — lock-free counters + log-scale latency histogram.
//! * [`server`] — accept loop over a bounded [`dclab_par::WorkerPool`],
//!   routing, graceful shutdown, per-request solve tracing (every
//!   response carries `X-Request-Id`; finished traces land in a
//!   [`dclab_trace::FlightRecorder`] behind `GET /debug/traces`, feed the
//!   `dclab_phase_seconds` histograms, and slow solves get a structured
//!   log line behind `GET /debug/slowlog`).
//! * [`persist`] — glue to the persistent solution archive
//!   (`dclab-store`): warm-boot the cache on start, read-through on LRU
//!   miss, write-behind fresh solves, seal the log at the shutdown drain.
//! * [`loadgen`] — replay harness (mixed + exact corpora, per-pass stats,
//!   the CI `--self-test`).

pub mod cache;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod persist;
pub mod server;

pub use cache::{CacheKey, CacheStatus, ReportCache};
pub use loadgen::{self_test, Client, CorpusItem, PassStats};
pub use metrics::{Metrics, StoreGauges};
pub use server::{start, ServeConfig, ServerHandle, SlowLog};
