//! The event-driven serve core: a std-only epoll reactor.
//!
//! One reactor thread owns every connection and multiplexes readiness
//! with `epoll` — the syscalls are declared `extern "C"` against the
//! platform libc that std already links (the same hand-rolled discipline
//! as `graph::bitset` and `store`'s CRC framing: no external crates).
//! Connection capacity is therefore decoupled from the worker count: the
//! budget (`--max-conns`, default 1024) is bounded by memory per
//! connection, not by threads, where the `--legacy-blocking` path pins a
//! worker per kept-alive connection.
//!
//! Per-connection state machine:
//!
//! ```text
//!            readable                    complete request
//! KeepAlive ─────────▶ Reading ──────────────┬─────────────────▶ Dispatched
//!    ▲                   ▲                   │ (inline endpoint)     │ worker
//!    │                   │                   ▼                       │ renders,
//!    │ keep-alive        └──── response ── Writing ◀────────────────┘ eventfd
//!    └──────────────────────── flushed ──────┘                        wakes
//! ```
//!
//! * **Reading / KeepAlive** — interest `EPOLLIN`; bytes land in the
//!   connection's recycled [`RecvBuffer`] and [`try_parse`] runs after
//!   every read (incremental: a byte-by-byte dribbler costs re-parses,
//!   never blocks the thread).
//! * **Dispatched** — a `/solve` or `/batch` was handed to the
//!   [`WorkerPool`]; interest drops to 0 (pipelined bytes wait in the
//!   buffer). The worker routes + renders off-thread and pushes the
//!   finished bytes into the completion queue, then writes the eventfd to
//!   wake the reactor.
//! * **Writing** — interest `EPOLLOUT` after a short write; a drained
//!   output buffer transitions to KeepAlive (and immediately re-parses
//!   any pipelined request) or closes.
//!
//! Backpressure is shed *before* a worker is consumed: a full pool queue
//! answers `503` + `Retry-After` from the reactor thread, and the
//! connection budget answers `503` at accept. Inline endpoints
//! (`/healthz`, `/metrics`, `/debug/*`, `/shutdown`) are routed on the
//! reactor thread itself, so observability stays live while every worker
//! is saturated. Stalled connections (slow-loris) are reaped by a
//! per-connection idle deadline (`--conn-idle-ms`,
//! `dclab_conns_reaped_total`).

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dclab_par::{SubmitError, WorkerPool};

use crate::http::{render_response, try_parse, ParseError, RecvBuffer, Request, MAX_HEAD_BYTES};
use crate::server::{self, ServeCtx};

/// Raw epoll/eventfd bindings against the libc std already links.
mod sys {
    use std::os::fd::RawFd;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// Kernel `struct epoll_event` ABI: packed on x86-64 (the kernel
    /// declares it `__attribute__((packed))` there so 32-bit and 64-bit
    /// layouts agree), naturally aligned on other architectures.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(
            epfd: i32,
            events: *mut EpollEvent,
            maxevents: i32,
            timeout_ms: i32,
        ) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
    }
}

/// Safe handle over one epoll instance.
struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    fn new() -> std::io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Epoll {
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn delete(&self, fd: RawFd) -> std::io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, retrying on `EINTR`. Returns the number of
    /// events filled into `events`.
    fn wait(&self, events: &mut [sys::EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        loop {
            let rc = unsafe {
                sys::epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = std::io::Error::last_os_error();
            if err.kind() != std::io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// A finished worker job: the fully rendered response bytes for one
/// dispatched request.
pub(crate) struct Completion {
    token: u64,
    bytes: Vec<u8>,
    keep_alive: bool,
}

/// Worker → reactor channel: a mutex-protected queue plus an eventfd the
/// workers write to wake the reactor out of `epoll_wait`.
pub(crate) struct Completions {
    queue: Mutex<Vec<Completion>>,
    /// Non-blocking eventfd wrapped in a `File` (std's `Read`/`Write` on
    /// `&File` work on any fd; the drop closes it).
    wake: File,
}

impl Completions {
    /// Called from worker threads: enqueue, then wake the reactor.
    pub(crate) fn push(&self, token: u64, bytes: Vec<u8>, keep_alive: bool) {
        self.queue
            .lock()
            .expect("completions poisoned")
            .push(Completion {
                token,
                bytes,
                keep_alive,
            });
        let _ = (&self.wake).write(&1u64.to_ne_bytes());
    }

    /// Called from the reactor: clear the eventfd counter and take the
    /// queued completions. (Clearing first means a concurrent push can at
    /// worst cause one spurious extra wakeup, never a lost one.)
    fn drain(&self) -> Vec<Completion> {
        let mut counter = [0u8; 8];
        let _ = (&self.wake).read(&mut counter);
        std::mem::take(&mut *self.queue.lock().expect("completions poisoned"))
    }
}

/// Per-connection state-machine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ConnState {
    /// Partial request bytes buffered; interest `EPOLLIN`.
    Reading,
    /// A request is on a worker; interest 0 until the completion lands.
    Dispatched,
    /// Response bytes pending; interest `EPOLLOUT` once a write blocks.
    Writing,
    /// Between requests, buffer empty; interest `EPOLLIN`.
    KeepAlive,
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    rb: RecvBuffer,
    out: Vec<u8>,
    out_pos: usize,
    /// Currently registered epoll interest mask.
    interest: u32,
    last_activity: Instant,
    close_after_write: bool,
    /// Peer EOF seen (half-close): serve what is buffered, then close.
    eof: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            state: ConnState::KeepAlive,
            rb: RecvBuffer::default(),
            out: Vec::new(),
            out_pos: 0,
            interest: sys::EPOLLIN,
            last_activity: Instant::now(),
            close_after_write: false,
            eof: false,
        }
    }
}

/// Reactor tuning (from the `dclab serve` flags).
pub(crate) struct ReactorConfig {
    pub workers: usize,
    pub queue_cap: usize,
    pub max_conns: usize,
    pub conn_idle_ms: u64,
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// epoll_wait tick: bounds idle-sweep latency and shutdown polling.
const TICK_MS: i32 = 100;

/// Hard cap on the graceful-drain window after shutdown is requested.
const DRAIN_DEADLINE: Duration = Duration::from_secs(10);

/// What to do with a connection after handling an event.
#[derive(PartialEq, Eq)]
enum Verdict {
    Keep,
    Close,
}

struct Reactor {
    epoll: Epoll,
    listener: TcpListener,
    ctx: Arc<ServeCtx>,
    pool: WorkerPool,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    cfg: ReactorConfig,
    draining: bool,
}

/// Run the reactor until graceful shutdown completes. Owns the listener,
/// the worker pool, and every connection; the caller's only other handle
/// on the server is `ctx`.
pub(crate) fn run(listener: TcpListener, ctx: Arc<ServeCtx>, cfg: ReactorConfig) {
    let epoll = Epoll::new().expect("epoll_create1 failed");
    let wake_fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
    assert!(wake_fd >= 0, "eventfd failed");
    let completions = Arc::new(Completions {
        queue: Mutex::new(Vec::new()),
        wake: unsafe { File::from_raw_fd(wake_fd) },
    });
    epoll
        .add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)
        .expect("epoll add listener");
    epoll
        .add(completions.wake.as_raw_fd(), sys::EPOLLIN, TOKEN_WAKE)
        .expect("epoll add eventfd");
    let pool = WorkerPool::new(cfg.workers, cfg.queue_cap);
    ctx.metrics
        .pool_workers
        .store(pool.workers() as u64, Ordering::Relaxed);
    let mut r = Reactor {
        epoll,
        listener,
        ctx,
        pool,
        completions,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        cfg,
        draining: false,
    };
    let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
    let mut last_sweep = Instant::now();
    let mut drain_started: Option<Instant> = None;
    loop {
        let n = r.epoll.wait(&mut events, TICK_MS).unwrap_or(0);
        for ev in &events[..n] {
            let token = ev.data;
            let revents = ev.events;
            match token {
                TOKEN_LISTENER => r.accept_ready(),
                TOKEN_WAKE => r.drain_completions(),
                _ => r.conn_event(token, revents),
            }
        }
        r.refresh_gauges();
        if last_sweep.elapsed() >= Duration::from_millis(50) {
            r.sweep_idle();
            last_sweep = Instant::now();
        }
        if r.ctx.shutdown_requested() {
            let started = *drain_started.get_or_insert_with(|| {
                r.begin_drain();
                Instant::now()
            });
            // Deliver any completions that raced the drain check.
            r.drain_completions();
            if r.conns.is_empty() || started.elapsed() > DRAIN_DEADLINE {
                break;
            }
        }
    }
    r.conns.clear();
    r.ctx.metrics.conns_open.store(0, Ordering::Relaxed);
    server::finish_shutdown(&r.ctx, &mut r.pool);
}

impl Reactor {
    fn refresh_gauges(&self) {
        let m = &self.ctx.metrics;
        m.pool_queue_depth
            .store(self.pool.queue_len() as u64, Ordering::Relaxed);
        m.pool_in_flight
            .store(self.pool.in_flight() as u64, Ordering::Relaxed);
        m.conns_open
            .store(self.conns.len() as u64, Ordering::Relaxed);
    }

    /// Accept every pending connection (level-triggered, so loop to
    /// `WouldBlock`). Over-budget connections get a best-effort `503` and
    /// close — the cheapest possible shed, before any bytes are read.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.ctx
                        .metrics
                        .conns_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    if self.draining {
                        continue; // dropped: we are shutting down
                    }
                    if self.conns.len() >= self.cfg.max_conns {
                        self.shed_at_budget(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .epoll
                        .add(stream.as_raw_fd(), sys::EPOLLIN, token)
                        .is_ok()
                    {
                        self.conns.insert(token, Conn::new(stream));
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    /// Connection-budget shed: `503` + `Retry-After`, written blocking
    /// with a short timeout (the socket was just accepted; the write
    /// almost always fits the send buffer whole).
    fn shed_at_budget(&self, mut stream: TcpStream) {
        self.ctx
            .metrics
            .rejected_conn_budget
            .fetch_add(1, Ordering::Relaxed);
        self.ctx.metrics.record_status(503);
        let rid = server::generate_request_id();
        let body = server::error_json("connection budget exhausted", "overload");
        let bytes = render_response(
            503,
            &[("retry-after", "1"), ("x-request-id", &rid)],
            body.as_bytes(),
            false,
        );
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = stream.write_all(&bytes);
    }

    fn drain_completions(&mut self) {
        for c in self.completions.drain() {
            // The connection may have died (error, idle reap) while its
            // solve ran; the rendered bytes are simply dropped then.
            let Some(mut conn) = self.conns.remove(&c.token) else {
                continue;
            };
            debug_assert_eq!(conn.state, ConnState::Dispatched);
            conn.out.extend_from_slice(&c.bytes);
            conn.close_after_write = !c.keep_alive;
            conn.state = ConnState::Writing;
            conn.last_activity = Instant::now();
            if self.advance_write(&mut conn, c.token) == Verdict::Keep {
                self.conns.insert(c.token, conn);
            } else {
                self.refresh_gauges();
            }
        }
    }

    fn conn_event(&mut self, token: u64, revents: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let verdict = if revents & (sys::EPOLLERR | sys::EPOLLHUP) != 0
            && conn.state != ConnState::Dispatched
        {
            Verdict::Close
        } else {
            match conn.state {
                ConnState::Reading | ConnState::KeepAlive if revents & sys::EPOLLIN != 0 => {
                    self.readable(&mut conn, token)
                }
                ConnState::Writing if revents & sys::EPOLLOUT != 0 => {
                    self.advance_write(&mut conn, token)
                }
                // Dispatched (or a stale-mask event): nothing to do now.
                _ => Verdict::Keep,
            }
        };
        if verdict == Verdict::Keep {
            self.conns.insert(token, conn);
        }
    }

    /// Pull every available byte, then run the parse/dispatch loop.
    fn readable(&mut self, conn: &mut Conn, token: u64) -> Verdict {
        loop {
            let spare = conn.rb.spare(4096);
            match conn.stream.read(spare) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rb.commit(n);
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        }
        self.advance_parse(conn, token)
    }

    /// Parse-and-serve loop: handle complete requests until the buffer
    /// runs dry, a request is dispatched to a worker, or a write blocks.
    fn advance_parse(&mut self, conn: &mut Conn, token: u64) -> Verdict {
        loop {
            if conn.state != ConnState::Reading && conn.state != ConnState::KeepAlive {
                return Verdict::Keep;
            }
            match try_parse(conn.rb.data(), MAX_HEAD_BYTES, self.ctx.max_body_bytes) {
                Ok(Some((req, consumed))) => {
                    conn.rb.consume(consumed);
                    let verdict = self.process_request(conn, token, req);
                    if verdict == Verdict::Close {
                        return Verdict::Close;
                    }
                }
                Ok(None) => {
                    if conn.eof {
                        if conn.rb.is_empty() {
                            return Verdict::Close; // clean end of keep-alive
                        }
                        // Mid-request EOF mirrors the blocking path's
                        // "truncated request" 400 (the peer may have only
                        // half-closed and still reads).
                        return self.respond_error(
                            conn,
                            token,
                            400,
                            "truncated request",
                            "bad-request",
                        );
                    }
                    conn.state = if conn.rb.is_empty() {
                        ConnState::KeepAlive
                    } else {
                        ConnState::Reading
                    };
                    return self.want(conn, token, sys::EPOLLIN);
                }
                Err(ParseError::Bad(reason)) => {
                    return self.respond_error(conn, token, 400, reason, "bad-request");
                }
                Err(ParseError::TooLarge(reason)) => {
                    let status = if reason.contains("header") { 431 } else { 413 };
                    return self.respond_error(conn, token, status, reason, "too-large");
                }
                // try_parse never returns these.
                Err(ParseError::ConnectionClosed) | Err(ParseError::Io(_)) => {
                    return Verdict::Close;
                }
            }
        }
    }

    /// One complete request: dispatch solves to the pool, answer
    /// everything else inline on the reactor thread.
    fn process_request(&mut self, conn: &mut Conn, token: u64, req: Request) -> Verdict {
        let rid = server::request_id(&req);
        if server::needs_worker(&req) {
            if self.ctx.shutdown_requested() {
                return self.respond_error(conn, token, 503, "server shutting down", "overload");
            }
            let jctx = Arc::clone(&self.ctx);
            let jcomp = Arc::clone(&self.completions);
            let job = move || {
                let (status, extra, body) = server::route(&jctx, &req, &rid);
                let keep_alive = req.keep_alive() && !jctx.shutdown_requested();
                jctx.metrics.record_status(status);
                let mut headers: Vec<(&str, &str)> =
                    extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
                headers.push(("x-request-id", &rid));
                let bytes = render_response(status, &headers, body.as_bytes(), keep_alive);
                jcomp.push(token, bytes, keep_alive);
            };
            match self.pool.try_submit(job) {
                Ok(()) => {
                    conn.state = ConnState::Dispatched;
                    conn.last_activity = Instant::now();
                    self.want(conn, token, 0)
                }
                Err(SubmitError::QueueFull(job)) => {
                    // Shed before a worker is consumed: the queued job owns
                    // the request; drop it and answer from the reactor.
                    drop(job);
                    self.ctx
                        .metrics
                        .rejected_overload
                        .fetch_add(1, Ordering::Relaxed);
                    self.ctx.metrics.record_status(503);
                    let body = server::error_json("server overloaded", "overload");
                    let keep_alive = true; // the conn is cheap; let the client retry on it
                    let rid2 = server::generate_request_id();
                    let bytes = render_response(
                        503,
                        &[("retry-after", "1"), ("x-request-id", &rid2)],
                        body.as_bytes(),
                        keep_alive,
                    );
                    self.enqueue_response(conn, token, bytes, !keep_alive)
                }
                Err(SubmitError::ShuttingDown) => {
                    self.respond_error(conn, token, 503, "server shutting down", "overload")
                }
            }
        } else {
            let (status, extra, body) = server::route(&self.ctx, &req, &rid);
            let keep_alive = req.keep_alive() && !self.ctx.shutdown_requested();
            self.ctx.metrics.record_status(status);
            let mut headers: Vec<(&str, &str)> =
                extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
            headers.push(("x-request-id", &rid));
            let bytes = render_response(status, &headers, body.as_bytes(), keep_alive);
            self.enqueue_response(conn, token, bytes, !keep_alive)
        }
    }

    /// Parse-level error: the same status/body the blocking path sends,
    /// then close (a framing error poisons the byte stream).
    fn respond_error(
        &mut self,
        conn: &mut Conn,
        token: u64,
        status: u16,
        reason: &str,
        kind: &str,
    ) -> Verdict {
        self.ctx.metrics.record_status(status);
        let rid = server::generate_request_id();
        let body = server::error_json(reason, kind);
        let bytes = render_response(status, &[("x-request-id", &rid)], body.as_bytes(), false);
        self.enqueue_response(conn, token, bytes, true)
    }

    fn enqueue_response(
        &mut self,
        conn: &mut Conn,
        token: u64,
        bytes: Vec<u8>,
        close_after: bool,
    ) -> Verdict {
        conn.out.extend_from_slice(&bytes);
        conn.close_after_write = conn.close_after_write || close_after;
        conn.state = ConnState::Writing;
        self.advance_write(conn, token)
    }

    /// Write until done or `WouldBlock`. A drained buffer transitions back
    /// to KeepAlive and immediately re-enters the parse loop (pipelined
    /// requests already buffered must not wait for new readiness).
    fn advance_write(&mut self, conn: &mut Conn, token: u64) -> Verdict {
        while conn.out_pos < conn.out.len() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => return Verdict::Close,
                Ok(n) => {
                    conn.out_pos += n;
                    conn.last_activity = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    conn.state = ConnState::Writing;
                    return self.want(conn, token, sys::EPOLLOUT);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Verdict::Close,
            }
        }
        conn.out.clear();
        conn.out_pos = 0;
        if conn.close_after_write {
            return Verdict::Close;
        }
        conn.state = ConnState::KeepAlive;
        let v = self.want(conn, token, sys::EPOLLIN);
        if v == Verdict::Close {
            return v;
        }
        self.advance_parse(conn, token)
    }

    /// Update the registered interest mask if it changed.
    fn want(&self, conn: &mut Conn, token: u64, mask: u32) -> Verdict {
        if conn.interest == mask {
            return Verdict::Keep;
        }
        match self.epoll.modify(conn.stream.as_raw_fd(), mask, token) {
            Ok(()) => {
                conn.interest = mask;
                Verdict::Keep
            }
            Err(_) => Verdict::Close,
        }
    }

    /// Reap connections idle past the deadline. Dispatched connections are
    /// exempt — a long solve is the server's latency, not the client
    /// stalling — so a slow-loris can hold a buffer for `--conn-idle-ms`,
    /// never a worker.
    fn sweep_idle(&mut self) {
        let idle = Duration::from_millis(self.cfg.conn_idle_ms.max(1));
        let now = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                c.state != ConnState::Dispatched && now.duration_since(c.last_activity) > idle
            })
            .map(|(&t, _)| t)
            .collect();
        for token in stale {
            self.conns.remove(&token);
            self.ctx
                .metrics
                .conns_reaped
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Shutdown requested: stop accepting, drop idle connections, keep
    /// Dispatched/Writing connections until their responses flush.
    fn begin_drain(&mut self) {
        self.draining = true;
        let _ = self.epoll.delete(self.listener.as_raw_fd());
        self.conns
            .retain(|_, c| matches!(c.state, ConnState::Dispatched | ConnState::Writing));
    }
}
