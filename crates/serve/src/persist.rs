//! Store wiring: the glue between the in-memory canonical cache and the
//! persistent solution archive (`dclab-store`).
//!
//! Three flows, all keyed by the same canonical identity a [`CacheKey`]
//! carries:
//!
//! * **Warm boot** ([`warm_boot`]) — on server start, every live archive
//!   record is decoded and inserted into the LRU, so a restarted server
//!   answers its old corpus with cache *hits* and zero fresh solves.
//! * **Read-through** ([`store_lookup`]) — an LRU miss consults the
//!   archive before paying for a solve (covers entries evicted from the
//!   LRU, and archives imported from other processes).
//! * **Write-behind** ([`store_append`]) — a fresh solve is appended in
//!   canonical space (one record per instance class; the write reaches the
//!   OS before the response goes out, fsync happens on shutdown/flush).

use dclab_core::pvec::PVec;
use dclab_engine::binary::{report_from_bytes, report_to_bytes};
use dclab_engine::SolveReport;
use dclab_graph::Graph;
use dclab_store::{Store, StoreKey};

use crate::cache::{CacheKey, ReportCache};

/// The archive key for a cache key: same canonical instance identity,
/// minus the in-memory-only fields (hash, permutation).
pub fn store_key(key: &CacheKey) -> StoreKey {
    StoreKey {
        n: key.canon.n as u32,
        edges: key.canon.edges.clone(),
        pvec: key.pvec.entries().to_vec(),
        strategy: key.strategy,
        budget: key.budget,
        oracle: key.oracle,
    }
}

/// Archive lookup: a hit returns the report translated into the
/// requester's vertex space. I/O or decode failures degrade to a miss.
pub fn store_lookup(store: &Store, key: &CacheKey) -> Option<SolveReport> {
    let bytes = store.get(&store_key(key)).ok()??;
    let canon_report = report_from_bytes(&bytes).ok()?;
    Some(key.from_canonical_space(&canon_report))
}

/// Archive a solved report (given in the requester's space) under the
/// canonical key. Returns `Ok(true)` when a new record was appended.
pub fn store_append(store: &Store, key: &CacheKey, report: &SolveReport) -> std::io::Result<bool> {
    let canon_report = key.to_canonical_space(report);
    store.append(&store_key(key), &report_to_bytes(&canon_report))
}

/// Load every live archive record into the cache. Returns the number of
/// entries loaded; undecodable records are skipped, not fatal (the boot
/// must never be wedged by one foreign record).
pub fn warm_boot(cache: &ReportCache, store: &Store) -> u64 {
    let Ok(records) = store.iter_live() else {
        return 0;
    };
    let mut loaded = 0u64;
    for (skey, val) in records {
        let Ok(report) = report_from_bytes(&val) else {
            continue;
        };
        let Some(pvec) = PVec::new(skey.pvec.clone()) else {
            continue;
        };
        if report.solution.labeling.labels().len() != skey.n as usize {
            continue;
        }
        let edges: Vec<(usize, usize)> = skey
            .edges
            .iter()
            .map(|&(u, v)| (u as usize, v as usize))
            .collect();
        if edges
            .iter()
            .any(|&(u, v)| u >= skey.n as usize || v >= skey.n as usize || u == v)
        {
            continue;
        }
        let graph = Graph::from_edges(skey.n as usize, &edges);
        // The archived report lives in canonical space, which *is* the
        // vertex space of the graph we just rebuilt from canonical edges —
        // so a plain put() (which re-canonizes) files it correctly, and a
        // future isomorphic requester translates it into their own space.
        let cache_key =
            CacheKey::for_request(&graph, &pvec, skey.strategy, skey.budget, skey.oracle);
        cache.put(&cache_key, &report);
        loaded += 1;
    }
    loaded
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclab_engine::{solve, Budget, OraclePolicy, SolveRequest, Strategy};
    use dclab_graph::generators::classic;

    fn temp_store(name: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("dclab-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        Store::open(&path).expect("open store").0
    }

    #[test]
    fn append_then_lookup_round_trips_in_requester_space() {
        let store = temp_store("lookup.dcst");
        let g = classic::petersen();
        let p = PVec::l21();
        let key = CacheKey::for_request(
            &g,
            &p,
            Strategy::Exact,
            Budget::default(),
            OraclePolicy::Auto,
        );
        let report =
            solve(&SolveRequest::new(g.clone(), p.clone()).with_strategy(Strategy::Exact)).unwrap();
        assert!(store_lookup(&store, &key).is_none());
        assert!(store_append(&store, &key, &report).unwrap());
        let found = store_lookup(&store, &key).expect("archive hit");
        assert_eq!(found.to_json(), report.to_json(), "bit-identical");

        // An isomorphic relabeling hits the same record and gets a report
        // valid for *its* graph.
        let perm = vec![3, 8, 0, 5, 9, 1, 7, 2, 6, 4];
        let h = g.relabeled(&perm);
        let key_h = CacheKey::for_request(
            &h,
            &p,
            Strategy::Exact,
            Budget::default(),
            OraclePolicy::Auto,
        );
        let found_h = store_lookup(&store, &key_h).expect("isomorphic archive hit");
        assert_eq!(found_h.solution.span, report.solution.span);
        found_h
            .solution
            .labeling
            .validate(&h, &p)
            .expect("labeling valid for the relabeled graph");
    }

    #[test]
    fn warm_boot_turns_archive_records_into_cache_hits() {
        let store = temp_store("warmboot.dcst");
        let p = PVec::l21();
        let mut keys = Vec::new();
        for n in [5usize, 6, 7] {
            let g = classic::complete(n);
            let key = CacheKey::for_request(
                &g,
                &p,
                Strategy::Auto,
                Budget::default(),
                OraclePolicy::Auto,
            );
            let report = solve(&SolveRequest::new(g, p.clone())).unwrap();
            store_append(&store, &key, &report).unwrap();
            keys.push((key, report));
        }
        let cache = ReportCache::new(1 << 20);
        assert_eq!(warm_boot(&cache, &store), 3);
        for (key, report) in keys {
            let cached = cache.get(&key).expect("warm-booted entry hits");
            assert_eq!(cached.to_json(), report.to_json());
        }
    }
}
