//! Sharded LRU report cache keyed by canonical instance identity, with
//! single-flight deduplication.
//!
//! **Key** — a [`CacheKey`] combines the graph's [`CanonicalForm`] (see
//! `dclab_graph::canon`) with the p-vector, strategy, and budget. The
//! 64-bit lookup hash is isomorphism-invariant, so relabelings of the same
//! instance land in the same bucket; a hit is confirmed by comparing the
//! canonical edge list (plus p/strategy/budget) exactly, so a hash
//! collision degrades to a miss, never to a wrong answer.
//!
//! **Value** — the [`SolveReport`] translated into canonical vertex space.
//! On a hit the labeling is translated back through the *requester's* own
//! canonical permutation, which makes a cached report valid for any
//! isomorphic relabeling of the stored instance, and byte-identical for a
//! byte-identical request.
//!
//! **Single-flight** — concurrent identical requests elect one leader that
//! solves while the rest block on a condvar and share the result
//! ([`CacheStatus::Coalesced`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dclab_core::pvec::PVec;
use dclab_core::solver::Solution;
use dclab_engine::{Budget, OraclePolicy, SolveReport, Strategy};
use dclab_graph::canon::{CanonicalForm, Fnv64};
use dclab_graph::Graph;

/// Identity of a cacheable request.
#[derive(Clone, Debug)]
pub struct CacheKey {
    /// Isomorphism-invariant combined hash (graph canon ⊕ p ⊕ strategy ⊕
    /// budget ⊕ oracle policy); the shard/bucket index.
    pub hash: u64,
    pub canon: CanonicalForm,
    pub pvec: PVec,
    pub strategy: Strategy,
    pub budget: Budget,
    pub oracle: OraclePolicy,
}

impl CacheKey {
    /// Build the key for a request (computes the canonical form).
    pub fn for_request(
        g: &Graph,
        pvec: &PVec,
        strategy: Strategy,
        budget: Budget,
        oracle: OraclePolicy,
    ) -> CacheKey {
        let canon = CanonicalForm::of(g);
        let mut h = Fnv64::new();
        h.write_u64(canon.hash);
        h.write_u64(pvec.k() as u64);
        for &e in pvec.entries() {
            h.write_u64(e);
        }
        h.write_bytes(strategy.name().as_bytes());
        h.write_u64(budget.node_budget.map_or(u64::MAX, |b| b));
        h.write_u64(budget.restarts.map_or(u64::MAX, |r| r as u64));
        h.write_u64(budget.lb_iters.map_or(u64::MAX, |i| i as u64));
        h.write_u64(budget.deadline_ms.map_or(u64::MAX, |d| d));
        h.write_u64(oracle.code() as u64);
        CacheKey {
            hash: h.finish(),
            canon,
            pvec: pvec.clone(),
            strategy,
            budget,
            oracle,
        }
    }

    /// Translate a report from this requester's vertex space into
    /// canonical space (the space cached entries and archived records use).
    pub fn to_canonical_space(&self, report: &SolveReport) -> SolveReport {
        to_canonical(report, &self.canon.perm).0
    }

    /// Inverse of [`CacheKey::to_canonical_space`]: make a canonical-space
    /// report valid for the exact graph this requester sent.
    pub fn from_canonical_space(&self, report: &SolveReport) -> SolveReport {
        from_canonical(&CanonReport(report.clone()), &self.canon.perm)
    }

    /// Exact identity check behind a bucket hit.
    fn matches(&self, other: &CacheKey) -> bool {
        self.hash == other.hash
            && self.pvec == other.pvec
            && self.strategy == other.strategy
            && self.budget == other.budget
            && self.oracle == other.oracle
            && self.canon.same_canonical_graph(&other.canon)
    }
}

/// How a request was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from the cache.
    Hit,
    /// Solved here and stored.
    Miss,
    /// Waited on a concurrent identical solve and shared its result.
    Coalesced,
}

impl CacheStatus {
    /// Stable lowercase name (the `X-Dclab-Cache` header value).
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Coalesced => "coalesced",
        }
    }
}

/// A report in canonical vertex space.
#[derive(Clone, Debug)]
struct CanonReport(SolveReport);

/// Translate a caller-space report into canonical space via `perm`.
fn to_canonical(report: &SolveReport, perm: &[u32]) -> CanonReport {
    CanonReport(remap(report, |v| perm[v as usize]))
}

/// Translate a canonical-space report into the requester's space.
fn from_canonical(report: &CanonReport, perm: &[u32]) -> SolveReport {
    let n = perm.len();
    let mut inv = vec![0u32; n];
    for (old, &new) in perm.iter().enumerate() {
        inv[new as usize] = old as u32;
    }
    remap(&report.0, |v| inv[v as usize])
}

fn remap(report: &SolveReport, map: impl Fn(u32) -> u32) -> SolveReport {
    let labels = report.solution.labeling.labels();
    let mut new_labels = vec![0u64; labels.len()];
    for (v, &l) in labels.iter().enumerate() {
        new_labels[map(v as u32) as usize] = l;
    }
    let order: Vec<u32> = report.solution.order.iter().map(|&v| map(v)).collect();
    SolveReport {
        solution: Solution {
            span: report.solution.span,
            order,
            labeling: dclab_core::labeling::Labeling::new(new_labels),
        },
        ..report.clone()
    }
}

struct Entry {
    key: CacheKey,
    report: CanonReport,
    bytes: usize,
    last_used: u64,
}

impl Entry {
    fn estimate_bytes(key: &CacheKey, report: &CanonReport) -> usize {
        let graph_bytes = key.canon.edges.len() * 8 + key.canon.perm.len() * 4;
        let report_bytes = report.0.solution.labeling.labels().len() * 8
            + report.0.solution.order.len() * 4
            + report.0.stats.notes.iter().map(String::len).sum::<usize>();
        256 + 2 * graph_bytes + report_bytes
    }
}

#[derive(Default)]
struct Shard {
    /// Bucket chains: hash → entries whose key hashed there.
    buckets: HashMap<u64, Vec<Entry>>,
    bytes: usize,
}

/// One in-flight solve shared by concurrent identical requests.
struct Flight {
    key: CacheKey,
    result: Mutex<Option<Result<CanonReport, String>>>,
    done: Condvar,
}

/// Aggregate cache counters (monotonic).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheCounters {
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
    pub entries: u64,
    pub bytes: u64,
}

/// The sharded LRU report cache.
pub struct ReportCache {
    shards: Vec<Mutex<Shard>>,
    flights: Mutex<HashMap<u64, Arc<Flight>>>,
    per_shard_budget: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

/// Shard count: enough to keep lock contention negligible for a worker
/// pool of typical size, small enough that tiny budgets still fit entries.
const SHARDS: usize = 16;

impl ReportCache {
    /// A cache holding at most ~`budget_bytes` of entries (split evenly
    /// across shards; each shard keeps at least one entry regardless).
    pub fn new(budget_bytes: usize) -> ReportCache {
        ReportCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            flights: Mutex::new(HashMap::new()),
            per_shard_budget: budget_bytes / SHARDS,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % SHARDS]
    }

    /// Look up `key`; a hit returns the report translated into the
    /// requester's vertex space.
    pub fn get(&self, key: &CacheKey) -> Option<SolveReport> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key.hash).lock().expect("cache lock poisoned");
        let entries = shard.buckets.get_mut(&key.hash)?;
        let entry = entries.iter_mut().find(|e| e.key.matches(key))?;
        entry.last_used = tick;
        let report = from_canonical(&entry.report, &key.canon.perm);
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(report)
    }

    /// Store a solved report (given in the requester's space) under `key`.
    pub fn put(&self, key: &CacheKey, report: &SolveReport) {
        let canon_report = to_canonical(report, &key.canon.perm);
        let bytes = Entry::estimate_bytes(key, &canon_report);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key.hash).lock().expect("cache lock poisoned");
        let bucket = shard.buckets.entry(key.hash).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.key.matches(key)) {
            existing.last_used = tick;
            return;
        }
        bucket.push(Entry {
            key: key.clone(),
            report: canon_report,
            bytes,
            last_used: tick,
        });
        shard.bytes += bytes;
        self.evict_over_budget(&mut shard);
    }

    /// Evict least-recently-used entries until the shard fits its budget
    /// (always keeping the newest entry). The victim order is computed with
    /// one scan + sort rather than rescanning the shard per eviction, so an
    /// eviction storm is O(n log n) under the shard lock, not O(n²).
    fn evict_over_budget(&self, shard: &mut Shard) {
        if shard.bytes <= self.per_shard_budget {
            return;
        }
        // `last_used` ticks are globally unique, so (tick, hash) identifies
        // an entry exactly; oldest first.
        let mut victims: Vec<(u64, u64)> = shard
            .buckets
            .iter()
            .flat_map(|(&h, es)| es.iter().map(move |e| (e.last_used, h)))
            .collect();
        victims.sort_unstable();
        let mut remaining = victims.len();
        for (last_used, hash) in victims {
            if shard.bytes <= self.per_shard_budget || remaining <= 1 {
                break;
            }
            let bucket = shard.buckets.get_mut(&hash).expect("victim bucket exists");
            let idx = bucket
                .iter()
                .position(|e| e.last_used == last_used)
                .expect("victim entry exists");
            let evicted = bucket.remove(idx);
            if bucket.is_empty() {
                shard.buckets.remove(&hash);
            }
            shard.bytes -= evicted.bytes;
            remaining -= 1;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The full caching protocol: hit → return; concurrent identical solve
    /// in flight → wait and share; otherwise lead a solve via `solve_fn`,
    /// store, and publish to waiters. `solve_fn` runs without any cache
    /// lock held.
    pub fn get_or_solve<F>(
        &self,
        key: &CacheKey,
        solve_fn: F,
    ) -> (Result<SolveReport, String>, CacheStatus)
    where
        F: FnOnce() -> Result<SolveReport, String>,
    {
        if let Some(report) = self.get(key) {
            return (Ok(report), CacheStatus::Hit);
        }

        // Join or open a flight.
        let flight = {
            let mut flights = self.flights.lock().expect("flight lock poisoned");
            if let Some(existing) = flights.get(&key.hash) {
                if existing.key.matches(key) {
                    let f = Arc::clone(existing);
                    drop(flights);
                    let mut slot = f.result.lock().expect("flight result poisoned");
                    while slot.is_none() {
                        slot = f.done.wait(slot).expect("flight result poisoned");
                    }
                    let outcome = match slot.as_ref().expect("just waited for Some") {
                        Ok(canon) => Ok(from_canonical(canon, &key.canon.perm)),
                        Err(e) => Err(e.clone()),
                    };
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    return (outcome, CacheStatus::Coalesced);
                }
                // Same hash, different instance: solve unshared (rare).
                None
            } else {
                let f = Arc::new(Flight {
                    key: key.clone(),
                    result: Mutex::new(None),
                    done: Condvar::new(),
                });
                flights.insert(key.hash, Arc::clone(&f));
                Some(f)
            }
        };

        // Double-check after winning the flight: a previous leader may have
        // populated the cache between our miss and the flight insert.
        if let Some(f) = &flight {
            if let Some(report) = self.get(key) {
                *f.result.lock().expect("flight result poisoned") =
                    Some(Ok(to_canonical(&report, &key.canon.perm)));
                f.done.notify_all();
                let mut flights = self.flights.lock().expect("flight lock poisoned");
                if let Some(cur) = flights.get(&key.hash) {
                    if Arc::ptr_eq(cur, f) {
                        flights.remove(&key.hash);
                    }
                }
                return (Ok(report), CacheStatus::Hit);
            }
        }

        // A panicking solver must not strand the flight: waiters would
        // block forever on the condvar and every future identical request
        // would join the dead flight. Catch the panic, publish an error to
        // the waiters, and answer this request with a 500-grade failure.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(solve_fn))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_default();
                Err(format!("solver panicked: {msg}"))
            });
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Ok(report) = &outcome {
            self.put(key, report);
        }

        if let Some(f) = flight {
            let canon_result = outcome
                .as_ref()
                .map(|r| to_canonical(r, &key.canon.perm))
                .map_err(Clone::clone);
            *f.result.lock().expect("flight result poisoned") = Some(canon_result);
            f.done.notify_all();
            let mut flights = self.flights.lock().expect("flight lock poisoned");
            if let Some(cur) = flights.get(&key.hash) {
                if Arc::ptr_eq(cur, &f) {
                    flights.remove(&key.hash);
                }
            }
        }
        (outcome, CacheStatus::Miss)
    }

    /// Counter snapshot (for `/metrics`).
    pub fn counters(&self) -> CacheCounters {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        for shard in &self.shards {
            let s = shard.lock().expect("cache lock poisoned");
            entries += s.buckets.values().map(|b| b.len() as u64).sum::<u64>();
            bytes += s.bytes as u64;
        }
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclab_engine::{solve, SolveRequest};
    use dclab_graph::generators::classic;

    fn key_and_report(g: &Graph, strategy: Strategy) -> (CacheKey, SolveReport) {
        let p = PVec::l21();
        let key = CacheKey::for_request(g, &p, strategy, Budget::default(), OraclePolicy::Auto);
        let report = solve(&SolveRequest::new(g.clone(), p).with_strategy(strategy)).unwrap();
        (key, report)
    }

    #[test]
    fn byte_identical_round_trip() {
        let cache = ReportCache::new(1 << 20);
        let g = classic::petersen();
        let (key, report) = key_and_report(&g, Strategy::Auto);
        assert!(cache.get(&key).is_none());
        cache.put(&key, &report);
        let cached = cache.get(&key).expect("hit");
        assert_eq!(
            cached.to_json(),
            report.to_json(),
            "bit-identical on same instance"
        );
    }

    #[test]
    fn isomorphic_relabeling_hits_and_is_valid() {
        let cache = ReportCache::new(1 << 20);
        let g = classic::petersen();
        let p = PVec::l21();
        let (key, report) = key_and_report(&g, Strategy::Exact);
        cache.put(&key, &report);

        let perm = vec![4, 7, 1, 8, 0, 3, 6, 2, 5, 9];
        let h = g.relabeled(&perm);
        let key_h = CacheKey::for_request(
            &h,
            &p,
            Strategy::Exact,
            Budget::default(),
            OraclePolicy::Auto,
        );
        assert_eq!(key.hash, key_h.hash, "isomorphic instances share the hash");
        let cached = cache.get(&key_h).expect("isomorphic relabeling hits");
        assert_eq!(cached.solution.span, report.solution.span);
        cached
            .solution
            .labeling
            .validate(&h, &p)
            .expect("remapped labeling valid for h");
    }

    #[test]
    fn different_pvec_or_strategy_miss() {
        let cache = ReportCache::new(1 << 20);
        let g = classic::petersen();
        let (key, report) = key_and_report(&g, Strategy::Auto);
        cache.put(&key, &report);
        let other_p = CacheKey::for_request(
            &g,
            &PVec::ones(2),
            Strategy::Auto,
            Budget::default(),
            OraclePolicy::Auto,
        );
        let other_s = CacheKey::for_request(
            &g,
            &PVec::l21(),
            Strategy::Greedy,
            Budget::default(),
            OraclePolicy::Auto,
        );
        assert!(cache.get(&other_p).is_none());
        assert!(cache.get(&other_s).is_none());
    }

    #[test]
    fn lru_evicts_under_byte_pressure() {
        // Budget so small each shard fits ~1 entry; inserting many distinct
        // instances must evict and never exceed ~budget.
        let cache = ReportCache::new(SHARDS * 600);
        let p = PVec::l21();
        for n in 3..30 {
            let g = classic::path(n);
            let key = CacheKey::for_request(
                &g,
                &p,
                Strategy::Greedy,
                Budget::default(),
                OraclePolicy::Auto,
            );
            let report =
                solve(&SolveRequest::new(g.clone(), p.clone()).with_strategy(Strategy::Greedy))
                    .unwrap();
            cache.put(&key, &report);
        }
        let c = cache.counters();
        assert!(c.evictions > 0, "evictions happened: {c:?}");
        assert!(c.entries < 27, "entries bounded: {c:?}");
    }

    #[test]
    fn get_or_solve_miss_then_hit() {
        let cache = ReportCache::new(1 << 20);
        let g = classic::complete(6);
        let p = PVec::l21();
        let key = CacheKey::for_request(
            &g,
            &p,
            Strategy::Auto,
            Budget::default(),
            OraclePolicy::Auto,
        );
        let solve_fn =
            || solve(&SolveRequest::new(g.clone(), p.clone())).map_err(|e| e.to_string());
        let (r1, s1) = cache.get_or_solve(&key, solve_fn);
        assert_eq!(s1, CacheStatus::Miss);
        let (r2, s2) = cache.get_or_solve(&key, || panic!("must not re-solve"));
        assert_eq!(s2, CacheStatus::Hit);
        assert_eq!(r1.unwrap().to_json(), r2.unwrap().to_json());
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_requests() {
        use std::sync::atomic::AtomicUsize;
        let cache = Arc::new(ReportCache::new(1 << 20));
        let solves = Arc::new(AtomicUsize::new(0));
        let g = classic::complete_bipartite(4, 4);
        let p = PVec::l21();
        let key = CacheKey::for_request(
            &g,
            &p,
            Strategy::Auto,
            Budget::default(),
            OraclePolicy::Auto,
        );
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (cache, solves, key, g, p) = (
                Arc::clone(&cache),
                Arc::clone(&solves),
                key.clone(),
                g.clone(),
                p.clone(),
            );
            handles.push(std::thread::spawn(move || {
                let (result, status) = cache.get_or_solve(&key, || {
                    solves.fetch_add(1, Ordering::SeqCst);
                    // Slow the leader so the others pile onto the flight.
                    std::thread::sleep(std::time::Duration::from_millis(30));
                    solve(&SolveRequest::new(g, p)).map_err(|e| e.to_string())
                });
                (result.unwrap().solution.span, status)
            }));
        }
        let results: Vec<(u64, CacheStatus)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let spans: Vec<u64> = results.iter().map(|&(s, _)| s).collect();
        assert!(spans.windows(2).all(|w| w[0] == w[1]), "all spans agree");
        assert_eq!(
            solves.load(Ordering::SeqCst),
            1,
            "exactly one solve ran: {results:?}"
        );
    }
}
