//! Service metrics: lock-free counters and a log-scale latency histogram,
//! rendered as deterministic JSON for `GET /metrics`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dclab_engine::json::Obj;
use dclab_engine::Strategy;

use crate::cache::CacheCounters;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, the last bucket is open-ended (≥ ~35 min).
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram over microsecond latencies with power-of-two buckets.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile from the histogram: the upper bound (in µs) of
    /// the bucket containing the `q`-quantile sample.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }

    pub fn to_json(&self) -> String {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Trim trailing empty buckets for readability; keep at least one.
        let last = counts.iter().rposition(|&c| c > 0).map_or(1, |i| i + 1);
        let count = self.count();
        let mean = self
            .sum_us
            .load(Ordering::Relaxed)
            .checked_div(count)
            .unwrap_or(0);
        Obj::new()
            .u64("count", count)
            .u64("mean_us", mean)
            .u64("p50_us", self.quantile_us(0.50))
            .u64("p90_us", self.quantile_us(0.90))
            .u64("p99_us", self.quantile_us(0.99))
            .u64_array("bucket_counts_pow2_us", counts[..last].iter().copied())
            .finish()
    }
}

/// All counters the service exposes.
#[derive(Default)]
pub struct Metrics {
    pub requests_total: AtomicU64,
    pub solve_requests: AtomicU64,
    pub batch_requests: AtomicU64,
    pub health_requests: AtomicU64,
    pub metrics_requests: AtomicU64,
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    pub rejected_overload: AtomicU64,
    /// Solves completed, by concrete strategy (index into
    /// [`Strategy::CONCRETE`]).
    pub per_strategy: [AtomicU64; 7],
    /// End-to-end `/solve` handling latency (includes cache hits).
    pub solve_latency: LatencyHistogram,
}

impl Metrics {
    pub fn record_strategy(&self, used: Strategy) {
        if let Some(i) = Strategy::CONCRETE.iter().position(|&s| s == used) {
            self.per_strategy[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one finished request. This is the single place
    /// `requests_total` is incremented — every path that answers a client
    /// (routed, parse failure, overload shed) calls it exactly once, so
    /// `requests_total == responses_2xx + responses_4xx + responses_5xx`
    /// always reconciles.
    pub fn record_status(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// The `/metrics` JSON body.
    pub fn to_json(&self, cache: CacheCounters) -> String {
        let strategies = Strategy::CONCRETE
            .iter()
            .zip(self.per_strategy.iter())
            .fold(Obj::new(), |obj, (s, count)| {
                obj.u64(s.name(), count.load(Ordering::Relaxed))
            })
            .finish();
        let cache_json = Obj::new()
            .u64("hits", cache.hits)
            .u64("misses", cache.misses)
            .u64("coalesced", cache.coalesced)
            .u64("evictions", cache.evictions)
            .u64("entries", cache.entries)
            .u64("bytes", cache.bytes)
            .finish();
        Obj::new()
            .u64(
                "requests_total",
                self.requests_total.load(Ordering::Relaxed),
            )
            .u64(
                "solve_requests",
                self.solve_requests.load(Ordering::Relaxed),
            )
            .u64(
                "batch_requests",
                self.batch_requests.load(Ordering::Relaxed),
            )
            .u64(
                "health_requests",
                self.health_requests.load(Ordering::Relaxed),
            )
            .u64(
                "metrics_requests",
                self.metrics_requests.load(Ordering::Relaxed),
            )
            .u64("responses_2xx", self.responses_2xx.load(Ordering::Relaxed))
            .u64("responses_4xx", self.responses_4xx.load(Ordering::Relaxed))
            .u64("responses_5xx", self.responses_5xx.load(Ordering::Relaxed))
            .u64(
                "rejected_overload",
                self.rejected_overload.load(Ordering::Relaxed),
            )
            .raw("cache", &cache_json)
            .raw("strategies", &strategies)
            .raw("solve_latency", &self.solve_latency.to_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [1u64, 3, 3, 3, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // p50 falls in the [2,4) bucket → upper bound 4.
        assert_eq!(h.quantile_us(0.50), 4);
        assert!(h.quantile_us(0.99) >= 4096);
        let json = h.to_json();
        assert!(json.contains("\"count\":7"));
        assert!(json.contains("\"p50_us\":4"));
    }

    #[test]
    fn metrics_json_shape() {
        let m = Metrics::default();
        m.record_strategy(Strategy::Exact);
        m.record_strategy(Strategy::Exact);
        m.record_status(200);
        m.record_status(422);
        m.record_status(200);
        let json = m.to_json(CacheCounters::default());
        assert!(json.contains("\"requests_total\":3"));
        assert!(json.contains("\"responses_2xx\":2"));
        assert!(json.contains("\"exact\":2"));
        assert!(json.contains("\"responses_4xx\":1"));
        assert!(json.contains("\"cache\":{\"hits\":0"));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert!(h.to_json().contains("\"count\":0"));
    }
}
