//! Service metrics: lock-free counters and a log-scale latency histogram,
//! rendered as Prometheus text exposition (the `GET /metrics` default,
//! `text/plain; version=0.0.4`) or deterministic JSON
//! (`GET /metrics?format=json`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dclab_engine::json::Obj;
use dclab_engine::Strategy;

use crate::cache::CacheCounters;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, the last bucket is open-ended (≥ ~35 min).
pub const LATENCY_BUCKETS: usize = 32;

/// Histogram over microsecond latencies with power-of-two buckets.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile from the histogram: the upper bound (in µs) of
    /// the bucket containing the `q`-quantile sample.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }

    /// Prometheus histogram lines (`*_bucket{le=…}` cumulative counts in
    /// seconds, `*_sum`, `*_count`) for a metric named `name`.
    pub fn to_prometheus(&self, name: &str) -> String {
        let mut out = format!("# TYPE {name} histogram\n");
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            cumulative += count;
            // The last bucket is open-ended: its samples belong to +Inf
            // only — a finite `le` would claim slow solves finished early.
            if count == 0 || i + 1 == LATENCY_BUCKETS {
                continue;
            }
            let le_seconds = (1u64 << (i + 1)) as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{{le=\"{le_seconds}\"}} {cumulative}\n"
            ));
        }
        let count = self.count();
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_us.load(Ordering::Relaxed) as f64 / 1e6
        ));
        out.push_str(&format!("{name}_count {count}\n"));
        out
    }

    pub fn to_json(&self) -> String {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Trim trailing empty buckets for readability; keep at least one.
        let last = counts.iter().rposition(|&c| c > 0).map_or(1, |i| i + 1);
        let count = self.count();
        let mean = self
            .sum_us
            .load(Ordering::Relaxed)
            .checked_div(count)
            .unwrap_or(0);
        Obj::new()
            .u64("count", count)
            .u64("mean_us", mean)
            .u64("p50_us", self.quantile_us(0.50))
            .u64("p90_us", self.quantile_us(0.90))
            .u64("p99_us", self.quantile_us(0.99))
            .u64_array("bucket_counts_pow2_us", counts[..last].iter().copied())
            .finish()
    }
}

/// Point-in-time archive gauges, read from the store at render time
/// (`None` when the server runs without `--store-path`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreGauges {
    /// Live archived records.
    pub entries: u64,
    /// Bytes of live log data.
    pub bytes: u64,
    /// Compaction generation stamp.
    pub generation: u64,
}

/// All counters the service exposes.
#[derive(Default)]
pub struct Metrics {
    pub requests_total: AtomicU64,
    pub solve_requests: AtomicU64,
    pub batch_requests: AtomicU64,
    pub health_requests: AtomicU64,
    pub metrics_requests: AtomicU64,
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    pub rejected_overload: AtomicU64,
    /// Solves completed, by concrete strategy (index into
    /// [`Strategy::CONCRETE`]).
    pub per_strategy: [AtomicU64; 7],
    /// Fresh solves whose deadline fired before optimality was proved
    /// (the response is still 200 with the best incumbent).
    pub solve_timeouts: AtomicU64,
    /// Race-strategy solves won, by the winning concrete member (index
    /// into [`Strategy::CONCRETE`]).
    pub race_wins: [AtomicU64; 7],
    /// End-to-end `/solve` handling latency (includes cache hits).
    pub solve_latency: LatencyHistogram,
    /// Archive reads that found a record (LRU miss → store hit).
    pub store_hits: AtomicU64,
    /// Archive reads that fell through to a fresh solve.
    pub store_misses: AtomicU64,
    /// Records write-behind-appended after fresh solves.
    pub store_appends: AtomicU64,
    /// Entries loaded from the archive into the LRU at start.
    pub store_warm_boot: AtomicU64,
    /// Store fsyncs (shutdown drain, explicit flushes).
    pub store_flushes: AtomicU64,
}

impl Metrics {
    pub fn record_strategy(&self, used: Strategy) {
        if let Some(i) = Strategy::CONCRETE.iter().position(|&s| s == used) {
            self.per_strategy[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record the concrete member that won a `strategy=race` solve.
    pub fn record_race_winner(&self, winner: Strategy) {
        if let Some(i) = Strategy::CONCRETE.iter().position(|&s| s == winner) {
            self.race_wins[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one finished request. This is the single place
    /// `requests_total` is incremented — every path that answers a client
    /// (routed, parse failure, overload shed) calls it exactly once, so
    /// `requests_total == responses_2xx + responses_4xx + responses_5xx`
    /// always reconciles.
    pub fn record_status(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// The `/metrics` body in Prometheus text exposition format 0.0.4
    /// (served with `content-type: text/plain; version=0.0.4`).
    /// `store` is `None` when the server runs without a persistent archive
    /// (the store counters still render, pinned at zero, so dashboards
    /// need not special-case the flag).
    pub fn to_prometheus(&self, cache: CacheCounters, store: Option<StoreGauges>) -> String {
        let counter = |name: &str, value: u64| format!("# TYPE {name} counter\n{name} {value}\n");
        let gauge = |name: &str, value: u64| format!("# TYPE {name} gauge\n{name} {value}\n");
        let mut out = String::new();
        out.push_str(&counter(
            "dclab_requests_total",
            self.requests_total.load(Ordering::Relaxed),
        ));
        out.push_str("# TYPE dclab_endpoint_requests_total counter\n");
        for (name, v) in [
            ("solve", &self.solve_requests),
            ("batch", &self.batch_requests),
            ("health", &self.health_requests),
            ("metrics", &self.metrics_requests),
        ] {
            out.push_str(&format!(
                "dclab_endpoint_requests_total{{endpoint=\"{name}\"}} {}\n",
                v.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE dclab_responses_total counter\n");
        for (class, v) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            out.push_str(&format!(
                "dclab_responses_total{{class=\"{class}\"}} {}\n",
                v.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&counter(
            "dclab_rejected_overload_total",
            self.rejected_overload.load(Ordering::Relaxed),
        ));
        out.push_str(&counter("dclab_cache_hits_total", cache.hits));
        out.push_str(&counter("dclab_cache_misses_total", cache.misses));
        out.push_str(&counter("dclab_cache_coalesced_total", cache.coalesced));
        out.push_str(&counter("dclab_cache_evictions_total", cache.evictions));
        out.push_str(&gauge("dclab_cache_entries", cache.entries));
        out.push_str(&gauge("dclab_cache_bytes", cache.bytes));
        out.push_str(&gauge("dclab_store_enabled", store.is_some() as u64));
        out.push_str(&counter(
            "dclab_store_hits_total",
            self.store_hits.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_store_misses_total",
            self.store_misses.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_store_appends_total",
            self.store_appends.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_store_flushes_total",
            self.store_flushes.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_store_warm_boot_entries",
            self.store_warm_boot.load(Ordering::Relaxed),
        ));
        let gauges = store.unwrap_or_default();
        out.push_str(&gauge("dclab_store_entries", gauges.entries));
        out.push_str(&gauge("dclab_store_bytes", gauges.bytes));
        out.push_str(&gauge("dclab_store_generation", gauges.generation));
        out.push_str("# TYPE dclab_solves_total counter\n");
        for (s, count) in Strategy::CONCRETE.iter().zip(self.per_strategy.iter()) {
            out.push_str(&format!(
                "dclab_solves_total{{strategy=\"{}\"}} {}\n",
                s.name(),
                count.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&counter(
            "dclab_solve_timeouts_total",
            self.solve_timeouts.load(Ordering::Relaxed),
        ));
        out.push_str("# TYPE dclab_race_wins_total counter\n");
        for (s, count) in Strategy::CONCRETE.iter().zip(self.race_wins.iter()) {
            out.push_str(&format!(
                "dclab_race_wins_total{{strategy=\"{}\"}} {}\n",
                s.name(),
                count.load(Ordering::Relaxed)
            ));
        }
        out.push_str(
            &self
                .solve_latency
                .to_prometheus("dclab_solve_latency_seconds"),
        );
        out
    }

    /// The `/metrics?format=json` body.
    pub fn to_json(&self, cache: CacheCounters, store: Option<StoreGauges>) -> String {
        let strategies = Strategy::CONCRETE
            .iter()
            .zip(self.per_strategy.iter())
            .fold(Obj::new(), |obj, (s, count)| {
                obj.u64(s.name(), count.load(Ordering::Relaxed))
            })
            .finish();
        let race_wins = Strategy::CONCRETE
            .iter()
            .zip(self.race_wins.iter())
            .fold(Obj::new(), |obj, (s, count)| {
                obj.u64(s.name(), count.load(Ordering::Relaxed))
            })
            .finish();
        let cache_json = Obj::new()
            .u64("hits", cache.hits)
            .u64("misses", cache.misses)
            .u64("coalesced", cache.coalesced)
            .u64("evictions", cache.evictions)
            .u64("entries", cache.entries)
            .u64("bytes", cache.bytes)
            .finish();
        let gauges = store.unwrap_or_default();
        let store_json = Obj::new()
            .bool("enabled", store.is_some())
            .u64("hits", self.store_hits.load(Ordering::Relaxed))
            .u64("misses", self.store_misses.load(Ordering::Relaxed))
            .u64("appends", self.store_appends.load(Ordering::Relaxed))
            .u64("flushes", self.store_flushes.load(Ordering::Relaxed))
            .u64("warm_boot", self.store_warm_boot.load(Ordering::Relaxed))
            .u64("entries", gauges.entries)
            .u64("bytes", gauges.bytes)
            .u64("generation", gauges.generation)
            .finish();
        Obj::new()
            .u64(
                "requests_total",
                self.requests_total.load(Ordering::Relaxed),
            )
            .u64(
                "solve_requests",
                self.solve_requests.load(Ordering::Relaxed),
            )
            .u64(
                "batch_requests",
                self.batch_requests.load(Ordering::Relaxed),
            )
            .u64(
                "health_requests",
                self.health_requests.load(Ordering::Relaxed),
            )
            .u64(
                "metrics_requests",
                self.metrics_requests.load(Ordering::Relaxed),
            )
            .u64("responses_2xx", self.responses_2xx.load(Ordering::Relaxed))
            .u64("responses_4xx", self.responses_4xx.load(Ordering::Relaxed))
            .u64("responses_5xx", self.responses_5xx.load(Ordering::Relaxed))
            .u64(
                "rejected_overload",
                self.rejected_overload.load(Ordering::Relaxed),
            )
            .u64(
                "solve_timeouts",
                self.solve_timeouts.load(Ordering::Relaxed),
            )
            .raw("cache", &cache_json)
            .raw("store", &store_json)
            .raw("strategies", &strategies)
            .raw("race_wins", &race_wins)
            .raw("solve_latency", &self.solve_latency.to_json())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [1u64, 3, 3, 3, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // p50 falls in the [2,4) bucket → upper bound 4.
        assert_eq!(h.quantile_us(0.50), 4);
        assert!(h.quantile_us(0.99) >= 4096);
        let json = h.to_json();
        assert!(json.contains("\"count\":7"));
        assert!(json.contains("\"p50_us\":4"));
    }

    #[test]
    fn metrics_json_shape() {
        let m = Metrics::default();
        m.record_strategy(Strategy::Exact);
        m.record_strategy(Strategy::Exact);
        m.record_status(200);
        m.record_status(422);
        m.record_status(200);
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains("\"requests_total\":3"));
        assert!(json.contains("\"responses_2xx\":2"));
        assert!(json.contains("\"exact\":2"));
        assert!(json.contains("\"responses_4xx\":1"));
        assert!(json.contains("\"cache\":{\"hits\":0"));
        assert!(json.contains("\"store\":{\"enabled\":false"));
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.5), 0);
        assert!(h.to_json().contains("\"count\":0"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = Metrics::default();
        m.record_strategy(Strategy::Exact);
        m.record_status(200);
        m.record_status(422);
        m.solve_latency.record(Duration::from_micros(100));
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("# TYPE dclab_requests_total counter\ndclab_requests_total 2\n"));
        assert!(text.contains("dclab_responses_total{class=\"2xx\"} 1\n"));
        assert!(text.contains("dclab_responses_total{class=\"4xx\"} 1\n"));
        assert!(text.contains("dclab_solves_total{strategy=\"exact\"} 1\n"));
        assert!(text.contains("dclab_cache_hits_total 0\n"));
        // Histogram: 100 µs lands in the [64,128) µs bucket → le 128/1e6.
        assert!(text.contains("# TYPE dclab_solve_latency_seconds histogram"));
        assert!(text.contains("dclab_solve_latency_seconds_bucket{le=\"0.000128\"} 1\n"));
        assert!(text.contains("dclab_solve_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("dclab_solve_latency_seconds_count 1\n"));
        // One TYPE line per metric family, even with several samples.
        assert_eq!(text.matches("# TYPE dclab_solves_total").count(), 1);
        assert_eq!(text.matches("# TYPE dclab_responses_total").count(), 1);
        // Store counters render even when the archive is disabled.
        assert!(text.contains("dclab_store_enabled 0\n"));
        assert!(text.contains("dclab_store_hits_total 0\n"));
    }

    #[test]
    fn timeout_and_race_counters_render() {
        let m = Metrics::default();
        m.solve_timeouts.fetch_add(2, Ordering::Relaxed);
        m.record_race_winner(Strategy::Heuristic);
        m.record_race_winner(Strategy::Heuristic);
        m.record_race_winner(Strategy::BranchBound);
        m.record_race_winner(Strategy::Race); // not concrete: ignored
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_solve_timeouts_total 2\n"));
        assert!(text.contains("dclab_race_wins_total{strategy=\"heuristic\"} 2\n"));
        assert!(text.contains("dclab_race_wins_total{strategy=\"branch-bound\"} 1\n"));
        assert!(text.contains("dclab_race_wins_total{strategy=\"greedy\"} 0\n"));
        assert_eq!(text.matches("# TYPE dclab_race_wins_total").count(), 1);
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains("\"solve_timeouts\":2"));
        assert!(json.contains("\"race_wins\":{"));
        assert!(json.contains("\"heuristic\":2"));
    }

    #[test]
    fn store_gauges_render_when_enabled() {
        let m = Metrics::default();
        m.store_hits.fetch_add(3, Ordering::Relaxed);
        m.store_warm_boot.store(7, Ordering::Relaxed);
        let gauges = StoreGauges {
            entries: 7,
            bytes: 1234,
            generation: 2,
        };
        let text = m.to_prometheus(CacheCounters::default(), Some(gauges));
        assert!(text.contains("dclab_store_enabled 1\n"));
        assert!(text.contains("dclab_store_hits_total 3\n"));
        assert!(text.contains("dclab_store_entries 7\n"));
        assert!(text.contains("dclab_store_bytes 1234\n"));
        assert!(text.contains("dclab_store_generation 2\n"));
        let json = m.to_json(CacheCounters::default(), Some(gauges));
        assert!(json.contains("\"store\":{\"enabled\":true,\"hits\":3"));
        assert!(json.contains("\"warm_boot\":7"));
        assert!(json.contains("\"generation\":2"));
    }
}
