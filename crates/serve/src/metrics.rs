//! Service metrics: lock-free counters and a log-scale latency histogram,
//! rendered as Prometheus text exposition (the `GET /metrics` default,
//! `text/plain; version=0.0.4`) or deterministic JSON
//! (`GET /metrics?format=json`).
//!
//! Every family gets a `# HELP` line and label values pass through
//! [`escape_label`] (backslash, double-quote, newline), so the output obeys
//! the text-format grammar even if a label value ever carries hostile bytes
//! — asserted by a parser test that walks the full exposition line by line.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use dclab_core::bounds::BoundKind;
use dclab_engine::json::Obj;
use dclab_engine::{OracleStats, Strategy};

use crate::cache::CacheCounters;

/// Number of power-of-two latency buckets: bucket `i` holds samples in
/// `[2^i, 2^{i+1})` microseconds, the last bucket is open-ended (≥ ~35 min).
pub const LATENCY_BUCKETS: usize = 32;

/// One histogram per registered trace phase (`dclab_trace::PHASES`), so the
/// `dclab_phase_seconds` metric set stays bounded no matter what span names
/// show up in traces.
pub const PHASE_COUNT: usize = dclab_trace::PHASES.len();

/// One counter slot per concrete strategy, sized from the engine's own
/// registry so a new route extends the metric families automatically.
pub const STRATEGY_COUNT: usize = Strategy::CONCRETE.len();

/// One counter slot per lower-bound certificate kind, sized from the
/// core's own ladder registry ([`BoundKind::ALL`]).
pub const BOUND_KIND_COUNT: usize = BoundKind::ALL.len();

/// Upper bounds (`le`, inclusive) of the optimality-gap histogram; the
/// implicit last bucket is `+Inf`. Gap 0 — a proved-optimal solve — lands
/// under `le="0"`, so that first cumulative count is exactly the number of
/// proofs.
pub const GAP_BUCKETS: [f64; 7] = [0.0, 0.001, 0.005, 0.01, 0.02, 0.05, 0.1];

/// Histogram over relative optimality gaps (`(span − lb) / lb`), with the
/// fixed [`GAP_BUCKETS`] boundaries — gaps live in `[0, ~1]`, so the
/// power-of-two µs buckets of [`LatencyHistogram`] do not fit. The sum is
/// accumulated in millionths so the atomics stay integral and the rendered
/// `_sum` deterministic.
#[derive(Default)]
pub struct GapHistogram {
    buckets: [AtomicU64; GAP_BUCKETS.len() + 1],
    count: AtomicU64,
    sum_millionths: AtomicU64,
}

impl GapHistogram {
    pub fn record(&self, gap: f64) {
        let gap = gap.max(0.0);
        let bucket = GAP_BUCKETS
            .iter()
            .position(|&le| gap <= le)
            .unwrap_or(GAP_BUCKETS.len());
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_millionths
            .fetch_add((gap * 1e6).round() as u64, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Prometheus histogram family with the fixed gap boundaries.
    pub fn to_prometheus(&self, name: &str, help: &str) -> String {
        let mut out = format!("# HELP {name} {help}\n# TYPE {name} histogram\n");
        let mut cumulative = 0u64;
        for (i, le) in GAP_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
        }
        let count = self.count();
        let sum = self.sum_millionths.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {count}\n"));
        out.push_str(&format!("{name}_sum {sum}\n"));
        out.push_str(&format!("{name}_count {count}\n"));
        out
    }

    pub fn to_json(&self) -> String {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count();
        let mean = self
            .sum_millionths
            .load(Ordering::Relaxed)
            .checked_div(count)
            .unwrap_or(0) as f64
            / 1e6;
        Obj::new()
            .u64("count", count)
            .f64("mean", mean)
            .u64_array("bucket_counts", counts.iter().copied())
            .finish()
    }
}

/// Escape a Prometheus label *value* per the text exposition format:
/// backslash, double-quote, and line-feed must be written as `\\`, `\"`,
/// and `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Histogram over microsecond latencies with power-of-two buckets.
#[derive(Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record a raw microsecond sample (what per-phase trace attribution
    /// feeds in). Samples past the last bucket boundary clamp into the
    /// open-ended bucket rather than indexing out of bounds.
    pub fn record_us(&self, us: u64) {
        let bucket = (64 - us.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile from the histogram: the upper bound (in µs) of
    /// the bucket containing the `q`-quantile sample.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return 1u64 << (i + 1);
            }
        }
        u64::MAX
    }

    /// Prometheus histogram family (`# HELP` + `# TYPE` header, then
    /// `*_bucket{le=…}` cumulative counts in seconds, `*_sum`, `*_count`)
    /// for a metric named `name`.
    pub fn to_prometheus(&self, name: &str, help: &str) -> String {
        let mut out = format!("# HELP {name} {help}\n# TYPE {name} histogram\n");
        out.push_str(&self.prometheus_samples(name, ""));
        out
    }

    /// The sample lines of one histogram series without the family header,
    /// so several labeled series (e.g. `phase="apsp"`) can share one
    /// `# TYPE` declaration. `labels` is either empty or `key="value",` —
    /// trailing comma included — and composes with `le`.
    pub fn prometheus_samples(&self, name: &str, labels: &str) -> String {
        let mut out = String::new();
        let mut cumulative = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            let count = bucket.load(Ordering::Relaxed);
            cumulative += count;
            // The last bucket is open-ended: its samples belong to +Inf
            // only — a finite `le` would claim slow solves finished early.
            if count == 0 || i + 1 == LATENCY_BUCKETS {
                continue;
            }
            let le_seconds = (1u64 << (i + 1)) as f64 / 1e6;
            out.push_str(&format!(
                "{name}_bucket{{{labels}le=\"{le_seconds}\"}} {cumulative}\n"
            ));
        }
        let count = self.count();
        let sum = self.sum_us.load(Ordering::Relaxed) as f64 / 1e6;
        out.push_str(&format!("{name}_bucket{{{labels}le=\"+Inf\"}} {count}\n"));
        let bare = labels.trim_end_matches(',');
        if bare.is_empty() {
            out.push_str(&format!("{name}_sum {sum}\n"));
            out.push_str(&format!("{name}_count {count}\n"));
        } else {
            out.push_str(&format!("{name}_sum{{{bare}}} {sum}\n"));
            out.push_str(&format!("{name}_count{{{bare}}} {count}\n"));
        }
        out
    }

    pub fn to_json(&self) -> String {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        // Trim trailing empty buckets for readability; keep at least one.
        let last = counts.iter().rposition(|&c| c > 0).map_or(1, |i| i + 1);
        let count = self.count();
        let mean = self
            .sum_us
            .load(Ordering::Relaxed)
            .checked_div(count)
            .unwrap_or(0);
        Obj::new()
            .u64("count", count)
            .u64("mean_us", mean)
            .u64("p50_us", self.quantile_us(0.50))
            .u64("p90_us", self.quantile_us(0.90))
            .u64("p99_us", self.quantile_us(0.99))
            .u64_array("bucket_counts_pow2_us", counts[..last].iter().copied())
            .finish()
    }
}

/// Point-in-time archive gauges, read from the store at render time
/// (`None` when the server runs without `--store-path`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreGauges {
    /// Live archived records.
    pub entries: u64,
    /// Bytes of live log data.
    pub bytes: u64,
    /// Compaction generation stamp.
    pub generation: u64,
}

/// All counters the service exposes.
#[derive(Default)]
pub struct Metrics {
    pub requests_total: AtomicU64,
    pub solve_requests: AtomicU64,
    pub batch_requests: AtomicU64,
    pub health_requests: AtomicU64,
    pub metrics_requests: AtomicU64,
    pub responses_2xx: AtomicU64,
    pub responses_4xx: AtomicU64,
    pub responses_5xx: AtomicU64,
    pub rejected_overload: AtomicU64,
    /// Solves completed, by concrete strategy (index into
    /// [`Strategy::CONCRETE`]).
    pub per_strategy: [AtomicU64; STRATEGY_COUNT],
    /// Fresh solves whose deadline fired before optimality was proved
    /// (the response is still 200 with the best incumbent).
    pub solve_timeouts: AtomicU64,
    /// Race-strategy solves won, by the winning concrete member (index
    /// into [`Strategy::CONCRETE`]).
    pub race_wins: [AtomicU64; STRATEGY_COUNT],
    /// Fresh solves by the certificate kind backing their lower bound
    /// (index into [`BoundKind::ALL`]).
    pub bound_kinds: [AtomicU64; BOUND_KIND_COUNT],
    /// Relative optimality gaps of fresh solves whose lower bound was
    /// positive (proved-optimal solves record gap 0).
    pub optimality_gap: GapHistogram,
    /// Hub-label distance oracles built (dense-backed oracle solves do
    /// not build labels and are not counted here).
    pub oracle_labels_built: AtomicU64,
    /// Total `(hub, dist)` label entries across hub builds (numerator of
    /// the exported average label size).
    pub oracle_label_entries: AtomicU64,
    /// Total vertices across hub builds (denominator of the average).
    pub oracle_label_vertices: AtomicU64,
    /// Resident bytes of the most recent hub-label build (gauge).
    pub oracle_footprint_bytes: AtomicU64,
    /// Point distance queries served by oracle-routed solves.
    pub oracle_queries: AtomicU64,
    /// `oracle=auto` solves that resolved to the dense matrix (the
    /// instance fit under the engine's footprint threshold).
    pub oracle_dense_fallback: AtomicU64,
    /// End-to-end `/solve` handling latency (includes cache hits).
    pub solve_latency: LatencyHistogram,
    /// Per-phase time attribution from request traces, one histogram per
    /// `dclab_trace::PHASES` entry (`dclab_phase_seconds{phase=…}`).
    pub phase_latency: [LatencyHistogram; PHASE_COUNT],
    /// Solves slow enough to hit the slow-solve log (`--slow-solve-ms`).
    pub slow_solves: AtomicU64,
    /// Archive reads that found a record (LRU miss → store hit).
    pub store_hits: AtomicU64,
    /// Archive reads that fell through to a fresh solve.
    pub store_misses: AtomicU64,
    /// Records write-behind-appended after fresh solves.
    pub store_appends: AtomicU64,
    /// Entries loaded from the archive into the LRU at start.
    pub store_warm_boot: AtomicU64,
    /// Store fsyncs (shutdown drain, explicit flushes).
    pub store_flushes: AtomicU64,
    /// Connections accepted (reactor or blocking accept loop).
    pub conns_accepted: AtomicU64,
    /// Currently open connections (gauge; reactor-maintained).
    pub conns_open: AtomicU64,
    /// Connections reaped by the per-connection idle deadline
    /// (`--conn-idle-ms`): slow-loris defense.
    pub conns_reaped: AtomicU64,
    /// Connections shed with 503 at the connection budget (`--max-conns`),
    /// before any request bytes were read. Distinct from
    /// `rejected_overload`, which counts queue-full sheds.
    pub rejected_conn_budget: AtomicU64,
    /// Worker-pool pressure gauges, refreshed by the reactor tick (the
    /// scrape path must never touch the pool itself — it runs on the
    /// reactor thread and has the fresh values at hand).
    pub pool_queue_depth: AtomicU64,
    pub pool_in_flight: AtomicU64,
    pub pool_workers: AtomicU64,
    /// 1 when serving as a member of a `--cluster` replica set.
    pub cluster_enabled: AtomicU64,
    /// Replica-set size (including this node).
    pub cluster_replicas: AtomicU64,
    /// Solve requests answered locally because this node owns the key.
    pub cluster_local: AtomicU64,
    /// Solve requests proxied to the owning replica.
    pub cluster_forwarded: AtomicU64,
    /// Forwarded solve requests *received* from a peer replica.
    pub cluster_received: AtomicU64,
    /// Proxy attempts that failed and fell back to a local solve.
    pub cluster_fallback: AtomicU64,
}

impl Metrics {
    pub fn record_strategy(&self, used: Strategy) {
        if let Some(i) = Strategy::CONCRETE.iter().position(|&s| s == used) {
            self.per_strategy[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record the concrete member that won a `strategy=race` solve.
    pub fn record_race_winner(&self, winner: Strategy) {
        if let Some(i) = Strategy::CONCRETE.iter().position(|&s| s == winner) {
            self.race_wins[i].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record a fresh solve's lower-bound certificate kind and, when the
    /// bound is positive (gap defined), its relative optimality gap.
    pub fn record_bound(&self, kind: BoundKind, gap: Option<f64>) {
        if let Some(i) = BoundKind::ALL.iter().position(|&k| k == kind) {
            self.bound_kinds[i].fetch_add(1, Ordering::Relaxed);
        }
        if let Some(gap) = gap {
            self.optimality_gap.record(gap);
        }
    }

    /// Record a fresh oracle-routed solve's [`OracleStats`]. `n` is the
    /// instance's vertex count (the denominator of the exported average
    /// label size). Dense-backed solves contribute queries and the
    /// fallback counter but no label shape.
    pub fn record_oracle(&self, o: &OracleStats, n: usize) {
        self.oracle_queries.fetch_add(o.queries, Ordering::Relaxed);
        if o.dense_fallback {
            self.oracle_dense_fallback.fetch_add(1, Ordering::Relaxed);
        }
        if o.backend == "hub" {
            self.oracle_labels_built
                .fetch_add(o.builds as u64, Ordering::Relaxed);
            self.oracle_label_entries
                .fetch_add(o.label_entries, Ordering::Relaxed);
            self.oracle_label_vertices
                .fetch_add(n as u64, Ordering::Relaxed);
            self.oracle_footprint_bytes
                .store(o.footprint_bytes, Ordering::Relaxed);
        }
    }

    /// Mean `(hub, dist)` entries per vertex across every hub build so
    /// far (0 before the first build). Integer floor keeps the JSON
    /// rendering deterministic.
    fn oracle_avg_label_size(&self) -> u64 {
        let entries = self.oracle_label_entries.load(Ordering::Relaxed);
        let vertices = self.oracle_label_vertices.load(Ordering::Relaxed);
        entries.checked_div(vertices).unwrap_or(0)
    }

    /// Record one phase's total µs from a finished request trace. Phase
    /// names outside the `dclab_trace::PHASES` registry are dropped so the
    /// metric set stays bounded.
    pub fn record_phase(&self, name: &str, total_us: u64) {
        if let Some(i) = dclab_trace::phase_index(name) {
            self.phase_latency[i].record_us(total_us);
        }
    }

    /// Record one finished request. This is the single place
    /// `requests_total` is incremented — every path that answers a client
    /// (routed, parse failure, overload shed) calls it exactly once, so
    /// `requests_total == responses_2xx + responses_4xx + responses_5xx`
    /// always reconciles.
    pub fn record_status(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    /// The `/metrics` body in Prometheus text exposition format 0.0.4
    /// (served with `content-type: text/plain; version=0.0.4`).
    /// `store` is `None` when the server runs without a persistent archive
    /// (the store counters still render, pinned at zero, so dashboards
    /// need not special-case the flag).
    pub fn to_prometheus(&self, cache: CacheCounters, store: Option<StoreGauges>) -> String {
        let counter = |name: &str, help: &str, value: u64| {
            format!("# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n")
        };
        let gauge = |name: &str, help: &str, value: u64| {
            format!("# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n")
        };
        let family = |name: &str, help: &str, kind: &str| {
            format!("# HELP {name} {help}\n# TYPE {name} {kind}\n")
        };
        let mut out = String::new();
        out.push_str(&counter(
            "dclab_requests_total",
            "Requests answered, over all endpoints and error paths.",
            self.requests_total.load(Ordering::Relaxed),
        ));
        out.push_str(&family(
            "dclab_endpoint_requests_total",
            "Requests routed, by endpoint.",
            "counter",
        ));
        for (name, v) in [
            ("solve", &self.solve_requests),
            ("batch", &self.batch_requests),
            ("health", &self.health_requests),
            ("metrics", &self.metrics_requests),
        ] {
            out.push_str(&format!(
                "dclab_endpoint_requests_total{{endpoint=\"{}\"}} {}\n",
                escape_label(name),
                v.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&family(
            "dclab_responses_total",
            "Responses sent, by status class.",
            "counter",
        ));
        for (class, v) in [
            ("2xx", &self.responses_2xx),
            ("4xx", &self.responses_4xx),
            ("5xx", &self.responses_5xx),
        ] {
            out.push_str(&format!(
                "dclab_responses_total{{class=\"{}\"}} {}\n",
                escape_label(class),
                v.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&counter(
            "dclab_rejected_overload_total",
            "Requests shed with 503 because the worker queue was full.",
            self.rejected_overload.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_rejected_conn_budget_total",
            "Connections shed with 503 at the connection budget (--max-conns).",
            self.rejected_conn_budget.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_conns_accepted_total",
            "Connections accepted.",
            self.conns_accepted.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_conns_open",
            "Currently open connections.",
            self.conns_open.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_conns_reaped_total",
            "Connections reaped by the idle deadline (--conn-idle-ms).",
            self.conns_reaped.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_pool_queue_depth",
            "Jobs waiting in the worker-pool queue.",
            self.pool_queue_depth.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_pool_in_flight",
            "Jobs currently executing on pool workers.",
            self.pool_in_flight.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_pool_workers",
            "Worker threads in the solve pool.",
            self.pool_workers.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_cluster_enabled",
            "1 when serving as a member of a --cluster replica set.",
            self.cluster_enabled.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_cluster_replicas",
            "Replica-set size (including this node).",
            self.cluster_replicas.load(Ordering::Relaxed),
        ));
        out.push_str(&family(
            "dclab_cluster_requests_total",
            "Cluster-routed solve requests, by route taken.",
            "counter",
        ));
        for (route, v) in [
            ("local", &self.cluster_local),
            ("forwarded", &self.cluster_forwarded),
            ("received", &self.cluster_received),
            ("fallback", &self.cluster_fallback),
        ] {
            out.push_str(&format!(
                "dclab_cluster_requests_total{{route=\"{}\"}} {}\n",
                escape_label(route),
                v.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&counter(
            "dclab_cache_hits_total",
            "Report-cache hits.",
            cache.hits,
        ));
        out.push_str(&counter(
            "dclab_cache_misses_total",
            "Report-cache misses (fresh solves).",
            cache.misses,
        ));
        out.push_str(&counter(
            "dclab_cache_coalesced_total",
            "Requests that joined an identical in-flight solve.",
            cache.coalesced,
        ));
        out.push_str(&counter(
            "dclab_cache_evictions_total",
            "Cache entries evicted under the memory budget.",
            cache.evictions,
        ));
        out.push_str(&gauge(
            "dclab_cache_entries",
            "Live report-cache entries.",
            cache.entries,
        ));
        out.push_str(&gauge(
            "dclab_cache_bytes",
            "Approximate report-cache bytes.",
            cache.bytes,
        ));
        out.push_str(&gauge(
            "dclab_store_enabled",
            "1 when a persistent solution archive is attached.",
            store.is_some() as u64,
        ));
        out.push_str(&counter(
            "dclab_store_hits_total",
            "LRU misses answered from the persistent archive.",
            self.store_hits.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_store_misses_total",
            "Archive lookups that fell through to a fresh solve.",
            self.store_misses.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_store_appends_total",
            "Fresh solves write-behind-appended to the archive.",
            self.store_appends.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_store_flushes_total",
            "Archive fsyncs (shutdown drain, explicit flushes).",
            self.store_flushes.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_store_warm_boot_entries",
            "Entries loaded from the archive into the cache at start.",
            self.store_warm_boot.load(Ordering::Relaxed),
        ));
        let gauges = store.unwrap_or_default();
        out.push_str(&gauge(
            "dclab_store_entries",
            "Live records in the persistent archive.",
            gauges.entries,
        ));
        out.push_str(&gauge(
            "dclab_store_bytes",
            "Bytes of live archive log data.",
            gauges.bytes,
        ));
        out.push_str(&gauge(
            "dclab_store_generation",
            "Archive compaction generation stamp.",
            gauges.generation,
        ));
        out.push_str(&family(
            "dclab_solves_total",
            "Fresh solves completed, by concrete strategy.",
            "counter",
        ));
        for (s, count) in Strategy::CONCRETE.iter().zip(self.per_strategy.iter()) {
            out.push_str(&format!(
                "dclab_solves_total{{strategy=\"{}\"}} {}\n",
                escape_label(s.name()),
                count.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&counter(
            "dclab_solve_timeouts_total",
            "Fresh solves whose deadline fired before an optimality proof.",
            self.solve_timeouts.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_slow_solves_total",
            "Solves slow enough to be written to the slow-solve log.",
            self.slow_solves.load(Ordering::Relaxed),
        ));
        out.push_str(&family(
            "dclab_race_wins_total",
            "Race-strategy solves won, by winning member.",
            "counter",
        ));
        for (s, count) in Strategy::CONCRETE.iter().zip(self.race_wins.iter()) {
            out.push_str(&format!(
                "dclab_race_wins_total{{strategy=\"{}\"}} {}\n",
                escape_label(s.name()),
                count.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&family(
            "dclab_bound_kind_total",
            "Fresh solves, by lower-bound certificate kind.",
            "counter",
        ));
        for (k, count) in BoundKind::ALL.iter().zip(self.bound_kinds.iter()) {
            out.push_str(&format!(
                "dclab_bound_kind_total{{kind=\"{}\"}} {}\n",
                escape_label(k.name()),
                count.load(Ordering::Relaxed)
            ));
        }
        out.push_str(&self.optimality_gap.to_prometheus(
            "dclab_optimality_gap",
            "Relative optimality gap (span - lower_bound) / lower_bound of fresh solves.",
        ));
        out.push_str(&counter(
            "dclab_oracle_labels_built_total",
            "Hub-label distance oracles built for fresh solves.",
            self.oracle_labels_built.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_oracle_avg_label_size",
            "Mean (hub, dist) label entries per vertex across hub builds.",
            self.oracle_avg_label_size(),
        ));
        out.push_str(&counter(
            "dclab_oracle_query_total",
            "Point distance queries served by oracle-routed solves.",
            self.oracle_queries.load(Ordering::Relaxed),
        ));
        out.push_str(&gauge(
            "dclab_oracle_footprint_bytes",
            "Resident bytes of the most recent hub-label build.",
            self.oracle_footprint_bytes.load(Ordering::Relaxed),
        ));
        out.push_str(&counter(
            "dclab_oracle_dense_fallback_total",
            "oracle=auto solves that resolved to the dense matrix.",
            self.oracle_dense_fallback.load(Ordering::Relaxed),
        ));
        out.push_str(&self.solve_latency.to_prometheus(
            "dclab_solve_latency_seconds",
            "End-to-end /solve handling latency (cache hits included).",
        ));
        out.push_str(&family(
            "dclab_phase_seconds",
            "Per-phase solve time attribution from request traces.",
            "histogram",
        ));
        for (i, name) in dclab_trace::PHASES.iter().enumerate() {
            let h = &self.phase_latency[i];
            if h.count() == 0 {
                continue;
            }
            let labels = format!("phase=\"{}\",", escape_label(name));
            out.push_str(&h.prometheus_samples("dclab_phase_seconds", &labels));
        }
        out
    }

    /// The `/metrics?format=json` body.
    pub fn to_json(&self, cache: CacheCounters, store: Option<StoreGauges>) -> String {
        let strategies = Strategy::CONCRETE
            .iter()
            .zip(self.per_strategy.iter())
            .fold(Obj::new(), |obj, (s, count)| {
                obj.u64(s.name(), count.load(Ordering::Relaxed))
            })
            .finish();
        let race_wins = Strategy::CONCRETE
            .iter()
            .zip(self.race_wins.iter())
            .fold(Obj::new(), |obj, (s, count)| {
                obj.u64(s.name(), count.load(Ordering::Relaxed))
            })
            .finish();
        let bound_kinds = BoundKind::ALL
            .iter()
            .zip(self.bound_kinds.iter())
            .fold(Obj::new(), |obj, (k, count)| {
                obj.u64(k.name(), count.load(Ordering::Relaxed))
            })
            .finish();
        let phases = dclab_trace::PHASES
            .iter()
            .enumerate()
            .filter(|(i, _)| self.phase_latency[*i].count() > 0)
            .fold(Obj::new(), |obj, (i, name)| {
                obj.raw(name, &self.phase_latency[i].to_json())
            })
            .finish();
        let cache_json = Obj::new()
            .u64("hits", cache.hits)
            .u64("misses", cache.misses)
            .u64("coalesced", cache.coalesced)
            .u64("evictions", cache.evictions)
            .u64("entries", cache.entries)
            .u64("bytes", cache.bytes)
            .finish();
        let serve_json = Obj::new()
            .u64(
                "conns_accepted",
                self.conns_accepted.load(Ordering::Relaxed),
            )
            .u64("conns_open", self.conns_open.load(Ordering::Relaxed))
            .u64("conns_reaped", self.conns_reaped.load(Ordering::Relaxed))
            .u64(
                "rejected_conn_budget",
                self.rejected_conn_budget.load(Ordering::Relaxed),
            )
            .u64(
                "pool_queue_depth",
                self.pool_queue_depth.load(Ordering::Relaxed),
            )
            .u64(
                "pool_in_flight",
                self.pool_in_flight.load(Ordering::Relaxed),
            )
            .u64("pool_workers", self.pool_workers.load(Ordering::Relaxed))
            .finish();
        let cluster_json = Obj::new()
            .bool("enabled", self.cluster_enabled.load(Ordering::Relaxed) == 1)
            .u64("replicas", self.cluster_replicas.load(Ordering::Relaxed))
            .u64("local", self.cluster_local.load(Ordering::Relaxed))
            .u64("forwarded", self.cluster_forwarded.load(Ordering::Relaxed))
            .u64("received", self.cluster_received.load(Ordering::Relaxed))
            .u64("fallback", self.cluster_fallback.load(Ordering::Relaxed))
            .finish();
        let oracle_json = Obj::new()
            .u64(
                "labels_built",
                self.oracle_labels_built.load(Ordering::Relaxed),
            )
            .u64("avg_label_size", self.oracle_avg_label_size())
            .u64("query_total", self.oracle_queries.load(Ordering::Relaxed))
            .u64(
                "footprint_bytes",
                self.oracle_footprint_bytes.load(Ordering::Relaxed),
            )
            .u64(
                "dense_fallback",
                self.oracle_dense_fallback.load(Ordering::Relaxed),
            )
            .finish();
        let gauges = store.unwrap_or_default();
        let store_json = Obj::new()
            .bool("enabled", store.is_some())
            .u64("hits", self.store_hits.load(Ordering::Relaxed))
            .u64("misses", self.store_misses.load(Ordering::Relaxed))
            .u64("appends", self.store_appends.load(Ordering::Relaxed))
            .u64("flushes", self.store_flushes.load(Ordering::Relaxed))
            .u64("warm_boot", self.store_warm_boot.load(Ordering::Relaxed))
            .u64("entries", gauges.entries)
            .u64("bytes", gauges.bytes)
            .u64("generation", gauges.generation)
            .finish();
        Obj::new()
            .u64(
                "requests_total",
                self.requests_total.load(Ordering::Relaxed),
            )
            .u64(
                "solve_requests",
                self.solve_requests.load(Ordering::Relaxed),
            )
            .u64(
                "batch_requests",
                self.batch_requests.load(Ordering::Relaxed),
            )
            .u64(
                "health_requests",
                self.health_requests.load(Ordering::Relaxed),
            )
            .u64(
                "metrics_requests",
                self.metrics_requests.load(Ordering::Relaxed),
            )
            .u64("responses_2xx", self.responses_2xx.load(Ordering::Relaxed))
            .u64("responses_4xx", self.responses_4xx.load(Ordering::Relaxed))
            .u64("responses_5xx", self.responses_5xx.load(Ordering::Relaxed))
            .u64(
                "rejected_overload",
                self.rejected_overload.load(Ordering::Relaxed),
            )
            .u64(
                "solve_timeouts",
                self.solve_timeouts.load(Ordering::Relaxed),
            )
            .u64("slow_solves", self.slow_solves.load(Ordering::Relaxed))
            .raw("serve", &serve_json)
            .raw("cluster", &cluster_json)
            .raw("cache", &cache_json)
            .raw("store", &store_json)
            .raw("strategies", &strategies)
            .raw("race_wins", &race_wins)
            .raw("bound_kinds", &bound_kinds)
            .raw("optimality_gap", &self.optimality_gap.to_json())
            .raw("oracle", &oracle_json)
            .raw("solve_latency", &self.solve_latency.to_json())
            .raw("phases", &phases)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for us in [1u64, 3, 3, 3, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        // p50 falls in the [2,4) bucket → upper bound 4.
        assert_eq!(h.quantile_us(0.50), 4);
        assert!(h.quantile_us(0.99) >= 4096);
        let json = h.to_json();
        assert!(json.contains("\"count\":7"));
        assert!(json.contains("\"p50_us\":4"));
    }

    #[test]
    fn quantile_at_exact_bucket_boundaries() {
        // A sample exactly on a power-of-two boundary belongs to the bucket
        // it *opens*: 2^i lands in [2^i, 2^{i+1}), so the reported quantile
        // upper bound is 2^{i+1}.
        for i in 0..8u32 {
            let h = LatencyHistogram::default();
            h.record_us(1u64 << i);
            assert_eq!(h.quantile_us(0.5), 1u64 << (i + 1), "boundary 2^{i}");
            assert_eq!(h.quantile_us(1.0), 1u64 << (i + 1));
        }
        // Zero clamps up into the first bucket rather than underflowing.
        let h = LatencyHistogram::default();
        h.record_us(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 2);
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_us(0.0), 0);
        assert_eq!(h.quantile_us(0.5), 0);
        assert_eq!(h.quantile_us(1.0), 0);
        assert!(h.to_json().contains("\"count\":0"));
        // Exposition still renders a complete (all-zero) histogram family.
        let text = h.to_prometheus("x_seconds", "help");
        assert!(text.contains("x_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("x_seconds_count 0\n"));
    }

    #[test]
    fn huge_samples_clamp_into_the_open_ended_bucket() {
        let h = LatencyHistogram::default();
        // Everything at or past 2^{LATENCY_BUCKETS-1} µs shares the last
        // bucket — including u64::MAX, which must not index out of bounds.
        h.record_us(1u64 << (LATENCY_BUCKETS - 1));
        h.record_us(u64::MAX);
        h.record(Duration::from_secs(u64::MAX / 1_000_000));
        assert_eq!(h.count(), 3);
        // The open-ended bucket has no finite upper bound to report.
        assert!(h.quantile_us(0.5) >= 1u64 << LATENCY_BUCKETS);
        // Prometheus: the last bucket renders only under +Inf, never a
        // finite le.
        let text = h.to_prometheus("x_seconds", "help");
        assert!(text.contains("x_seconds_bucket{le=\"+Inf\"} 3\n"));
        assert_eq!(text.matches("_bucket{le=").count(), 1, "{text}");
    }

    #[test]
    fn prometheus_and_json_agree() {
        let h = LatencyHistogram::default();
        let samples = [1u64, 5, 5, 130, 4000, 4000, 4001, 70_000];
        for us in samples {
            h.record_us(us);
        }
        let text = h.to_prometheus("x_seconds", "help");
        let json = h.to_json();
        // Totals agree.
        assert!(text.contains(&format!("x_seconds_count {}\n", h.count())));
        assert!(json.contains(&format!("\"count\":{}", h.count())));
        let sum: u64 = samples.iter().sum();
        assert!(text.contains(&format!("x_seconds_sum {}\n", sum as f64 / 1e6)));
        assert!(json.contains(&format!("\"mean_us\":{}", sum / samples.len() as u64)));
        // The +Inf cumulative count equals the total in both renderings.
        assert!(text.contains(&format!("x_seconds_bucket{{le=\"+Inf\"}} {}\n", h.count())));
        // Per-bucket counts: the JSON buckets sum to the Prometheus count.
        let bucket_part = json
            .split("\"bucket_counts_pow2_us\":[")
            .nth(1)
            .and_then(|s| s.split(']').next())
            .unwrap();
        let bucket_sum: u64 = bucket_part
            .split(',')
            .map(|t| t.parse::<u64>().unwrap())
            .sum();
        assert_eq!(bucket_sum, h.count());
        // Quantiles in the JSON match quantile_us directly.
        assert!(json.contains(&format!("\"p99_us\":{}", h.quantile_us(0.99))));
    }

    #[test]
    fn label_values_escape_prometheus_metacharacters() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("a\"b"), "a\\\"b");
        assert_eq!(escape_label("a\nb"), "a\\nb");
        assert_eq!(escape_label("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn phase_histograms_render_per_phase() {
        let m = Metrics::default();
        m.record_phase("apsp", 100);
        m.record_phase("lk", 900);
        m.record_phase("lk", 1_100);
        m.record_phase("not-a-registered-phase", 5);
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert_eq!(text.matches("# TYPE dclab_phase_seconds").count(), 1);
        assert!(text.contains("dclab_phase_seconds_bucket{phase=\"apsp\",le=\"0.000128\"} 1\n"));
        assert!(text.contains("dclab_phase_seconds_count{phase=\"lk\"} 2\n"));
        assert!(!text.contains("not-a-registered-phase"));
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains("\"phases\":{\"apsp\":{\"count\":1"));
        assert!(json.contains("\"lk\":{\"count\":2"));
    }

    #[test]
    fn metrics_json_shape() {
        let m = Metrics::default();
        m.record_strategy(Strategy::Exact);
        m.record_strategy(Strategy::Exact);
        m.record_status(200);
        m.record_status(422);
        m.record_status(200);
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains("\"requests_total\":3"));
        assert!(json.contains("\"responses_2xx\":2"));
        assert!(json.contains("\"exact\":2"));
        assert!(json.contains("\"responses_4xx\":1"));
        assert!(json.contains("\"cache\":{\"hits\":0"));
        assert!(json.contains("\"store\":{\"enabled\":false"));
        assert!(json.contains("\"phases\":{}"));
    }

    #[test]
    fn prometheus_exposition_shape() {
        let m = Metrics::default();
        m.record_strategy(Strategy::Exact);
        m.record_status(200);
        m.record_status(422);
        m.solve_latency.record(Duration::from_micros(100));
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("# TYPE dclab_requests_total counter\ndclab_requests_total 2\n"));
        assert!(text.contains("# HELP dclab_requests_total "));
        assert!(text.contains("dclab_responses_total{class=\"2xx\"} 1\n"));
        assert!(text.contains("dclab_responses_total{class=\"4xx\"} 1\n"));
        assert!(text.contains("dclab_solves_total{strategy=\"exact\"} 1\n"));
        assert!(text.contains("dclab_cache_hits_total 0\n"));
        // Histogram: 100 µs lands in the [64,128) µs bucket → le 128/1e6.
        assert!(text.contains("# TYPE dclab_solve_latency_seconds histogram"));
        assert!(text.contains("dclab_solve_latency_seconds_bucket{le=\"0.000128\"} 1\n"));
        assert!(text.contains("dclab_solve_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("dclab_solve_latency_seconds_count 1\n"));
        // One TYPE line per metric family, even with several samples.
        assert_eq!(text.matches("# TYPE dclab_solves_total").count(), 1);
        assert_eq!(text.matches("# TYPE dclab_responses_total").count(), 1);
        // Store counters render even when the archive is disabled.
        assert!(text.contains("dclab_store_enabled 0\n"));
        assert!(text.contains("dclab_store_hits_total 0\n"));
    }

    #[test]
    fn timeout_and_race_counters_render() {
        let m = Metrics::default();
        m.solve_timeouts.fetch_add(2, Ordering::Relaxed);
        m.record_race_winner(Strategy::Heuristic);
        m.record_race_winner(Strategy::Heuristic);
        m.record_race_winner(Strategy::BranchBound);
        m.record_race_winner(Strategy::Race); // not concrete: ignored
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_solve_timeouts_total 2\n"));
        assert!(text.contains("dclab_race_wins_total{strategy=\"heuristic\"} 2\n"));
        assert!(text.contains("dclab_race_wins_total{strategy=\"branch-bound\"} 1\n"));
        assert!(text.contains("dclab_race_wins_total{strategy=\"greedy\"} 0\n"));
        assert_eq!(text.matches("# TYPE dclab_race_wins_total").count(), 1);
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains("\"solve_timeouts\":2"));
        assert!(json.contains("\"race_wins\":{"));
        assert!(json.contains("\"heuristic\":2"));
    }

    #[test]
    fn bound_kind_and_gap_metrics_render() {
        let m = Metrics::default();
        // A fresh server renders the full all-zero families.
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_bound_kind_total{kind=\"degree\"} 0\n"));
        assert!(text.contains("dclab_optimality_gap_count 0\n"));
        // A proof (gap 0), a near-optimal timeout, and a bound-less solve.
        m.record_bound(BoundKind::ProvedOptimal, Some(0.0));
        m.record_bound(BoundKind::HkAscent, Some(0.0075));
        m.record_bound(BoundKind::Degree, None);
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_bound_kind_total{kind=\"proved-optimal\"} 1\n"));
        assert!(text.contains("dclab_bound_kind_total{kind=\"hk-ascent\"} 1\n"));
        assert!(text.contains("dclab_bound_kind_total{kind=\"degree\"} 1\n"));
        assert!(text.contains("dclab_bound_kind_total{kind=\"one-tree\"} 0\n"));
        assert_eq!(text.matches("# TYPE dclab_bound_kind_total").count(), 1);
        // Gap histogram: the proof sits alone under le="0"; the 0.0075 gap
        // first appears cumulatively at le="0.01"; the undefined gap never
        // records.
        assert!(text.contains("dclab_optimality_gap_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("dclab_optimality_gap_bucket{le=\"0.005\"} 1\n"));
        assert!(text.contains("dclab_optimality_gap_bucket{le=\"0.01\"} 2\n"));
        assert!(text.contains("dclab_optimality_gap_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("dclab_optimality_gap_sum 0.0075\n"));
        assert!(text.contains("dclab_optimality_gap_count 2\n"));
        assert_prometheus_grammar(&text);
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains("\"bound_kinds\":{\"degree\":1,\"one-tree\":0,"));
        assert!(json.contains("\"optimality_gap\":{\"count\":2,\"mean\":0.003750"));
    }

    #[test]
    fn oracle_metrics_render_and_average_is_cumulative() {
        let m = Metrics::default();
        // A fresh server renders the full (all-zero) oracle family set.
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_oracle_labels_built_total 0\n"));
        assert!(text.contains("dclab_oracle_avg_label_size 0\n"));
        // One hub solve: 50 vertices, 400 entries, then a dense fallback.
        m.record_oracle(
            &OracleStats {
                backend: "hub".into(),
                builds: 1,
                label_entries: 400,
                footprint_bytes: 4800,
                queries: 120,
                dense_fallback: false,
            },
            50,
        );
        m.record_oracle(
            &OracleStats {
                backend: "dense".into(),
                builds: 1,
                label_entries: 0,
                footprint_bytes: 400,
                queries: 30,
                dense_fallback: true,
            },
            10,
        );
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_oracle_labels_built_total 1\n"));
        assert!(text.contains("dclab_oracle_avg_label_size 8\n"));
        assert!(text.contains("dclab_oracle_query_total 150\n"));
        // The dense solve's matrix bytes never pollute the hub gauge.
        assert!(text.contains("dclab_oracle_footprint_bytes 4800\n"));
        assert!(text.contains("dclab_oracle_dense_fallback_total 1\n"));
        assert_prometheus_grammar(&text);
        // A second hub build folds into the cumulative average.
        m.record_oracle(
            &OracleStats {
                backend: "hub".into(),
                builds: 1,
                label_entries: 200,
                footprint_bytes: 2400,
                queries: 60,
                dense_fallback: false,
            },
            50,
        );
        let json = m.to_json(CacheCounters::default(), None);
        assert!(json.contains(
            "\"oracle\":{\"labels_built\":2,\"avg_label_size\":6,\"query_total\":210,\
             \"footprint_bytes\":2400,\"dense_fallback\":1}"
        ));
    }

    #[test]
    fn connection_pool_and_cluster_metrics_render() {
        let m = Metrics::default();
        m.conns_accepted.fetch_add(9, Ordering::Relaxed);
        m.conns_open.store(4, Ordering::Relaxed);
        m.conns_reaped.fetch_add(2, Ordering::Relaxed);
        m.rejected_conn_budget.fetch_add(1, Ordering::Relaxed);
        m.pool_queue_depth.store(3, Ordering::Relaxed);
        m.pool_in_flight.store(2, Ordering::Relaxed);
        m.pool_workers.store(8, Ordering::Relaxed);
        m.cluster_enabled.store(1, Ordering::Relaxed);
        m.cluster_replicas.store(2, Ordering::Relaxed);
        m.cluster_local.fetch_add(5, Ordering::Relaxed);
        m.cluster_forwarded.fetch_add(3, Ordering::Relaxed);
        let text = m.to_prometheus(CacheCounters::default(), None);
        assert!(text.contains("dclab_conns_accepted_total 9\n"));
        assert!(text.contains("dclab_conns_open 4\n"));
        assert!(text.contains("dclab_conns_reaped_total 2\n"));
        assert!(text.contains("dclab_rejected_conn_budget_total 1\n"));
        assert!(text.contains("dclab_pool_queue_depth 3\n"));
        assert!(text.contains("dclab_pool_in_flight 2\n"));
        assert!(text.contains("dclab_pool_workers 8\n"));
        assert!(text.contains("dclab_cluster_enabled 1\n"));
        assert!(text.contains("dclab_cluster_requests_total{route=\"local\"} 5\n"));
        assert!(text.contains("dclab_cluster_requests_total{route=\"forwarded\"} 3\n"));
        assert!(text.contains("dclab_cluster_requests_total{route=\"fallback\"} 0\n"));
        assert_eq!(
            text.matches("# TYPE dclab_cluster_requests_total").count(),
            1
        );
        let json = m.to_json(CacheCounters::default(), None);
        assert!(
            json.contains("\"serve\":{\"conns_accepted\":9,\"conns_open\":4,\"conns_reaped\":2")
        );
        assert!(json.contains("\"cluster\":{\"enabled\":true,\"replicas\":2,\"local\":5"));
        assert_prometheus_grammar(&text);
    }

    #[test]
    fn store_gauges_render_when_enabled() {
        let m = Metrics::default();
        m.store_hits.fetch_add(3, Ordering::Relaxed);
        m.store_warm_boot.store(7, Ordering::Relaxed);
        let gauges = StoreGauges {
            entries: 7,
            bytes: 1234,
            generation: 2,
        };
        let text = m.to_prometheus(CacheCounters::default(), Some(gauges));
        assert!(text.contains("dclab_store_enabled 1\n"));
        assert!(text.contains("dclab_store_hits_total 3\n"));
        assert!(text.contains("dclab_store_entries 7\n"));
        assert!(text.contains("dclab_store_bytes 1234\n"));
        assert!(text.contains("dclab_store_generation 2\n"));
        let json = m.to_json(CacheCounters::default(), Some(gauges));
        assert!(json.contains("\"store\":{\"enabled\":true,\"hits\":3"));
        assert!(json.contains("\"warm_boot\":7"));
        assert!(json.contains("\"generation\":2"));
    }

    /// Minimal validator for the Prometheus text exposition format: every
    /// line is a `# HELP`/`# TYPE` comment or a `name[{labels}] value`
    /// sample whose family was declared, label values use only the legal
    /// escapes, and values parse as floats.
    fn assert_prometheus_grammar(text: &str) {
        use std::collections::HashSet;
        fn is_name(s: &str) -> bool {
            !s.is_empty()
                && !s.starts_with(|c: char| c.is_ascii_digit())
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        fn check_labels(s: &str) {
            let mut rest = s;
            while !rest.is_empty() {
                let eq = rest.find("=\"").expect("label has ='\"'");
                assert!(is_name(&rest[..eq]), "bad label name in {s}");
                rest = &rest[eq + 2..];
                let mut end = None;
                let mut chars = rest.char_indices();
                while let Some((i, c)) = chars.next() {
                    match c {
                        '\\' => {
                            let next = chars.next().map(|(_, c)| c);
                            assert!(
                                matches!(next, Some('\\' | '"' | 'n')),
                                "illegal escape in label value: {s}"
                            );
                        }
                        '"' => {
                            end = Some(i);
                            break;
                        }
                        '\n' => panic!("raw newline in label value: {s}"),
                        _ => {}
                    }
                }
                rest = &rest[end.expect("unterminated label value") + 1..];
                match rest.strip_prefix(',') {
                    Some(r) => rest = r,
                    None => assert!(rest.is_empty(), "junk after label value: {s}"),
                }
            }
        }
        let mut declared: HashSet<&str> = HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(is_name(name), "bad HELP target: {line}");
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap();
                let kind = it.next().unwrap_or("");
                assert!(is_name(name), "bad TYPE target: {line}");
                assert!(
                    ["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind),
                    "bad TYPE kind: {line}"
                );
                declared.insert(name);
                continue;
            }
            assert!(!line.starts_with('#'), "unknown comment form: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample needs a value");
            assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
            let name = match series.split_once('{') {
                Some((n, labels)) => {
                    let labels = labels.strip_suffix('}').expect("unterminated label set");
                    check_labels(labels);
                    n
                }
                None => series,
            };
            assert!(is_name(name), "bad metric name: {line}");
            let family_declared = declared.contains(name)
                || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                    name.strip_suffix(suffix)
                        .is_some_and(|b| declared.contains(b))
                });
            assert!(family_declared, "sample without TYPE declaration: {line}");
        }
    }

    #[test]
    fn full_exposition_obeys_text_format_grammar() {
        let m = Metrics::default();
        m.record_status(200);
        m.record_status(503);
        m.record_strategy(Strategy::Heuristic);
        m.record_race_winner(Strategy::Exact);
        m.solve_latency.record(Duration::from_micros(250));
        m.record_phase("solve", 240);
        m.record_phase("apsp", 90);
        m.record_phase("lk", 120);
        let gauges = StoreGauges {
            entries: 3,
            bytes: 99,
            generation: 1,
        };
        assert_prometheus_grammar(&m.to_prometheus(CacheCounters::default(), Some(gauges)));
        // And the empty server renders a valid exposition too.
        assert_prometheus_grammar(
            &Metrics::default().to_prometheus(CacheCounters::default(), None),
        );
    }
}
