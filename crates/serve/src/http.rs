//! Minimal HTTP/1.1 on `std::net` — exactly what the solve service needs
//! and nothing more: request parsing with bounded header/body sizes,
//! percent-decoded query strings, keep-alive, and response writing.
//!
//! Not a general web server: no chunked transfer encoding, no multipart,
//! no TLS. Clients that need those get a clean 4xx, not undefined behavior.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body (instances beyond this are absurd for
/// small-diameter graphs and would only stall a worker).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/solve`.
    pub path: String,
    /// Percent-decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Minor HTTP version from the request line (`0` for HTTP/1.0, `1`
    /// for HTTP/1.1). Decides the keep-alive default.
    pub version_minor: u8,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value (name matched case-insensitively at parse time).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to keep the connection open? HTTP/1.1 defaults
    /// to keep-alive unless `Connection: close`; HTTP/1.0 defaults to
    /// close unless `Connection: keep-alive` — a 1.0 client without that
    /// header would otherwise hang waiting for EOF.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version_minor >= 1,
        }
    }
}

/// Why a request could not be parsed. `ConnectionClosed` is the clean
/// end-of-keep-alive case, not an error to report.
#[derive(Debug)]
pub enum ParseError {
    ConnectionClosed,
    Io(std::io::Error),
    /// Malformed request; the `&'static str` is a safe-to-echo reason.
    Bad(&'static str),
    /// Head or body over the fixed limits (→ 431/413).
    TooLarge(&'static str),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Read one `\n`-terminated line into `buf`, buffering at most `limit`
/// bytes. `BufRead::read_line` alone would grow without bound on a line
/// that never terminates — a trivial memory-exhaustion attack on a
/// long-running service.
fn read_line_bounded(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    limit: usize,
) -> Result<usize, ParseError> {
    let mut raw: Vec<u8> = Vec::new();
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            break;
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if raw.len() + pos + 1 > limit {
                return Err(ParseError::TooLarge("header line too large"));
            }
            raw.extend_from_slice(&chunk[..=pos]);
            reader.consume(pos + 1);
            break;
        }
        if raw.len() + chunk.len() > limit {
            return Err(ParseError::TooLarge("header line too large"));
        }
        raw.extend_from_slice(chunk);
        let n = chunk.len();
        reader.consume(n);
    }
    let s = std::str::from_utf8(&raw).map_err(|_| ParseError::Bad("non-UTF-8 header bytes"))?;
    buf.push_str(s);
    Ok(s.len())
}

/// Read one request from the stream (blocking; honors the stream's read
/// timeout). Returns `ConnectionClosed` on EOF before any byte.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ParseError> {
    let mut head = String::new();
    let mut first_line = String::new();
    let n = read_line_bounded(reader, &mut first_line, MAX_HEAD_BYTES)?;
    if n == 0 {
        return Err(ParseError::ConnectionClosed);
    }
    loop {
        let mut line = String::new();
        let remaining = MAX_HEAD_BYTES.saturating_sub(head.len() + first_line.len());
        let n = read_line_bounded(reader, &mut line, remaining.max(2))?;
        if n == 0 {
            return Err(ParseError::Bad("truncated header block"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        head.push_str(&line);
        if head.len() + first_line.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("header block too large"));
        }
    }

    let mut parts = first_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Bad("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ParseError::Bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Bad("missing HTTP version"))?;
    let version_minor = match version {
        "HTTP/1.0" => 0,
        "HTTP/1.1" => 1,
        _ => return Err(ParseError::Bad("unsupported HTTP version")),
    };

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw).ok_or(ParseError::Bad("bad percent-encoding in path"))?;
    let query = match query_raw {
        Some(q) => parse_query(q).ok_or(ParseError::Bad("bad percent-encoding in query"))?,
        None => Vec::new(),
    };

    let mut headers = Vec::new();
    for line in head.lines() {
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Bad("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Bad("transfer-encoding not supported"));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Bad("bad content-length"))?,
        None => 0,
    };
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
        version_minor,
    })
}

/// Parse `a=1&b=x%20y` (missing `=` means empty value).
fn parse_query(q: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, ""),
        };
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(out)
}

/// Decode `%XX` escapes and `+`-as-space. Returns `None` on malformed
/// escapes or non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Write one response. `extra_headers` are `(name, value)` pairs appended
/// after the standard set. The default `content-type` is
/// `application/json`; an `extra_headers` entry named `content-type`
/// (case-insensitive) **replaces** the default instead of duplicating it,
/// so non-JSON endpoints (Prometheus `/metrics`) can declare themselves.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    let caller_sets_content_type = extra_headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("content-type"));
    let mut head = format!("HTTP/1.1 {} {}\r\n", status, reason(status));
    if !caller_sets_content_type {
        head.push_str("content-type: application/json\r\n");
    }
    head.push_str(&format!(
        "content-length: {}\r\nconnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    ));
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("2%2C1").as_deref(), Some("2,1"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert!(percent_decode("bad%zz").is_none());
        assert!(percent_decode("trunc%2").is_none());
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("p=2%2C1&strategy=auto&flag").unwrap();
        assert_eq!(
            q,
            vec![
                ("p".into(), "2,1".into()),
                ("strategy".into(), "auto".into()),
                ("flag".into(), "".into()),
            ]
        );
    }

    #[test]
    fn reasons_cover_served_codes() {
        for code in [200, 400, 404, 405, 413, 422, 431, 500, 503] {
            assert!(!reason(code).is_empty(), "{code}");
        }
    }

    #[test]
    fn keep_alive_defaults_follow_http_version() {
        let req = |version_minor, connection: Option<&str>| Request {
            method: "GET".into(),
            path: "/healthz".into(),
            query: vec![],
            headers: connection
                .map(|v| vec![("connection".to_string(), v.to_string())])
                .unwrap_or_default(),
            body: vec![],
            version_minor,
        };
        // HTTP/1.1: keep-alive unless told otherwise.
        assert!(req(1, None).keep_alive());
        assert!(!req(1, Some("close")).keep_alive());
        // HTTP/1.0: close unless the client opts in.
        assert!(!req(0, None).keep_alive());
        assert!(req(0, Some("keep-alive")).keep_alive());
        assert!(req(0, Some("Keep-Alive")).keep_alive());
        assert!(!req(0, Some("close")).keep_alive());
    }

    /// Feed raw bytes to `read_request` over a real socket, optionally
    /// closing the write side mid-request (EOF injection).
    fn parse_raw(bytes: &'static [u8]) -> Result<Request, ParseError> {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(bytes).unwrap();
            // EOF: close the stream without completing the request.
            drop(s);
        });
        let (stream, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(stream);
        let result = read_request(&mut reader);
        writer.join().unwrap();
        result
    }

    #[test]
    fn truncated_request_line_does_not_parse() {
        // EOF in the middle of the request line: the bytes so far must
        // never come back as a complete request.
        let r = parse_raw(b"GET /healthz HT");
        assert!(
            matches!(r, Err(ParseError::Bad(_))),
            "mid-request-line EOF parsed as {r:?}"
        );
    }

    #[test]
    fn truncated_header_block_does_not_parse() {
        // Full request line but EOF before the blank line.
        let r = parse_raw(b"GET /healthz HTTP/1.1\r\nhost: x\r\n");
        assert!(
            matches!(r, Err(ParseError::Bad("truncated header block"))),
            "mid-headers EOF parsed as {r:?}"
        );
    }

    #[test]
    fn complete_request_still_parses() {
        let r = parse_raw(b"GET /healthz?x=1 HTTP/1.0\r\nhost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.version_minor, 0);
        assert!(!r.keep_alive());
    }
}
