//! Minimal HTTP/1.1 on `std::net` — exactly what the solve service needs
//! and nothing more: request parsing with bounded header/body sizes,
//! percent-decoded query strings, keep-alive, and response writing.
//!
//! The parser is **incremental**: [`try_parse`] inspects a byte slice and
//! either produces a complete [`Request`] plus the number of bytes it
//! consumed, or reports that more bytes are needed — no blocking reads, no
//! per-line temporary strings. Connections feed it from a [`RecvBuffer`],
//! a ring-style buffer whose allocation is recycled across every request
//! on the connection, so steady-state keep-alive traffic parses without
//! per-request buffer allocation. The same parser serves both the epoll
//! reactor (non-blocking) and the `--legacy-blocking` path (via
//! [`read_request_buffered`]), which is what makes their responses
//! byte-identical by construction.
//!
//! Not a general web server: no chunked transfer encoding, no multipart,
//! no TLS. Clients that need those get a clean 4xx, not undefined behavior.

use std::io::{Read, Write};

/// Upper bound on the request line + headers block.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default upper bound on a request body (instances beyond this are absurd
/// for small-diameter graphs and would only stall a worker). Overridable
/// per server via `--max-body-bytes`.
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    pub method: String,
    /// Path without the query string, e.g. `/solve`.
    pub path: String,
    /// The raw request target (path + query, still percent-encoded), kept
    /// verbatim so a cluster proxy can forward the request byte-exactly.
    pub target: String,
    /// Percent-decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
    /// Minor HTTP version from the request line (`0` for HTTP/1.0, `1`
    /// for HTTP/1.1). Decides the keep-alive default.
    pub version_minor: u8,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Header value (name matched case-insensitively at parse time).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }

    /// Does the client ask to keep the connection open? HTTP/1.1 defaults
    /// to keep-alive unless `Connection: close`; HTTP/1.0 defaults to
    /// close unless `Connection: keep-alive` — a 1.0 client without that
    /// header would otherwise hang waiting for EOF.
    pub fn keep_alive(&self) -> bool {
        match self.header("connection") {
            Some(v) if v.eq_ignore_ascii_case("close") => false,
            Some(v) if v.eq_ignore_ascii_case("keep-alive") => true,
            _ => self.version_minor >= 1,
        }
    }
}

/// Why a request could not be parsed. `ConnectionClosed` is the clean
/// end-of-keep-alive case, not an error to report.
#[derive(Debug)]
pub enum ParseError {
    ConnectionClosed,
    Io(std::io::Error),
    /// Malformed request; the `&'static str` is a safe-to-echo reason.
    Bad(&'static str),
    /// Head or body over the fixed limits (→ 431/413).
    TooLarge(&'static str),
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// A growable ring-style receive buffer: bytes are committed at the tail,
/// consumed from the head, and the allocation is recycled — when the head
/// catches the tail the indices snap back to zero, and when the tail hits
/// the end the live bytes slide to the front. Steady-state keep-alive
/// traffic therefore reuses one allocation for every request on the
/// connection instead of allocating per request.
#[derive(Debug)]
pub struct RecvBuffer {
    buf: Vec<u8>,
    head: usize,
    tail: usize,
}

impl Default for RecvBuffer {
    fn default() -> Self {
        RecvBuffer::with_capacity(4096)
    }
}

impl RecvBuffer {
    pub fn with_capacity(cap: usize) -> RecvBuffer {
        RecvBuffer {
            buf: vec![0u8; cap.max(64)],
            head: 0,
            tail: 0,
        }
    }

    /// The unconsumed bytes, oldest first.
    pub fn data(&self) -> &[u8] {
        &self.buf[self.head..self.tail]
    }

    pub fn len(&self) -> usize {
        self.tail - self.head
    }

    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Drop `n` consumed bytes from the head. Fully drained buffers snap
    /// their indices back to the start so the next request reuses the
    /// whole allocation without any copying.
    pub fn consume(&mut self, n: usize) {
        self.head += n.min(self.tail - self.head);
        if self.head == self.tail {
            self.head = 0;
            self.tail = 0;
        }
    }

    /// A writable tail slice of at least `min` bytes; slides live bytes to
    /// the front (ring wrap) before growing the allocation.
    pub fn spare(&mut self, min: usize) -> &mut [u8] {
        if self.buf.len() - self.tail < min {
            if self.head > 0 {
                self.buf.copy_within(self.head..self.tail, 0);
                self.tail -= self.head;
                self.head = 0;
            }
            if self.buf.len() - self.tail < min {
                let want = (self.tail + min).max(self.buf.len() * 2);
                self.buf.resize(want.next_power_of_two(), 0);
            }
        }
        &mut self.buf[self.tail..]
    }

    /// Mark `n` bytes (just written into [`RecvBuffer::spare`]) as live.
    pub fn commit(&mut self, n: usize) {
        self.tail += n;
        debug_assert!(self.tail <= self.buf.len());
    }
}

/// Incrementally parse one request from `data`.
///
/// * `Ok(Some((request, consumed)))` — a complete request; the caller must
///   consume `consumed` bytes.
/// * `Ok(None)` — the bytes so far are a valid prefix; read more.
/// * `Err(..)` — malformed or over-limit; the connection should answer an
///   error and close.
///
/// The head is parsed in place from the slice (no intermediate line
/// buffers); only the final `Request` fields are materialized.
pub fn try_parse(
    data: &[u8],
    max_head: usize,
    max_body: usize,
) -> Result<Option<(Request, usize)>, ParseError> {
    // Locate the end of the head: the first empty line ("\r\n" or "\n").
    let mut head_end = None; // byte offset one past the blank line
    let mut line_start = 0usize;
    for (i, &b) in data.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        let line = &data[line_start..i];
        let line = if line.last() == Some(&b'\r') {
            &line[..line.len() - 1]
        } else {
            line
        };
        if line.is_empty() && line_start > 0 {
            head_end = Some(i + 1);
            break;
        }
        line_start = i + 1;
        if line_start > max_head {
            return Err(ParseError::TooLarge("header block too large"));
        }
    }
    let Some(head_end) = head_end else {
        if data.len() > max_head {
            return Err(ParseError::TooLarge("header block too large"));
        }
        return Ok(None);
    };
    if head_end > max_head {
        return Err(ParseError::TooLarge("header block too large"));
    }

    let head = std::str::from_utf8(&data[..head_end])
        .map_err(|_| ParseError::Bad("non-UTF-8 header bytes"))?;
    let mut lines = head.lines();
    let first_line = lines.next().ok_or(ParseError::Bad("empty request line"))?;
    let mut parts = first_line.split_whitespace();
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(ParseError::Bad("empty request line"))?
        .to_string();
    let target = parts
        .next()
        .ok_or(ParseError::Bad("missing request target"))?;
    let version = parts
        .next()
        .ok_or(ParseError::Bad("missing HTTP version"))?;
    let version_minor = match version {
        "HTTP/1.0" => 0,
        "HTTP/1.1" => 1,
        _ => return Err(ParseError::Bad("unsupported HTTP version")),
    };

    let (path_raw, query_raw) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(path_raw).ok_or(ParseError::Bad("bad percent-encoding in path"))?;
    let query = match query_raw {
        Some(q) => parse_query(q).ok_or(ParseError::Bad("bad percent-encoding in query"))?,
        None => Vec::new(),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break; // the blank terminator
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(ParseError::Bad("malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    if headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(ParseError::Bad("transfer-encoding not supported"));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ParseError::Bad("bad content-length"))?,
        None => 0,
    };
    // Reject an oversized body from the Content-Length declaration alone —
    // before buffering a single body byte (→ 413, connection closes).
    if content_length > max_body {
        return Err(ParseError::TooLarge("body too large"));
    }
    if data.len() < head_end + content_length {
        return Ok(None);
    }
    let body = data[head_end..head_end + content_length].to_vec();

    Ok(Some((
        Request {
            method,
            path,
            target: target.to_string(),
            query,
            headers,
            body,
            version_minor,
        },
        head_end + content_length,
    )))
}

/// Blocking companion to [`try_parse`] for the `--legacy-blocking` path
/// and tests: read from `stream` into `rb` until one complete request
/// parses (honoring the stream's read timeout). Returns
/// `ConnectionClosed` on EOF before any byte of a new request.
pub fn read_request_buffered(
    stream: &mut impl Read,
    rb: &mut RecvBuffer,
    max_body: usize,
) -> Result<Request, ParseError> {
    loop {
        if let Some((req, consumed)) = try_parse(rb.data(), MAX_HEAD_BYTES, max_body)? {
            rb.consume(consumed);
            return Ok(req);
        }
        let spare = rb.spare(4096);
        let n = stream.read(spare)?;
        if n == 0 {
            return Err(if rb.is_empty() {
                ParseError::ConnectionClosed
            } else {
                ParseError::Bad("truncated request")
            });
        }
        rb.commit(n);
    }
}

/// Parse `a=1&b=x%20y` (missing `=` means empty value).
fn parse_query(q: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in q.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = match pair.split_once('=') {
            Some((k, v)) => (k, v),
            None => (pair, ""),
        };
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Some(out)
}

/// Decode `%XX` escapes and `+`-as-space. Returns `None` on malformed
/// escapes or non-UTF-8 results.
pub fn percent_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).ok()
}

/// Canonical reason phrase for the status codes the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "",
    }
}

/// Render one response to bytes. `extra_headers` are `(name, value)` pairs
/// appended after the standard set. The default `content-type` is
/// `application/json`; an `extra_headers` entry named `content-type`
/// (case-insensitive) **replaces** the default instead of duplicating it,
/// so non-JSON endpoints (Prometheus `/metrics`) can declare themselves.
///
/// Both serve paths (epoll reactor and `--legacy-blocking`) emit responses
/// through this one function, which is what pins them byte-identical.
pub fn render_response(
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let caller_sets_content_type = extra_headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("content-type"));
    let mut out = Vec::with_capacity(256 + body.len());
    out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", status, reason(status)).as_bytes());
    if !caller_sets_content_type {
        out.extend_from_slice(b"content-type: application/json\r\n");
    }
    out.extend_from_slice(
        format!(
            "content-length: {}\r\nconnection: {}\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    for (k, v) in extra_headers {
        out.extend_from_slice(k.as_bytes());
        out.extend_from_slice(b": ");
        out.extend_from_slice(v.as_bytes());
        out.extend_from_slice(b"\r\n");
    }
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(body);
    out
}

/// Write one response (blocking). See [`render_response`].
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&render_response(status, extra_headers, body, keep_alive))?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c").as_deref(), Some("a b c"));
        assert_eq!(percent_decode("2%2C1").as_deref(), Some("2,1"));
        assert_eq!(percent_decode("plain").as_deref(), Some("plain"));
        assert!(percent_decode("bad%zz").is_none());
        assert!(percent_decode("trunc%2").is_none());
    }

    #[test]
    fn query_parsing() {
        let q = parse_query("p=2%2C1&strategy=auto&flag").unwrap();
        assert_eq!(
            q,
            vec![
                ("p".into(), "2,1".into()),
                ("strategy".into(), "auto".into()),
                ("flag".into(), "".into()),
            ]
        );
    }

    #[test]
    fn reasons_cover_served_codes() {
        for code in [200, 400, 404, 405, 413, 422, 431, 500, 502, 503] {
            assert!(!reason(code).is_empty(), "{code}");
        }
    }

    #[test]
    fn keep_alive_defaults_follow_http_version() {
        let req = |version_minor, connection: Option<&str>| Request {
            method: "GET".into(),
            path: "/healthz".into(),
            target: "/healthz".into(),
            query: vec![],
            headers: connection
                .map(|v| vec![("connection".to_string(), v.to_string())])
                .unwrap_or_default(),
            body: vec![],
            version_minor,
        };
        // HTTP/1.1: keep-alive unless told otherwise.
        assert!(req(1, None).keep_alive());
        assert!(!req(1, Some("close")).keep_alive());
        // HTTP/1.0: close unless the client opts in.
        assert!(!req(0, None).keep_alive());
        assert!(req(0, Some("keep-alive")).keep_alive());
        assert!(req(0, Some("Keep-Alive")).keep_alive());
        assert!(!req(0, Some("close")).keep_alive());
    }

    fn parse_all(bytes: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
        try_parse(bytes, MAX_HEAD_BYTES, MAX_BODY_BYTES)
    }

    #[test]
    fn incremental_prefixes_are_incomplete_never_errors() {
        let full = b"POST /solve?p=2,1 HTTP/1.1\r\nhost: x\r\ncontent-length: 4\r\n\r\nBODY";
        // Every strict prefix parses to "need more bytes".
        for cut in 0..full.len() {
            let r = parse_all(&full[..cut]);
            assert!(matches!(r, Ok(None)), "prefix of {cut} bytes gave {r:?}");
        }
        let (req, consumed) = parse_all(full).unwrap().expect("complete");
        assert_eq!(consumed, full.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/solve");
        assert_eq!(req.target, "/solve?p=2,1");
        assert_eq!(req.query_param("p"), Some("2,1"));
        assert_eq!(req.body, b"BODY");
        assert_eq!(req.version_minor, 1);
    }

    #[test]
    fn pipelined_requests_parse_one_at_a_time() {
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let (first, used) = parse_all(two).unwrap().expect("first");
        assert_eq!(first.path, "/healthz");
        let (second, used2) = parse_all(&two[used..]).unwrap().expect("second");
        assert_eq!(second.path, "/metrics");
        assert_eq!(used + used2, two.len());
    }

    #[test]
    fn bare_lf_line_endings_accepted() {
        let (req, _) = parse_all(b"GET /healthz HTTP/1.0\nhost: x\n\n")
            .unwrap()
            .expect("complete");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.version_minor, 0);
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn oversized_declared_body_rejected_before_body_bytes_arrive() {
        // Content-Length over the cap errors immediately — no body bytes
        // present yet, so the shed costs nothing.
        let head = b"POST /solve HTTP/1.1\r\ncontent-length: 999999\r\n\r\n";
        let r = try_parse(head, MAX_HEAD_BYTES, 1024);
        assert!(
            matches!(r, Err(ParseError::TooLarge("body too large"))),
            "{r:?}"
        );
    }

    #[test]
    fn oversized_head_rejected() {
        let mut head = b"GET /x HTTP/1.1\r\n".to_vec();
        head.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 10));
        let r = parse_all(&head);
        assert!(matches!(r, Err(ParseError::TooLarge(reason)) if reason.contains("header")));
    }

    #[test]
    fn malformed_requests_are_bad() {
        assert!(matches!(
            parse_all(b"GARBAGE\r\n\r\n"),
            Err(ParseError::Bad("missing request target"))
        ));
        assert!(matches!(
            parse_all(b"GET /x HTTP/2.0\r\n\r\n"),
            Err(ParseError::Bad("unsupported HTTP version"))
        ));
        assert!(matches!(
            parse_all(b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ParseError::Bad("malformed header line"))
        ));
        assert!(matches!(
            parse_all(b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(ParseError::Bad("transfer-encoding not supported"))
        ));
    }

    #[test]
    fn recv_buffer_recycles_one_allocation_across_requests() {
        let mut rb = RecvBuffer::with_capacity(64);
        let req = b"GET /healthz HTTP/1.1\r\n\r\n";
        for _ in 0..100 {
            let spare = rb.spare(req.len());
            spare[..req.len()].copy_from_slice(req);
            rb.commit(req.len());
            let (parsed, used) = try_parse(rb.data(), MAX_HEAD_BYTES, MAX_BODY_BYTES)
                .unwrap()
                .expect("complete");
            assert_eq!(parsed.path, "/healthz");
            rb.consume(used);
        }
        // Fully-drained buffer snapped back: no growth ever needed.
        assert!(rb.is_empty());
        assert!(rb.buf.len() <= 64, "buffer grew to {}", rb.buf.len());
    }

    #[test]
    fn recv_buffer_slides_partial_bytes_on_wrap() {
        let mut rb = RecvBuffer::with_capacity(64);
        // Leave a partial request stuck at a high offset, then demand space.
        let junk = b"GET /healthz HTTP/1.1\r\n\r\n";
        let spare = rb.spare(junk.len());
        spare[..junk.len()].copy_from_slice(junk);
        rb.commit(junk.len());
        rb.consume(junk.len() - 4); // 4 live bytes near the end
        let _ = rb.spare(60); // must slide, not grow past need
        assert_eq!(rb.len(), 4);
        assert_eq!(rb.data(), &junk[junk.len() - 4..]);
    }

    #[test]
    fn blocking_reader_handles_eof_and_dribble() {
        // EOF before any byte → clean ConnectionClosed.
        let mut empty: &[u8] = b"";
        let mut rb = RecvBuffer::default();
        assert!(matches!(
            read_request_buffered(&mut empty, &mut rb, MAX_BODY_BYTES),
            Err(ParseError::ConnectionClosed)
        ));
        // EOF mid-request → Bad, never a phantom complete request.
        let mut trunc: &[u8] = b"GET /healthz HT";
        let mut rb = RecvBuffer::default();
        assert!(matches!(
            read_request_buffered(&mut trunc, &mut rb, MAX_BODY_BYTES),
            Err(ParseError::Bad("truncated request"))
        ));
        // A whole request followed by EOF parses fine.
        let mut ok: &[u8] = b"GET /healthz?x=1 HTTP/1.0\r\nhost: x\r\n\r\n";
        let mut rb = RecvBuffer::default();
        let req = read_request_buffered(&mut ok, &mut rb, MAX_BODY_BYTES).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.version_minor, 0);
        assert!(!req.keep_alive());
    }

    #[test]
    fn render_response_shape() {
        let bytes = render_response(200, &[("x-extra", "1")], b"{}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-type: application/json\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.contains("x-extra: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        // Caller-supplied content-type replaces the default.
        let prom = render_response(200, &[("content-type", "text/plain")], b"x", false);
        let prom = String::from_utf8(prom).unwrap();
        assert_eq!(prom.matches("content-type").count(), 1);
        assert!(prom.contains("connection: close\r\n"));
    }
}
