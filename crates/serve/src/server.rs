//! The solve service: configuration, request routing, and handlers.
//!
//! Architecture (default, Linux): one **epoll reactor thread**
//! ([`crate::reactor`]) owns every connection as a readiness-driven state
//! machine; only `POST /solve` and `POST /batch` are dispatched to the
//! fixed [`WorkerPool`] (bounded queue → back-pressure; overflow is shed
//! `503` + `Retry-After` *before* a worker is consumed). Every other
//! endpoint is answered inline on the reactor thread, so `/metrics` and
//! `/debug/*` stay responsive while all workers are saturated. The
//! pre-reactor thread-per-connection path survives behind
//! `--legacy-blocking` ([`crate::blocking`]) as the differential oracle
//! and the non-Linux fallback.
//!
//! Cluster mode (`--cluster a:p1,b:p2,...`, [`crate::cluster`]) makes each
//! replica consistent-hash `/solve` requests by canonical instance
//! identity and proxy to the owner; responses carry `x-dclab-routed`.
//!
//! | Endpoint         | Semantics                                            |
//! |------------------|------------------------------------------------------|
//! | `POST /solve`    | body = instance (edge list or DIMACS), query `p`, `strategy`, `format`, `node-budget`, `restarts`, `deadline-ms`, `oracle` (`auto\|dense\|hub` distance backend) → `SolveReport` JSON; `X-Dclab-Cache: hit\|miss\|coalesced`. A deadline returns 200 with the best incumbent (`"timed_out":true`), never a 5xx; requested deadlines are clamped to the server cap |
//! | `POST /batch`    | body = instances separated by `%%` lines, same query params → JSON array |
//! | `GET /healthz`   | liveness                                             |
//! | `GET /metrics`   | Prometheus text (default; `text/plain; version=0.0.4`) or `?format=json`: counters, cache stats, per-strategy counts, latency + per-phase histograms |
//! | `GET /debug/traces` | flight-recorder index: recent + slowest solve-trace summaries |
//! | `GET /debug/traces/<request-id>` | full span tree of one retained solve trace (404 once evicted) |
//! | `GET /debug/slowlog` | recent slow-solve log lines (solves over `--slow-solve-ms`) |
//! | `POST /shutdown` | graceful shutdown (drain queue, join workers)        |
//!
//! Every response carries an `X-Request-Id` header: the client's value
//! echoed back when it sent one (so distributed traces line up), a
//! generated id otherwise. `/solve` requests run under a live
//! [`dclab_trace::Trace`] keyed by that id; finished traces land in the
//! flight recorder and feed the `dclab_phase_seconds` histograms.

use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use dclab_engine::json::{array, escape, Obj};
use dclab_engine::{solve, Budget, EngineError, OraclePolicy, SolveReport, SolveRequest, Strategy};
use dclab_graph::io as graph_io;
use dclab_graph::Graph;
use dclab_par::WorkerPool;
use dclab_store::Store;
use dclab_trace::FlightRecorder;

use crate::cache::{CacheKey, CacheStatus, ReportCache};
use crate::cluster::{self, Cluster};
use crate::http::Request;
use crate::metrics::{Metrics, StoreGauges};
use crate::persist;

/// Server configuration (the CLI's `dclab serve` flags).
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Report-cache budget in MiB.
    pub cache_mb: usize,
    /// Bounded connection-queue capacity (0 → `4 × workers`).
    pub queue_cap: usize,
    /// Persistent solution archive (`dclab-store`). `Some(path)` warm-boots
    /// the cache from the archive at start and write-behinds fresh solves;
    /// `None` keeps the PR 2 behavior (cache dies with the process).
    pub store_path: Option<String>,
    /// Server-side cap on client-requested deadlines (`deadline-ms` query
    /// parameter): requests asking for more are clamped to this. Requests
    /// that ask for *no* deadline are untouched — they keep the pure
    /// logical-budget semantics (and the pre-anytime cache/archive keys).
    pub max_deadline_ms: u64,
    /// Solves taking at least this long get a one-line structured record
    /// in the slow-solve log (stderr + `GET /debug/slowlog`).
    pub slow_solve_ms: u64,
    /// Request body cap (`--max-body-bytes`); bodies over it get `413`
    /// with a JSON error, rejected from the `Content-Length` declaration
    /// alone (no body bytes are buffered first).
    pub max_body_bytes: usize,
    /// Connection budget (`--max-conns`, reactor path): open connections
    /// past this are answered `503` + `Retry-After` at accept. Decoupled
    /// from — and far above — the worker count.
    pub max_conns: usize,
    /// Per-connection idle deadline in ms (`--conn-idle-ms`): stalled
    /// connections (slow-loris) are reaped and counted in
    /// `dclab_conns_reaped_total`.
    pub conn_idle_ms: u64,
    /// Use the pre-reactor thread-per-connection path
    /// (`--legacy-blocking`): the differential oracle, and the only path
    /// off Linux.
    pub legacy_blocking: bool,
    /// Cluster replica list (`--cluster a:p1,b:p2,...`), empty for
    /// single-node. Must contain this server's own `addr`; every replica
    /// must be started with the identical list.
    pub cluster: Vec<String>,
}

/// Default server-side deadline cap (one minute).
pub const DEFAULT_MAX_DEADLINE_MS: u64 = 60_000;

/// Default slow-solve log threshold.
pub const DEFAULT_SLOW_SOLVE_MS: u64 = 250;

/// Completed solve traces the flight recorder retains by recency.
const FLIGHT_LAST_N: usize = 128;

/// Slowest solve traces retained separately from the recency ring.
const FLIGHT_SLOWEST_K: usize = 16;

/// Slow-solve log lines kept for `GET /debug/slowlog`.
const SLOWLOG_CAP: usize = 128;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8080".into(),
            workers: dclab_par::default_threads(),
            cache_mb: 64,
            queue_cap: 0,
            store_path: None,
            max_deadline_ms: DEFAULT_MAX_DEADLINE_MS,
            slow_solve_ms: DEFAULT_SLOW_SOLVE_MS,
            max_body_bytes: crate::http::MAX_BODY_BYTES,
            max_conns: crate::reactor_defaults::MAX_CONNS,
            conn_idle_ms: crate::reactor_defaults::CONN_IDLE_MS,
            legacy_blocking: false,
            cluster: Vec::new(),
        }
    }
}

/// Bounded ring of slow-solve log lines. Lines also go to stderr as they
/// happen; the ring backs `GET /debug/slowlog` so tests and operators can
/// read recent entries without scraping the process's stderr.
pub struct SlowLog {
    lines: Mutex<Vec<String>>,
    cap: usize,
}

impl SlowLog {
    fn new(cap: usize) -> SlowLog {
        SlowLog {
            lines: Mutex::new(Vec::new()),
            cap: cap.max(1),
        }
    }

    /// Print the line to stderr and retain it (evicting the oldest past
    /// the cap).
    pub fn push(&self, line: String) {
        eprintln!("{line}");
        let mut lines = self.lines.lock().expect("slowlog poisoned");
        if lines.len() == self.cap {
            lines.remove(0);
        }
        lines.push(line);
    }

    /// Retained lines, oldest first.
    pub fn lines(&self) -> Vec<String> {
        self.lines.lock().expect("slowlog poisoned").clone()
    }
}

/// Shared server state.
pub struct ServeCtx {
    pub cache: ReportCache,
    pub metrics: Metrics,
    /// The persistent solution archive, when serving with `--store-path`.
    pub store: Option<Arc<Store>>,
    /// Completed solve traces: last-N ring + slowest-K, behind
    /// `GET /debug/traces`.
    pub flight: FlightRecorder,
    /// Recent slow-solve records, behind `GET /debug/slowlog`.
    pub slowlog: SlowLog,
    /// Consistent-hash routing state when serving as a cluster replica.
    pub cluster: Option<Cluster>,
    /// Outbound proxies currently blocking a worker (cluster mode).
    proxy_in_flight: AtomicUsize,
    /// Cap on concurrent outbound proxies: `workers - 1`, so at least one
    /// worker is always free to serve *incoming* forwarded requests.
    /// Without this, two replicas whose entire pools are blocked proxying
    /// to each other deadlock until the proxy timeout; past the cap a
    /// request degrades to a local fallback solve instead of waiting.
    proxy_limit: usize,
    /// Request body cap (bytes); enforced by both serve paths at parse
    /// time, before body bytes are buffered.
    pub max_body_bytes: usize,
    /// Cap applied to client-requested `deadline-ms` values.
    pub(crate) max_deadline_ms: u64,
    /// Threshold for the slow-solve log, in ms.
    pub(crate) slow_solve_ms: u64,
    shutdown: AtomicBool,
}

impl ServeCtx {
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn store_gauges(&self) -> Option<StoreGauges> {
        self.store.as_ref().map(|s| {
            let stats = s.stats();
            StoreGauges {
                entries: stats.live,
                bytes: stats.bytes,
                generation: stats.generation,
            }
        })
    }
}

/// A running server. Dropping the handle does **not** stop the server; call
/// [`ServerHandle::shutdown`] (or hit `POST /shutdown`) then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServeCtx>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn ctx(&self) -> &Arc<ServeCtx> {
        &self.ctx
    }

    /// Request graceful shutdown (idempotent, non-blocking).
    pub fn shutdown(&self) {
        self.ctx.shutdown.store(true, Ordering::SeqCst);
    }

    /// Wait for the accept loop and all workers to finish.
    pub fn join(mut self) {
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Bind and start serving in background threads. When the config names a
/// store path, the archive is opened (recovering any torn tail) and its
/// records warm-boot the report cache before the first request is
/// accepted.
pub fn start(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let store = match &cfg.store_path {
        Some(path) => Some(Arc::new(Store::open(path)?.0)),
        None => None,
    };
    let cluster = if cfg.cluster.is_empty() {
        None
    } else {
        // Identify this node by its --addr string, falling back to the
        // resolved bind address.
        let built = Cluster::new(cfg.cluster.clone(), &cfg.addr)
            .or_else(|| Cluster::new(cfg.cluster.clone(), &addr.to_string()));
        Some(built.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "--cluster list {:?} does not contain this node's --addr {}",
                    cfg.cluster, cfg.addr
                ),
            )
        })?)
    };
    let ctx = Arc::new(ServeCtx {
        cache: ReportCache::new(cfg.cache_mb.max(1) * 1024 * 1024),
        metrics: Metrics::default(),
        store,
        flight: FlightRecorder::new(FLIGHT_LAST_N, FLIGHT_SLOWEST_K),
        slowlog: SlowLog::new(SLOWLOG_CAP),
        cluster,
        proxy_in_flight: AtomicUsize::new(0),
        proxy_limit: cfg.workers.max(1).saturating_sub(1),
        max_body_bytes: cfg.max_body_bytes.max(1),
        max_deadline_ms: cfg.max_deadline_ms.max(1),
        slow_solve_ms: cfg.slow_solve_ms,
        shutdown: AtomicBool::new(false),
    });
    if let Some(cluster) = &ctx.cluster {
        ctx.metrics.cluster_enabled.store(1, Ordering::Relaxed);
        ctx.metrics
            .cluster_replicas
            .store(cluster.replicas().len() as u64, Ordering::Relaxed);
    }
    if let Some(store) = &ctx.store {
        let loaded = persist::warm_boot(&ctx.cache, store);
        ctx.metrics.store_warm_boot.store(loaded, Ordering::Relaxed);
    }
    let workers = cfg.workers.max(1);
    let queue_cap = if cfg.queue_cap == 0 {
        workers * 4
    } else {
        cfg.queue_cap
    };
    let accept_ctx = Arc::clone(&ctx);
    let legacy = cfg.legacy_blocking || !cfg!(target_os = "linux");
    let max_conns = cfg.max_conns.max(1);
    let conn_idle_ms = cfg.conn_idle_ms.max(1);
    let accept_thread = std::thread::Builder::new()
        .name("dclab-accept".into())
        .spawn(move || {
            #[cfg(target_os = "linux")]
            if !legacy {
                crate::reactor::run(
                    listener,
                    accept_ctx,
                    crate::reactor::ReactorConfig {
                        workers,
                        queue_cap,
                        max_conns,
                        conn_idle_ms,
                    },
                );
                return;
            }
            let _ = (legacy, max_conns);
            crate::blocking::accept_loop(listener, accept_ctx, workers, queue_cap, conn_idle_ms);
        })?;
    Ok(ServerHandle {
        addr,
        ctx,
        accept_thread: Some(accept_thread),
    })
}

/// Shared shutdown tail for both serve paths: drain + join the pool, then
/// seal the archive (fsync + clean footer) so a reopened store trusts the
/// whole log.
pub(crate) fn finish_shutdown(ctx: &ServeCtx, pool: &mut WorkerPool) {
    pool.shutdown();
    if let Some(store) = &ctx.store {
        if store.close_clean().is_ok() {
            ctx.metrics.store_flushes.fetch_add(1, Ordering::Relaxed);
        }
    }
}

static NEXT_REQUEST_ID: AtomicU64 = AtomicU64::new(1);

/// A fresh server-generated request id (process-unique).
pub(crate) fn generate_request_id() -> String {
    format!(
        "req-{:x}-{:06x}",
        std::process::id(),
        NEXT_REQUEST_ID.fetch_add(1, Ordering::Relaxed)
    )
}

/// The id for one request: the client's `X-Request-Id` echoed back when it
/// sent a sane one (printable ASCII, bounded length), a generated id
/// otherwise. Client ids flow into logs, trace lookups, and response
/// headers, so hostile bytes are rejected rather than escaped everywhere.
pub(crate) fn request_id(req: &Request) -> String {
    match req.header("x-request-id") {
        Some(v) if !v.is_empty() && v.len() <= 64 && v.bytes().all(|b| b.is_ascii_graphic()) => {
            v.to_string()
        }
        _ => generate_request_id(),
    }
}

pub(crate) fn error_json(message: &str, kind: &str) -> String {
    Obj::new().str("error", message).str("kind", kind).finish()
}

pub(crate) type Response = (u16, Vec<(&'static str, String)>, String);

/// Does this request need a solve worker? Only `/solve` and `/batch` do
/// CPU-bound work; everything else — health, metrics, debug surfaces,
/// shutdown, 404/405 — is answered inline on the reactor thread so
/// observability stays live while the pool is saturated.
pub(crate) fn needs_worker(req: &Request) -> bool {
    matches!(
        (req.method.as_str(), req.path.as_str()),
        ("POST", "/solve") | ("POST", "/batch")
    )
}

// `requests_total` is bumped by `record_status` in every answer path
// (routed, parse failure, overload shed), so totals always reconcile.
pub(crate) fn route(ctx: &ServeCtx, req: &Request, rid: &str) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            ctx.metrics.health_requests.fetch_add(1, Ordering::Relaxed);
            (200, vec![], Obj::new().str("status", "ok").finish())
        }
        ("GET", "/metrics") => {
            ctx.metrics.metrics_requests.fetch_add(1, Ordering::Relaxed);
            match req.query_param("format") {
                None | Some("prometheus") => (
                    // Prometheus text exposition is the scrape default —
                    // with its own content-type, not the JSON one.
                    200,
                    vec![("content-type", "text/plain; version=0.0.4".to_string())],
                    ctx.metrics
                        .to_prometheus(ctx.cache.counters(), ctx.store_gauges()),
                ),
                Some("json") => (
                    200,
                    vec![],
                    ctx.metrics
                        .to_json(ctx.cache.counters(), ctx.store_gauges()),
                ),
                Some(other) => (
                    400,
                    vec![],
                    error_json(&format!("unknown metrics format '{other}'"), "bad-request"),
                ),
            }
        }
        ("GET", "/debug/traces") => {
            let recent: Vec<String> = ctx
                .flight
                .recent()
                .iter()
                .map(|t| t.summary_json())
                .collect();
            let slowest: Vec<String> = ctx
                .flight
                .slowest()
                .iter()
                .map(|t| t.summary_json())
                .collect();
            (
                200,
                vec![],
                Obj::new()
                    .raw("recent", &array(recent))
                    .raw("slowest", &array(slowest))
                    .finish(),
            )
        }
        ("GET", "/debug/slowlog") => {
            let lines = ctx.slowlog.lines();
            (
                200,
                vec![],
                Obj::new()
                    .u64("slow_solve_ms", ctx.slow_solve_ms)
                    .raw(
                        "lines",
                        &array(lines.iter().map(|l| format!("\"{}\"", escape(l)))),
                    )
                    .finish(),
            )
        }
        ("GET", p) if p.starts_with("/debug/traces/") => {
            match ctx.flight.get(&p["/debug/traces/".len()..]) {
                Some(trace) => (200, vec![], trace.to_json()),
                None => (
                    404,
                    vec![],
                    error_json(
                        "no retained trace for that request id (the flight recorder \
                         keeps a bounded window of recent and slowest solves)",
                        "not-found",
                    ),
                ),
            }
        }
        ("POST", "/solve") => {
            ctx.metrics.solve_requests.fetch_add(1, Ordering::Relaxed);
            let started = Instant::now();
            let resp = solve_endpoint(ctx, req, rid);
            ctx.metrics.solve_latency.record(started.elapsed());
            resp
        }
        ("POST", "/batch") => {
            ctx.metrics.batch_requests.fetch_add(1, Ordering::Relaxed);
            batch_endpoint(ctx, req)
        }
        ("POST", "/shutdown") => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            (
                200,
                vec![],
                Obj::new().str("status", "shutting-down").finish(),
            )
        }
        (
            _,
            "/healthz" | "/metrics" | "/solve" | "/batch" | "/shutdown" | "/debug/traces"
            | "/debug/slowlog",
        ) => (
            405,
            vec![],
            error_json("method not allowed for this path", "method"),
        ),
        (_, p) if p.starts_with("/debug/traces/") => (
            405,
            vec![],
            error_json("method not allowed for this path", "method"),
        ),
        _ => (404, vec![], error_json("no such endpoint", "not-found")),
    }
}

/// Query parameters shared by `/solve` and `/batch`.
struct SolveParams {
    pvec: dclab_core::pvec::PVec,
    strategy: Strategy,
    budget: Budget,
    oracle: OraclePolicy,
    format: Option<graph_io::Format>,
}

fn parse_params(req: &Request, max_deadline_ms: u64) -> Result<SolveParams, String> {
    let pvec = match req.query_param("p") {
        Some(raw) => {
            let entries: Result<Vec<u64>, _> =
                raw.split(',').map(|t| t.trim().parse::<u64>()).collect();
            let entries = entries.map_err(|e| format!("bad p-vector '{raw}': {e}"))?;
            dclab_core::pvec::PVec::new(entries).ok_or_else(|| {
                format!("bad p-vector '{raw}': must be non-empty and not all-zero")
            })?
        }
        None => dclab_core::pvec::PVec::l21(),
    };
    let strategy = match req.query_param("strategy") {
        Some(raw) => raw.parse::<Strategy>()?,
        None => Strategy::Auto,
    };
    let mut budget = Budget::default();
    if let Some(raw) = req.query_param("node-budget") {
        budget.node_budget = Some(raw.parse().map_err(|e| format!("bad node-budget: {e}"))?);
    }
    if let Some(raw) = req.query_param("restarts") {
        budget.restarts = Some(raw.parse().map_err(|e| format!("bad restarts: {e}"))?);
    }
    if let Some(raw) = req.query_param("deadline-ms") {
        let requested: u64 = raw.parse().map_err(|e| format!("bad deadline-ms: {e}"))?;
        // Clamp to the server-side cap; the response is still 200 with the
        // best incumbent found inside the (possibly shorter) window.
        budget.deadline_ms = Some(requested.min(max_deadline_ms));
    }
    let oracle = match req.query_param("oracle") {
        Some(raw) => raw.parse::<OraclePolicy>()?,
        None => OraclePolicy::Auto,
    };
    let format = match req.query_param("format") {
        None | Some("auto") => None,
        Some("edgelist") | Some("edge-list") => Some(graph_io::Format::EdgeList),
        Some("dimacs") | Some("col") => Some(graph_io::Format::Dimacs),
        Some(other) => return Err(format!("unknown format '{other}'")),
    };
    Ok(SolveParams {
        pvec,
        strategy,
        budget,
        oracle,
        format,
    })
}

/// Sniff DIMACS vs. edge list when the client did not say: DIMACS bodies
/// open with a `c` comment or the `p` problem line.
fn sniff_format(text: &str) -> graph_io::Format {
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        return if t.starts_with('c') || t.starts_with("p ") || t.starts_with("e ") {
            graph_io::Format::Dimacs
        } else {
            graph_io::Format::EdgeList
        };
    }
    graph_io::Format::EdgeList
}

fn parse_instance(body: &str, format: Option<graph_io::Format>) -> Result<Graph, String> {
    let format = format.unwrap_or_else(|| sniff_format(body));
    graph_io::parse(body, format).map_err(|e| e.to_string())
}

/// `(status, kind)` for an engine failure; guard refusals are the
/// unprocessable-instance contract (HTTP 422).
fn engine_error_meta(e: &EngineError) -> (u16, &'static str) {
    match e {
        EngineError::Guard(_) => (422, "guard"),
        EngineError::Reduction(_) => (422, "reduction"),
        EngineError::Unsupported { .. } => (422, "unsupported"),
        EngineError::Internal(_) => (500, "internal"),
    }
}

/// Cache-through solve of one instance under a pre-computed key (the
/// caller needs the key anyway for cluster routing). Returns the report
/// and cache status, or an error response triple.
fn cached_solve(
    ctx: &ServeCtx,
    key: &CacheKey,
    graph: Graph,
    params: &SolveParams,
) -> Result<(SolveReport, CacheStatus), (u16, &'static str, String)> {
    let (result, status) = ctx.cache.get_or_solve(key, || {
        // LRU miss: consult the persistent archive before paying for a
        // solve (covers evicted entries and corpora imported offline).
        if let Some(store) = &ctx.store {
            if let Some(report) = persist::store_lookup(store, key) {
                ctx.metrics.store_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(report);
            }
            ctx.metrics.store_misses.fetch_add(1, Ordering::Relaxed);
        }
        let req = SolveRequest {
            graph,
            pvec: params.pvec.clone(),
            strategy: params.strategy,
            budget: params.budget,
            oracle: params.oracle,
        };
        match solve(&req) {
            Ok(report) => {
                ctx.metrics.record_strategy(report.strategy_used);
                if let Some(o) = &report.stats.oracle {
                    ctx.metrics.record_oracle(o, report.stats.features.n);
                }
                if report.stats.timed_out {
                    ctx.metrics.solve_timeouts.fetch_add(1, Ordering::Relaxed);
                }
                ctx.metrics
                    .record_bound(report.stats.bound.kind, report.gap());
                if params.strategy == Strategy::Race {
                    ctx.metrics.record_race_winner(report.strategy_used);
                }
                // Write-behind: the record reaches the OS before the
                // response; fsync happens at the shutdown drain. Timed-out
                // harvests stay out of the archive — persisting one would
                // warm-boot that load-dependent quality level forever.
                if let Some(store) = &ctx.store {
                    if !report.stats.timed_out
                        && matches!(persist::store_append(store, key, &report), Ok(true))
                    {
                        ctx.metrics.store_appends.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Ok(report)
            }
            Err(e) => {
                let (code, kind) = engine_error_meta(&e);
                // Encode the HTTP meta in the shared error string so
                // coalesced waiters reconstruct the same response.
                Err(format!("{code}\x1f{kind}\x1f{e}"))
            }
        }
    });
    match result {
        Ok(report) => Ok((report, status)),
        Err(encoded) => {
            let mut parts = encoded.splitn(3, '\x1f');
            let code: u16 = parts.next().and_then(|c| c.parse().ok()).unwrap_or(500);
            let kind = match parts.next() {
                Some("guard") => "guard",
                Some("reduction") => "reduction",
                Some("unsupported") => "unsupported",
                _ => "internal",
            };
            let message = parts.next().unwrap_or("solve failed").to_string();
            Err((code, kind, message))
        }
    }
}

fn solve_endpoint(ctx: &ServeCtx, req: &Request, rid: &str) -> Response {
    let params = match parse_params(req, ctx.max_deadline_ms) {
        Ok(p) => p,
        Err(e) => return (400, vec![], error_json(&e, "bad-request")),
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return (400, vec![], error_json("body is not UTF-8", "bad-request")),
    };
    let graph = match parse_instance(body, params.format) {
        Ok(g) => g,
        Err(e) => return (400, vec![], error_json(&e, "parse")),
    };
    // Cluster routing: the cache key's hash is the canonical instance
    // identity (isomorphism-invariant), so all relabelings of one
    // instance route to the same owner replica.
    let key = CacheKey::for_request(
        &graph,
        &params.pvec,
        params.strategy,
        params.budget,
        params.oracle,
    );
    let mut routed: Option<&'static str> = None;
    if let Some(cl) = &ctx.cluster {
        if req.header(cluster::FORWARDED_HEADER).is_some() {
            // One hop max: a forwarded request always solves here.
            ctx.metrics.cluster_received.fetch_add(1, Ordering::Relaxed);
            routed = Some("local");
        } else if let Some(owner) = cl.owner_if_remote(key.hash) {
            // A proxy blocks this worker until the owner answers, and the
            // owner needs a worker of its own to answer — so concurrent
            // outbound proxies are capped at workers-1. Past the cap (or
            // with a single worker) we solve locally instead of risking
            // two replicas deadlocked proxying to each other.
            let permit = ctx
                .proxy_in_flight
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                    (n < ctx.proxy_limit).then_some(n + 1)
                })
                .is_ok();
            let proxied = if permit {
                let r = cluster::proxy(owner, req, rid, cl.self_addr());
                ctx.proxy_in_flight.fetch_sub(1, Ordering::AcqRel);
                Some(r)
            } else {
                None
            };
            match proxied {
                Some(Ok(up)) => {
                    ctx.metrics
                        .cluster_forwarded
                        .fetch_add(1, Ordering::Relaxed);
                    let mut extra = vec![("x-dclab-routed", "forwarded".to_string())];
                    if let Some(cs) = up.cache_status {
                        extra.push(("x-dclab-cache", cs));
                    }
                    let body = String::from_utf8(up.body)
                        .unwrap_or_else(|_| error_json("upstream returned non-UTF-8", "internal"));
                    return (up.status, extra, body);
                }
                Some(Err(_)) | None => {
                    // Owner unreachable, or no proxy permit free: degrade
                    // to an independent solve rather than a 5xx — the
                    // mesh heals when capacity returns.
                    ctx.metrics.cluster_fallback.fetch_add(1, Ordering::Relaxed);
                    routed = Some("fallback");
                }
            }
        } else {
            ctx.metrics.cluster_local.fetch_add(1, Ordering::Relaxed);
            routed = Some("local");
        }
    }
    // Every accepted solve runs under a live trace keyed by the request id:
    // cache hits record just the request span, fresh solves the full phase
    // tree (the engine snapshots per-phase totals into `stats.phases`).
    let trace = dclab_trace::Trace::enabled();
    let outcome = {
        let _install = trace.install();
        let mut span = trace.span("request");
        let outcome = cached_solve(ctx, &key, graph, &params);
        if let Ok((report, status)) = &outcome {
            span.set_detail(format!(
                "strategy={} cache={} span={}",
                report.strategy_used.name(),
                status.name(),
                report.solution.span
            ));
        }
        outcome
    };
    let (label, timed_out) = match &outcome {
        Ok((report, _)) => (
            report.strategy_used.name().to_string(),
            report.stats.timed_out,
        ),
        Err((_, kind, _)) => (format!("error-{kind}"), false),
    };
    let finished = trace
        .finish(rid.to_string(), label.clone())
        .expect("trace was enabled");
    let recorded = ctx.flight.record(finished);
    let totals = recorded.phase_totals();
    for phase in &totals {
        ctx.metrics.record_phase(&phase.name, phase.total_us);
    }
    if recorded.total_us >= ctx.slow_solve_ms.saturating_mul(1000) {
        ctx.metrics.slow_solves.fetch_add(1, Ordering::Relaxed);
        let phases = totals
            .iter()
            .map(|p| format!("{}:{}us", p.name, p.total_us))
            .collect::<Vec<_>>()
            .join(",");
        ctx.slowlog.push(format!(
            "slow-solve request_id={rid} strategy={label} total_us={} timed_out={timed_out} \
             phases={phases}",
            recorded.total_us
        ));
    }
    match outcome {
        Ok((report, status)) => {
            let mut extra = vec![("x-dclab-cache", status.name().to_string())];
            if let Some(route) = routed {
                extra.push(("x-dclab-routed", route.to_string()));
            }
            (200, extra, report.to_json())
        }
        Err((code, kind, message)) => (code, vec![], error_json(&message, kind)),
    }
}

/// Batch body separator: a line containing only `%%`.
const BATCH_SEPARATOR: &str = "%%";

fn batch_endpoint(ctx: &ServeCtx, req: &Request) -> Response {
    let params = match parse_params(req, ctx.max_deadline_ms) {
        Ok(p) => p,
        Err(e) => return (400, vec![], error_json(&e, "bad-request")),
    };
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return (400, vec![], error_json("body is not UTF-8", "bad-request")),
    };
    let instances: Vec<&str> = split_batch(body);
    if instances.is_empty() {
        return (400, vec![], error_json("empty batch", "bad-request"));
    }
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut items = Vec::with_capacity(instances.len());
    for text in &instances {
        let item = match parse_instance(text, params.format) {
            Ok(graph) => {
                let key = CacheKey::for_request(
                    &graph,
                    &params.pvec,
                    params.strategy,
                    params.budget,
                    params.oracle,
                );
                match cached_solve(ctx, &key, graph, &params) {
                    Ok((report, status)) => {
                        match status {
                            CacheStatus::Miss => misses += 1,
                            _ => hits += 1,
                        }
                        Obj::new()
                            .str("cache", status.name())
                            .raw("report", &report.to_json())
                            .finish()
                    }
                    Err((_, kind, message)) => {
                        Obj::new().str("error", &message).str("kind", kind).finish()
                    }
                }
            }
            Err(e) => Obj::new().str("error", &e).str("kind", "parse").finish(),
        };
        items.push(item);
    }
    (
        200,
        vec![
            ("x-dclab-cache-hits", hits.to_string()),
            ("x-dclab-cache-misses", misses.to_string()),
        ],
        array(items),
    )
}

/// Split a batch body into instance chunks on `%%` lines, dropping blank
/// chunks.
fn split_batch(body: &str) -> Vec<&str> {
    let mut chunks = Vec::new();
    let mut start = 0usize;
    let mut pos = 0usize;
    for line in body.split_inclusive('\n') {
        if line.trim() == BATCH_SEPARATOR {
            chunks.push(&body[start..pos]);
            start = pos + line.len();
        }
        pos += line.len();
    }
    chunks.push(&body[start..]);
    chunks
        .into_iter()
        .filter(|c| !c.trim().is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_splitting() {
        let body = "0 1\n1 2\n%%\n0 1\n%%\n\n%%\nn 3\n0 2\n";
        let chunks = split_batch(body);
        assert_eq!(chunks.len(), 3);
        assert!(chunks[0].contains("1 2"));
        assert_eq!(chunks[1].trim(), "0 1");
        assert!(chunks[2].contains("n 3"));
    }

    #[test]
    fn format_sniffing() {
        assert_eq!(
            sniff_format("c hi\np edge 2 1\ne 1 2\n"),
            graph_io::Format::Dimacs
        );
        assert_eq!(
            sniff_format("p edge 2 1\ne 1 2\n"),
            graph_io::Format::Dimacs
        );
        assert_eq!(sniff_format("\n\n0 1\n"), graph_io::Format::EdgeList);
        assert_eq!(sniff_format("n 4\n0 1\n"), graph_io::Format::EdgeList);
        assert_eq!(sniff_format(""), graph_io::Format::EdgeList);
    }

    #[test]
    fn request_ids_echo_sane_client_values_only() {
        let req = |headers: Vec<(&str, &str)>| Request {
            method: "POST".into(),
            path: "/solve".into(),
            target: "/solve".into(),
            query: vec![],
            headers: headers
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: vec![],
            version_minor: 1,
        };
        assert_eq!(
            request_id(&req(vec![("x-request-id", "client-abc-123")])),
            "client-abc-123"
        );
        // Hostile or absent ids get a generated one.
        let generated = request_id(&req(vec![]));
        assert!(generated.starts_with("req-"), "{generated}");
        assert!(request_id(&req(vec![("x-request-id", "has space")])).starts_with("req-"));
        assert!(request_id(&req(vec![("x-request-id", "")])).starts_with("req-"));
        let long = "x".repeat(65);
        assert!(request_id(&req(vec![("x-request-id", &long)])).starts_with("req-"));
        // Generated ids are unique.
        assert_ne!(generate_request_id(), generate_request_id());
    }

    #[test]
    fn slowlog_ring_evicts_oldest() {
        let log = SlowLog::new(3);
        for i in 0..5 {
            log.push(format!("line-{i}"));
        }
        assert_eq!(log.lines(), vec!["line-2", "line-3", "line-4"]);
    }
}
