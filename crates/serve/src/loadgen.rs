//! Load-test harness: a minimal blocking HTTP client, a mixed request
//! corpus (cold solves, warm repeats, isomorphic relabelings, adversarial
//! guard instances), per-pass latency/hit statistics, and a concurrent
//! multi-replica soak mode ([`soak`]) for cluster runs.
//!
//! Used four ways: the `e10_serve` bench (cold-vs-warm latency →
//! `BENCH_serve.json`), the CI smoke job (`dclab serve --self-test`), the
//! CI cluster-soak job (`dclab loadgen --addrs a,b`), and ad-hoc load
//! tests against a live server.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dclab_engine::json::Obj;
use dclab_graph::generators::{classic, random};
use dclab_graph::io as graph_io;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A response as the client sees it.
#[derive(Debug)]
pub struct ClientResponse {
    pub status: u16,
    /// Lower-cased header names.
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl ClientResponse {
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == &name.to_ascii_lowercase())
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking keep-alive HTTP/1.1 client for one server.
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
}

impl Client {
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, conn: None }
    }

    fn connect(&mut self) -> std::io::Result<&mut BufReader<TcpStream>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(Duration::from_secs(30)))?;
            self.conn = Some(BufReader::new(stream));
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// Send one request; retries once on a stale keep-alive connection.
    pub fn request(
        &mut self,
        method: &str,
        target: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        self.request_with_headers(method, target, &[], body)
    }

    /// Like [`Client::request`] but with extra request headers (e.g. a
    /// client-chosen `x-request-id` for trace correlation).
    pub fn request_with_headers(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        match self.request_once(method, target, headers, body) {
            Ok(r) => Ok(r),
            Err(_) => {
                // Server may have closed the idle connection; reconnect.
                self.conn = None;
                self.request_once(method, target, headers, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        target: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        let addr = self.addr;
        let reader = self.connect()?;
        let mut head = format!(
            "{method} {target} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n",
            body.len()
        );
        for (name, value) in headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        match read_response(reader) {
            Ok((response, close)) => {
                if close {
                    self.conn = None;
                }
                Ok(response)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Read one response; the flag reports a `Connection: close` server side.
fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<(ClientResponse, bool)> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed",
        ));
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut close = false;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("truncated headers"));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| bad("bad header"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_string();
        if name == "content-length" {
            content_length = value.parse().map_err(|_| bad("bad content-length"))?;
        }
        if name == "connection" && value.eq_ignore_ascii_case("close") {
            close = true;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad("non-UTF-8 body"))?;
    Ok((
        ClientResponse {
            status,
            headers,
            body,
        },
        close,
    ))
}

/// One scripted request.
#[derive(Clone, Debug)]
pub struct CorpusItem {
    pub name: String,
    /// Path + query, e.g. `/solve?p=2,1&strategy=exact`.
    pub target: String,
    pub body: String,
    pub expect_status: u16,
}

/// A deterministic mixed corpus: solvable diameter-2 instances under
/// several strategies, isomorphic relabelings of some of them (exercising
/// canonical-cache hits), and adversarial guard instances that must come
/// back as HTTP 422.
pub fn mixed_corpus(seed: u64, instances: usize) -> Vec<CorpusItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::new();
    for i in 0..instances.max(1) {
        let n = 10 + (i % 8) * 2;
        let g = random::gnp_with_diameter_at_most(&mut rng, n, 0.55, 2);
        let strategy = ["auto", "exact", "greedy", "heuristic"][i % 4];
        items.push(CorpusItem {
            name: format!("gnp{n}-{i}-{strategy}"),
            target: format!("/solve?p=2,1&strategy={strategy}"),
            body: graph_io::write_edge_list(&g),
            expect_status: 200,
        });
        // Every third instance also appears as an isomorphic relabeling:
        // a different byte body that must hit the same cache entry.
        if i % 3 == 0 {
            let perm = random::random_permutation(&mut rng, n);
            let h = g.relabeled(&perm);
            items.push(CorpusItem {
                name: format!("gnp{n}-{i}-{strategy}-relabel"),
                target: format!("/solve?p=2,1&strategy={strategy}"),
                body: graph_io::write_edge_list(&h),
                expect_status: 200,
            });
        }
    }
    // Adversarial guard requests: exact beyond EXACT_MAX_N must 422.
    for i in 0..(instances / 8).max(1) {
        let g = classic::complete(30 + i);
        items.push(CorpusItem {
            name: format!("guard-k{}", 30 + i),
            target: "/solve?p=2,1&strategy=exact".into(),
            body: graph_io::write_edge_list(&g),
            expect_status: 422,
        });
    }
    // DIMACS-format coverage.
    let g = classic::petersen();
    items.push(CorpusItem {
        name: "petersen-dimacs".into(),
        target: "/solve?p=2,1&strategy=auto&format=dimacs".into(),
        body: graph_io::write_dimacs(&g),
        expect_status: 200,
    });
    items
}

/// A soak-friendly corpus: cheap strategies only (greedy/heuristic), so
/// per-request cost is dominated by serving and routing rather than
/// Held–Karp solves, plus isomorphic relabelings (cross-replica cache
/// hits) and a sprinkle of guard 422s.
pub fn soak_corpus(seed: u64, instances: usize) -> Vec<CorpusItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::new();
    for i in 0..instances.max(1) {
        let n = 10 + (i % 8) * 2;
        let g = random::gnp_with_diameter_at_most(&mut rng, n, 0.55, 2);
        let strategy = ["greedy", "heuristic"][i % 2];
        items.push(CorpusItem {
            name: format!("soak{n}-{i}-{strategy}"),
            target: format!("/solve?p=2,1&strategy={strategy}"),
            body: graph_io::write_edge_list(&g),
            expect_status: 200,
        });
        if i % 3 == 0 {
            let perm = random::random_permutation(&mut rng, n);
            let h = g.relabeled(&perm);
            items.push(CorpusItem {
                name: format!("soak{n}-{i}-{strategy}-relabel"),
                target: format!("/solve?p=2,1&strategy={strategy}"),
                body: graph_io::write_edge_list(&h),
                expect_status: 200,
            });
        }
    }
    // Guard rejections are instant 422s: error-path coverage at soak rate.
    let g = classic::complete(30);
    items.push(CorpusItem {
        name: "soak-guard-k30".into(),
        target: "/solve?p=2,1&strategy=exact".into(),
        body: graph_io::write_edge_list(&g),
        expect_status: 422,
    });
    items
}

/// An exact-strategy-only corpus of small instances (the cold-vs-warm
/// latency benchmark: Held–Karp solves are expensive, cache hits are not).
pub fn exact_corpus(seed: u64, instances: usize) -> Vec<CorpusItem> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..instances.max(1))
        .map(|i| {
            let n = 16 + (i % 5) * 2; // 16..24: squarely in Held–Karp range
            let g = random::gnp_with_diameter_at_most(&mut rng, n, 0.6, 2);
            CorpusItem {
                name: format!("exact{n}-{i}"),
                target: "/solve?p=2,1&strategy=exact".into(),
                body: graph_io::write_edge_list(&g),
                expect_status: 200,
            }
        })
        .collect()
}

/// Statistics from one pass over a corpus.
#[derive(Clone, Debug, Default)]
pub struct PassStats {
    pub requests: u64,
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    /// Responses whose status did not match the item's `expect_status`.
    pub unexpected: u64,
    /// Per-request wall latencies, microseconds, request order.
    pub latencies_us: Vec<u64>,
    /// Response bodies keyed by item name (for bit-identical comparisons).
    pub bodies: Vec<(String, String)>,
}

impl PassStats {
    pub fn hit_rate(&self) -> f64 {
        let denom = self.hits + self.misses;
        if denom == 0 {
            0.0
        } else {
            self.hits as f64 / denom as f64
        }
    }

    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("requests", self.requests)
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .u64("coalesced", self.coalesced)
            .u64("unexpected", self.unexpected)
            .f64("hit_rate", self.hit_rate())
            .u64("p50_us", self.percentile_us(0.50))
            .u64("p90_us", self.percentile_us(0.90))
            .u64("p99_us", self.percentile_us(0.99))
            .u64("p999_us", self.percentile_us(0.999))
            .finish()
    }
}

/// Replay `corpus` once against `addr` over a keep-alive connection.
pub fn run_pass(addr: SocketAddr, corpus: &[CorpusItem]) -> std::io::Result<PassStats> {
    let mut client = Client::new(addr);
    let mut stats = PassStats::default();
    for item in corpus {
        let started = Instant::now();
        let resp = client.request("POST", &item.target, &item.body)?;
        let elapsed = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        stats.requests += 1;
        stats.latencies_us.push(elapsed);
        if resp.status != item.expect_status {
            stats.unexpected += 1;
        }
        match resp.header("x-dclab-cache") {
            Some("hit") => stats.hits += 1,
            Some("miss") => stats.misses += 1,
            Some("coalesced") => stats.coalesced += 1,
            _ => {}
        }
        stats.bodies.push((item.name.clone(), resp.body));
    }
    Ok(stats)
}

/// Replay the corpus `passes` times; returns per-pass stats.
pub fn run(
    addr: SocketAddr,
    corpus: &[CorpusItem],
    passes: usize,
) -> std::io::Result<Vec<PassStats>> {
    (0..passes).map(|_| run_pass(addr, corpus)).collect()
}

/// Knobs for a concurrent multi-replica soak ([`soak`]).
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Replica addresses; clients are spread round-robin across them.
    pub addrs: Vec<SocketAddr>,
    /// Concurrent keep-alive connections (client threads).
    pub connections: usize,
    pub duration: Duration,
    /// Corpus seed (same corpus on every connection, offset per thread so
    /// replicas see interleaved cold/warm traffic).
    pub seed: u64,
    /// Corpus size passed to [`soak_corpus`].
    pub instances: usize,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            addrs: Vec::new(),
            connections: 8,
            duration: Duration::from_secs(5),
            seed: 42,
            instances: 12,
        }
    }
}

/// Aggregate statistics from a [`soak`] run.
#[derive(Clone, Debug, Default)]
pub struct SoakStats {
    pub requests: u64,
    /// Transport-level failures (connect/read errors after one retry).
    pub transport_errors: u64,
    /// Responses whose status did not match the corpus expectation and
    /// were not an overload shed.
    pub unexpected: u64,
    /// `503` overload sheds (expected under deliberate saturation; never
    /// counted as unexpected).
    pub sheds: u64,
    /// 5xx responses that are *not* sheds — the cluster-soak gate asserts
    /// this stays zero.
    pub hard_5xx: u64,
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    /// `x-dclab-routed` tallies (cluster mode only; all zero otherwise).
    pub routed_local: u64,
    pub routed_forwarded: u64,
    pub routed_fallback: u64,
    /// Per-request wall latencies, microseconds, arrival order.
    pub latencies_us: Vec<u64>,
}

impl SoakStats {
    fn absorb(&mut self, other: SoakStats) {
        self.requests += other.requests;
        self.transport_errors += other.transport_errors;
        self.unexpected += other.unexpected;
        self.sheds += other.sheds;
        self.hard_5xx += other.hard_5xx;
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.routed_local += other.routed_local;
        self.routed_forwarded += other.routed_forwarded;
        self.routed_fallback += other.routed_fallback;
        self.latencies_us.extend(other.latencies_us);
    }

    pub fn hit_rate(&self) -> f64 {
        let denom = self.hits + self.misses;
        if denom == 0 {
            0.0
        } else {
            self.hits as f64 / denom as f64
        }
    }

    /// Fraction of routed responses answered by the replica the client
    /// happened to dial (cluster mode). ~1/replicas under uniform load.
    pub fn routing_local_rate(&self) -> f64 {
        let denom = self.routed_local + self.routed_forwarded + self.routed_fallback;
        if denom == 0 {
            0.0
        } else {
            self.routed_local as f64 / denom as f64
        }
    }

    pub fn percentile_us(&self, q: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }

    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("requests", self.requests)
            .u64("transport_errors", self.transport_errors)
            .u64("unexpected", self.unexpected)
            .u64("sheds", self.sheds)
            .u64("hard_5xx", self.hard_5xx)
            .u64("hits", self.hits)
            .u64("misses", self.misses)
            .u64("coalesced", self.coalesced)
            .f64("hit_rate", self.hit_rate())
            .u64("routed_local", self.routed_local)
            .u64("routed_forwarded", self.routed_forwarded)
            .u64("routed_fallback", self.routed_fallback)
            .f64("routing_local_rate", self.routing_local_rate())
            .u64("p50_us", self.percentile_us(0.50))
            .u64("p90_us", self.percentile_us(0.90))
            .u64("p99_us", self.percentile_us(0.99))
            .u64("p999_us", self.percentile_us(0.999))
            .finish()
    }
}

/// Concurrent soak: `connections` keep-alive clients spread round-robin
/// over the replica list, each replaying the [`soak_corpus`] (offset by
/// its thread index) until the deadline. Latencies, cache statuses,
/// `x-dclab-routed` tallies, and shed/5xx counts are merged across all
/// threads.
pub fn soak(cfg: &SoakConfig) -> Result<SoakStats, String> {
    if cfg.addrs.is_empty() {
        return Err("soak needs at least one address".into());
    }
    let corpus = std::sync::Arc::new(soak_corpus(cfg.seed, cfg.instances));
    let deadline = Instant::now() + cfg.duration;
    let mut joins = Vec::new();
    for t in 0..cfg.connections.max(1) {
        let addr = cfg.addrs[t % cfg.addrs.len()];
        let corpus = std::sync::Arc::clone(&corpus);
        joins.push(std::thread::spawn(move || {
            soak_thread(addr, &corpus, t, deadline)
        }));
    }
    let mut total = SoakStats::default();
    for j in joins {
        total.absorb(j.join().map_err(|_| "soak thread panicked".to_string())?);
    }
    Ok(total)
}

fn soak_thread(
    addr: SocketAddr,
    corpus: &[CorpusItem],
    offset: usize,
    deadline: Instant,
) -> SoakStats {
    let mut client = Client::new(addr);
    let mut stats = SoakStats::default();
    let mut i = offset;
    while Instant::now() < deadline {
        let item = &corpus[i % corpus.len()];
        i += 1;
        let started = Instant::now();
        let resp = match client.request("POST", &item.target, &item.body) {
            Ok(r) => r,
            Err(_) => {
                stats.transport_errors += 1;
                continue;
            }
        };
        let elapsed = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        stats.requests += 1;
        stats.latencies_us.push(elapsed);
        if resp.status == 503 {
            stats.sheds += 1;
        } else if resp.status >= 500 {
            stats.hard_5xx += 1;
            stats.unexpected += 1;
        } else if resp.status != item.expect_status {
            stats.unexpected += 1;
        }
        match resp.header("x-dclab-cache") {
            Some("hit") => stats.hits += 1,
            Some("miss") => stats.misses += 1,
            Some("coalesced") => stats.coalesced += 1,
            _ => {}
        }
        match resp.header("x-dclab-routed") {
            Some("local") => stats.routed_local += 1,
            Some("forwarded") => stats.routed_forwarded += 1,
            Some("fallback") => stats.routed_fallback += 1,
            _ => {}
        }
    }
    stats
}

/// In-process smoke test (the CI job behind `dclab serve --self-test`):
/// start a server on an ephemeral port, replay a mixed corpus for roughly
/// `duration`, then shut down cleanly. Returns a JSON summary, or an error
/// describing which invariant failed.
pub fn self_test(duration: Duration) -> Result<String, String> {
    let handle = crate::server::start(crate::server::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 16,
        queue_cap: 0,
        ..Default::default()
    })
    .map_err(|e| format!("bind failed: {e}"))?;
    let addr = handle.addr();
    let corpus = mixed_corpus(42, 12);
    let deadline = Instant::now() + duration;
    let mut passes: Vec<PassStats> = Vec::new();
    loop {
        let pass = run_pass(addr, &corpus).map_err(|e| format!("loadgen pass failed: {e}"))?;
        passes.push(pass);
        if Instant::now() >= deadline && passes.len() >= 2 {
            break;
        }
    }

    // Invariants the smoke test asserts.
    let warm = &passes[passes.len() - 1];
    let total_hits: u64 = passes.iter().map(|p| p.hits).sum();
    if total_hits == 0 {
        return Err("no cache hits across passes".into());
    }
    if warm.hit_rate() < 0.9 {
        return Err(format!(
            "warm-pass hit rate {:.2} below 0.9",
            warm.hit_rate()
        ));
    }
    if let Some(bad) = passes.iter().position(|p| p.unexpected > 0) {
        return Err(format!(
            "pass {bad} had {} unexpected statuses",
            passes[bad].unexpected
        ));
    }
    // Warm reports must be byte-identical to cold ones (same instance
    // bytes → same JSON, cache or not).
    let cold = &passes[0];
    for ((name, cold_body), (_, warm_body)) in cold.bodies.iter().zip(&warm.bodies) {
        if cold_body != warm_body {
            return Err(format!("report for '{name}' changed between passes"));
        }
    }

    // Clean shutdown via the admin endpoint, then join.
    let mut client = Client::new(addr);
    let resp = client
        .request("POST", "/shutdown", "")
        .map_err(|e| format!("shutdown request failed: {e}"))?;
    if resp.status != 200 {
        return Err(format!("shutdown returned {}", resp.status));
    }
    // Close our connection before joining so no worker is left blocked on
    // a keep-alive read.
    drop(client);
    handle.join();

    let passes_json: Vec<String> = passes.iter().map(PassStats::to_json).collect();
    Ok(Obj::new()
        .str("status", "ok")
        .usize("passes", passes_json.len())
        .u64("total_hits", total_hits)
        .f64("warm_hit_rate", warm.hit_rate())
        .raw("per_pass", &dclab_engine::json::array(passes_json))
        .finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpora_are_deterministic_and_shaped() {
        let a = mixed_corpus(7, 12);
        let b = mixed_corpus(7, 12);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.body == y.body));
        assert!(a.iter().any(|i| i.expect_status == 422), "has guard items");
        assert!(a.iter().any(|i| i.name.ends_with("relabel")));
        assert!(a.iter().any(|i| i.target.contains("format=dimacs")));
        let e = exact_corpus(7, 10);
        assert!(e.iter().all(|i| i.target.contains("strategy=exact")));
        // The soak corpus must never carry an exact-strategy 200 item:
        // Held–Karp cold solves would turn the soak histogram into a
        // solver benchmark.
        let s = soak_corpus(7, 12);
        assert!(s
            .iter()
            .all(|i| i.expect_status != 200 || !i.target.contains("exact")));
        assert!(s.iter().any(|i| i.expect_status == 422));
        assert!(s.iter().any(|i| i.name.ends_with("relabel")));
    }

    #[test]
    fn soak_stats_merge_and_rates() {
        let mut total = SoakStats::default();
        total.absorb(SoakStats {
            requests: 10,
            hits: 6,
            misses: 2,
            sheds: 1,
            routed_local: 5,
            routed_forwarded: 3,
            latencies_us: vec![10, 20],
            ..Default::default()
        });
        total.absorb(SoakStats {
            requests: 5,
            hits: 2,
            misses: 0,
            hard_5xx: 1,
            unexpected: 1,
            routed_local: 1,
            routed_fallback: 1,
            latencies_us: vec![30],
            ..Default::default()
        });
        assert_eq!(total.requests, 15);
        assert_eq!(total.latencies_us.len(), 3);
        assert!((total.hit_rate() - 0.8).abs() < 1e-9);
        assert!((total.routing_local_rate() - 0.6).abs() < 1e-9);
        let json = total.to_json();
        assert!(json.contains("\"hard_5xx\":1"));
        assert!(json.contains("\"p99_us\":30"));
    }

    #[test]
    fn pass_stats_percentiles() {
        let stats = PassStats {
            latencies_us: vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100],
            ..Default::default()
        };
        assert_eq!(stats.percentile_us(0.5), 50);
        assert_eq!(stats.percentile_us(0.9), 90);
        assert_eq!(stats.percentile_us(1.0), 100);
    }
}
