//! The `--legacy-blocking` serve path: thread-per-connection over the
//! [`dclab_par::WorkerPool`], exactly the pre-reactor architecture.
//!
//! Retained as the differential oracle for the epoll reactor (the same
//! role `compute_sequential` plays for the bit-parallel APSP and
//! `chained_lk_scalar` for the SoA local search): both paths share one
//! parser ([`read_request_buffered`] wraps the reactor's `try_parse`) and
//! one response renderer, so for any request sequence their response
//! bytes must be identical — pinned by the differential e2e suite.
//!
//! Capacity semantics differ by design: each kept-alive connection pins a
//! worker here, so concurrent connections are capped at the worker count
//! (+ queue); the reactor serves orders of magnitude more. It is also the
//! non-Linux fallback, since the reactor's epoll surface is Linux-only.

use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use dclab_par::{SubmitError, WorkerPool};

use crate::http::{read_request_buffered, write_response, ParseError, RecvBuffer};
use crate::server::{self, ServeCtx};

/// Accept loop: hand each connection to the pool, shed with `503` +
/// `Retry-After` when the queue is full.
pub(crate) fn accept_loop(
    listener: TcpListener,
    ctx: Arc<ServeCtx>,
    workers: usize,
    queue_cap: usize,
    conn_idle_ms: u64,
) {
    let mut pool = WorkerPool::new(workers, queue_cap);
    ctx.metrics
        .pool_workers
        .store(pool.workers() as u64, Ordering::Relaxed);
    loop {
        ctx.metrics
            .pool_queue_depth
            .store(pool.queue_len() as u64, Ordering::Relaxed);
        ctx.metrics
            .pool_in_flight
            .store(pool.in_flight() as u64, Ordering::Relaxed);
        match listener.accept() {
            Ok((stream, _)) => {
                ctx.metrics.conns_accepted.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nonblocking(false);
                // Idle keep-alive connections time out rather than pinning
                // a worker forever (also bounds graceful-shutdown latency).
                let _ = stream.set_read_timeout(Some(Duration::from_millis(conn_idle_ms.max(1))));
                let _ = stream.set_nodelay(true);
                let conn_ctx = Arc::clone(&ctx);
                let shed_stream = stream.try_clone().ok();
                match pool.try_submit(move || handle_connection(conn_ctx, stream)) {
                    Ok(()) => {}
                    Err(SubmitError::QueueFull(job)) => {
                        // Shed load: drop the queued job (it owns the
                        // stream) and answer 503 on the clone without
                        // reading the request.
                        drop(job);
                        ctx.metrics
                            .rejected_overload
                            .fetch_add(1, Ordering::Relaxed);
                        ctx.metrics.record_status(503);
                        if let Some(mut s) = shed_stream {
                            let body = server::error_json("server overloaded", "overload");
                            let rid = server::generate_request_id();
                            let _ = write_response(
                                &mut s,
                                503,
                                &[("retry-after", "1"), ("x-request-id", &rid)],
                                body.as_bytes(),
                                false,
                            );
                        }
                    }
                    Err(SubmitError::ShuttingDown) => break,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if ctx.shutdown_requested() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => {
                if ctx.shutdown_requested() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    server::finish_shutdown(&ctx, &mut pool);
}

/// Decrements the open-connections gauge on every exit path.
struct ConnGuard<'a>(&'a ServeCtx);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        let open = &self.0.metrics.conns_open;
        let _ = open.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }
}

/// Serve one connection until close/EOF/timeout. The worker thread is
/// pinned here for the connection's whole lifetime — this is precisely
/// what the reactor exists to avoid.
fn handle_connection(ctx: Arc<ServeCtx>, stream: TcpStream) {
    ctx.metrics.conns_open.fetch_add(1, Ordering::Relaxed);
    let _guard = ConnGuard(&ctx);
    let mut write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut rb = RecvBuffer::default();
    loop {
        match read_request_buffered(&mut reader, &mut rb, ctx.max_body_bytes) {
            Ok(req) => {
                let rid = server::request_id(&req);
                let (status, extra, body) = server::route(&ctx, &req, &rid);
                // Re-check shutdown *after* routing so the `/shutdown`
                // response itself closes the connection and frees this
                // worker for the pool drain.
                let keep_alive = req.keep_alive() && !ctx.shutdown_requested();
                ctx.metrics.record_status(status);
                let mut header_refs: Vec<(&str, &str)> =
                    extra.iter().map(|(k, v)| (*k, v.as_str())).collect();
                header_refs.push(("x-request-id", &rid));
                if write_response(
                    &mut write_half,
                    status,
                    &header_refs,
                    body.as_bytes(),
                    keep_alive,
                )
                .is_err()
                    || !keep_alive
                {
                    return;
                }
            }
            Err(ParseError::ConnectionClosed) => return,
            Err(ParseError::Io(e)) => {
                // A read timeout on an *idle* keep-alive connection is the
                // blocking path's slow-loris reap.
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    ctx.metrics.conns_reaped.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
            Err(ParseError::Bad(reason)) => {
                ctx.metrics.record_status(400);
                let body = server::error_json(reason, "bad-request");
                let rid = server::generate_request_id();
                let _ = write_response(
                    &mut write_half,
                    400,
                    &[("x-request-id", &rid)],
                    body.as_bytes(),
                    false,
                );
                return;
            }
            Err(ParseError::TooLarge(reason)) => {
                let status = if reason.contains("header") { 431 } else { 413 };
                ctx.metrics.record_status(status);
                let body = server::error_json(reason, "too-large");
                let rid = server::generate_request_id();
                let _ = write_response(
                    &mut write_half,
                    status,
                    &[("x-request-id", &rid)],
                    body.as_bytes(),
                    false,
                );
                return;
            }
        }
    }
}
