//! End-to-end tests for the epoll reactor serve core: partial-I/O
//! robustness, differential byte-identity against `--legacy-blocking`,
//! connection-budget capacity, slow-loris reaping, body caps, admin
//! responsiveness under worker saturation, and consistent-hash cluster
//! routing.
//!
//! The differential suite leans on one determinism fact: a report's
//! `stats.phases` (microsecond timings) is filled only when a live trace
//! is installed, which `POST /solve` does and `POST /batch` does not. So
//! a cold `/batch` response is byte-deterministic, and a warm `/solve`
//! for the same instance returns the batch's phase-free cached bytes —
//! identical across two independent servers.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use dclab_graph::generators::{classic, random};
use dclab_graph::io as graph_io;
use dclab_serve::loadgen::{self, Client};
use dclab_serve::server::{start, ServeConfig};
use dclab_serve::ServerHandle;
use rand::SeedableRng;

fn server_with(cfg: ServeConfig) -> ServerHandle {
    start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind ephemeral port")
}

fn reactor_server() -> ServerHandle {
    server_with(ServeConfig {
        workers: 2,
        cache_mb: 8,
        queue_cap: 0,
        ..Default::default()
    })
}

fn shutdown(handle: ServerHandle) {
    let mut client = Client::new(handle.addr());
    let _ = client.request("POST", "/shutdown", "");
    drop(client);
    handle.join();
}

/// Read exactly one HTTP/1.1 response frame (head + content-length body)
/// in `chunk`-byte reads; returns the raw frame bytes.
fn read_frame(stream: &mut TcpStream, chunk: usize) -> Vec<u8> {
    let mut frame = Vec::new();
    let mut buf = vec![0u8; chunk.max(1)];
    let head_end = loop {
        let n = stream.read(&mut buf).expect("read response head");
        assert!(
            n > 0,
            "server closed mid-head: {:?}",
            String::from_utf8_lossy(&frame)
        );
        frame.extend_from_slice(&buf[..n]);
        if let Some(pos) = frame.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
    };
    let head = String::from_utf8_lossy(&frame[..head_end]).to_ascii_lowercase();
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length:"))
        .expect("content-length header")
        .trim()
        .parse()
        .expect("numeric content-length");
    while frame.len() < head_end + content_length {
        let n = stream.read(&mut buf).expect("read response body");
        assert!(n > 0, "server closed mid-body");
        frame.extend_from_slice(&buf[..n]);
    }
    assert_eq!(frame.len(), head_end + content_length, "no trailing bytes");
    frame
}

fn render_request(method: &str, target: &str, rid: &str, body: &str, close: bool) -> String {
    let conn = if close { "connection: close\r\n" } else { "" };
    format!(
        "{method} {target} HTTP/1.1\r\nhost: t\r\nx-request-id: {rid}\r\n{conn}content-length: {}\r\n\r\n{body}",
        body.len()
    )
}

// ---------------------------------------------------------------------
// Satellite: partial I/O. Requests dribbled a byte at a time, responses
// read one byte at a time, across keep-alive.
// ---------------------------------------------------------------------

#[test]
fn dribbled_requests_and_one_byte_reads_across_keep_alive() {
    let handle = reactor_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.set_nodelay(true).unwrap();

    let mut frames = Vec::new();
    for i in 0..2 {
        let request = render_request(
            "POST",
            "/solve?p=2,1",
            &format!("dribble-{i}"),
            &body,
            false,
        );
        // One byte per write, with pauses, so the reactor sees the
        // request as dozens of partial reads and must keep parser state
        // across them.
        for (j, byte) in request.as_bytes().iter().enumerate() {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            if j % 16 == 0 {
                stream.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        stream.flush().unwrap();
        frames.push(read_frame(&mut stream, 1));
    }
    let cold = String::from_utf8(frames[0].clone()).unwrap();
    let warm = String::from_utf8(frames[1].clone()).unwrap();
    assert!(cold.starts_with("HTTP/1.1 200"), "{cold}");
    assert!(warm.starts_with("HTTP/1.1 200"), "{warm}");
    assert!(cold.contains("x-dclab-cache: miss"), "{cold}");
    assert!(warm.contains("x-dclab-cache: hit"), "{warm}");
    assert!(cold.contains("x-request-id: dribble-0"), "{cold}");
    // Same instance bytes → bit-identical report, cold or cached.
    let body_of = |f: &str| f.split("\r\n\r\n").nth(1).unwrap().to_string();
    assert_eq!(body_of(&cold), body_of(&warm));
    drop(stream);
    shutdown(handle);
}

// ---------------------------------------------------------------------
// Satellite: differential oracle. The same request sequence against a
// reactor server and a --legacy-blocking server must produce identical
// response BYTES (request ids pinned by the client).
// ---------------------------------------------------------------------

#[test]
fn reactor_and_legacy_blocking_responses_are_byte_identical() {
    let mk = |legacy| {
        server_with(ServeConfig {
            workers: 2,
            cache_mb: 8,
            queue_cap: 0,
            legacy_blocking: legacy,
            ..Default::default()
        })
    };
    let reactor = mk(false);
    let legacy = mk(true);

    let petersen = graph_io::write_edge_list(&classic::petersen());
    let k30 = graph_io::write_edge_list(&classic::complete(30));
    let batch = format!("{petersen}%%\nnot a graph\n");
    // (method, target, body, expect). The /batch runs cold with NO live
    // trace, so its reports carry no phase timings; the warm /solve then
    // returns those phase-free bytes from the cache on both servers.
    let script: Vec<(&str, &str, &str)> = vec![
        ("GET", "/healthz", ""),
        ("GET", "/nope", ""),
        ("GET", "/solve", ""),
        ("POST", "/solve?p=2,1", "0 1\nnot an edge\n"),
        ("POST", "/solve?p=2,1&strategy=exact", &k30),
        ("POST", "/batch?p=2,1", &batch),
        ("POST", "/solve?p=2,1", &petersen),
        ("POST", "/solve?p=2,1&strategy=exact", &k30),
    ];

    let run = |addr: SocketAddr| -> Vec<Vec<u8>> {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        script
            .iter()
            .enumerate()
            .map(|(i, (method, target, body))| {
                let close = i == script.len() - 1;
                let req = render_request(method, target, &format!("diff-{i}"), body, close);
                stream.write_all(req.as_bytes()).unwrap();
                stream.flush().unwrap();
                read_frame(&mut stream, 4096)
            })
            .collect()
    };

    let via_reactor = run(reactor.addr());
    let via_legacy = run(legacy.addr());
    for (i, (r, l)) in via_reactor.iter().zip(&via_legacy).enumerate() {
        assert_eq!(
            String::from_utf8_lossy(r),
            String::from_utf8_lossy(l),
            "script step {i} ({:?}) diverged between reactor and legacy",
            script[i]
        );
    }
    // Sanity: the warm /solve really was a phase-free cache hit.
    let warm = String::from_utf8_lossy(&via_reactor[6]);
    assert!(warm.contains("x-dclab-cache: hit"), "{warm}");
    assert!(!warm.contains("\"phases\""), "{warm}");
    shutdown(reactor);
    shutdown(legacy);
}

// ---------------------------------------------------------------------
// Tentpole acceptance: at equal worker count the reactor sustains at
// least 4x the concurrent keep-alive connections of the legacy path,
// with no 5xx.
// ---------------------------------------------------------------------

/// Open keep-alive connections one at a time, each proving liveness with
/// a served request, until one fails to respond or `limit` is reached.
fn sustained_conns(addr: SocketAddr, limit: usize) -> usize {
    let mut held = Vec::new();
    for i in 0..limit {
        let Ok(mut stream) = TcpStream::connect(addr) else {
            return i;
        };
        stream
            .set_read_timeout(Some(Duration::from_millis(700)))
            .unwrap();
        let req = render_request("GET", "/healthz", &format!("cap-{i}"), "", false);
        if stream.write_all(req.as_bytes()).is_err() {
            return i;
        }
        let mut buf = [0u8; 1024];
        let mut got = Vec::new();
        loop {
            match stream.read(&mut buf) {
                Ok(0) | Err(_) => return i, // closed or timed out: not served
                Ok(n) => {
                    got.extend_from_slice(&buf[..n]);
                    if got.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
            }
        }
        let head = String::from_utf8_lossy(&got);
        assert!(
            head.starts_with("HTTP/1.1 200"),
            "unexpected non-200: {head}"
        );
        held.push(stream); // keep it open: the point is concurrency
    }
    limit
}

#[test]
fn reactor_sustains_4x_the_keep_alive_connections_of_legacy() {
    let workers = 2;
    let mk = |legacy| {
        server_with(ServeConfig {
            workers,
            cache_mb: 8,
            queue_cap: workers, // small bounded queue, same for both
            legacy_blocking: legacy,
            ..Default::default()
        })
    };
    let legacy = mk(true);
    // Every legacy keep-alive connection pins a worker, so it saturates
    // at the worker count no matter how many sockets accept().
    let legacy_sustained = sustained_conns(legacy.addr(), 32);
    assert!(
        legacy_sustained <= workers + 1,
        "legacy path should pin workers, sustained {legacy_sustained}"
    );
    drop(legacy); // keep-alive conns pin its workers; don't drain, just drop

    let reactor = mk(false);
    let target = (legacy_sustained.max(1)) * 4;
    let reactor_sustained = sustained_conns(reactor.addr(), 64.max(target));
    assert!(
        reactor_sustained >= target,
        "reactor sustained {reactor_sustained} < 4x legacy's {legacy_sustained}"
    );
    shutdown(reactor);
}

// ---------------------------------------------------------------------
// Connection budget: accepts beyond --max-conns are shed with
// 503 + Retry-After before any worker is involved.
// ---------------------------------------------------------------------

#[test]
fn connections_beyond_budget_are_shed_with_503() {
    let handle = server_with(ServeConfig {
        workers: 2,
        cache_mb: 8,
        queue_cap: 0,
        max_conns: 3,
        ..Default::default()
    });
    let addr = handle.addr();
    let mut held = Vec::new();
    for i in 0..3 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let req = render_request("GET", "/healthz", &format!("budget-{i}"), "", false);
        stream.write_all(req.as_bytes()).unwrap();
        read_frame(&mut stream, 4096);
        held.push(stream);
    }
    // Fourth connection: shed at accept, without sending a single byte.
    let mut extra = TcpStream::connect(addr).unwrap();
    extra
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    let mut shed = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match extra.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => shed.extend_from_slice(&buf[..n]),
            Err(e) => panic!("expected shed response then close, got {e}"),
        }
    }
    let shed = String::from_utf8_lossy(&shed);
    assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
    assert!(shed.contains("retry-after: 1"), "{shed}");
    assert!(shed.contains("connection: close"), "{shed}");

    // The shed is visible on /metrics via one of the budgeted conns.
    let req = render_request("GET", "/metrics", "budget-m", "", false);
    held[0].write_all(req.as_bytes()).unwrap();
    let metrics = String::from_utf8(read_frame(&mut held[0], 4096)).unwrap();
    assert!(
        metrics.contains("dclab_rejected_conn_budget_total 1"),
        "{metrics}"
    );
    drop(held);
    shutdown(handle);
}

// ---------------------------------------------------------------------
// Satellite: slow-loris defense. Idle connections past --conn-idle-ms
// are reaped and counted.
// ---------------------------------------------------------------------

#[test]
fn idle_connections_are_reaped_and_counted() {
    let handle = server_with(ServeConfig {
        workers: 2,
        cache_mb: 8,
        queue_cap: 0,
        conn_idle_ms: 150,
        ..Default::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let req = render_request("GET", "/healthz", "idle-0", "", false);
    stream.write_all(req.as_bytes()).unwrap();
    read_frame(&mut stream, 4096);

    // Go idle past the deadline; the reaper must close us (EOF), and a
    // half-sent head counts as idle too (the classic slow-loris).
    let started = Instant::now();
    let mut buf = [0u8; 64];
    match stream.read(&mut buf) {
        Ok(0) => {}
        other => panic!("expected reap EOF, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(4),
        "reap took {:?}",
        started.elapsed()
    );

    let mut client = Client::new(handle.addr());
    let metrics = client.request("GET", "/metrics", "").unwrap();
    let reaped: u64 = metrics
        .body
        .lines()
        .find_map(|l| l.strip_prefix("dclab_conns_reaped_total "))
        .expect("reap counter present")
        .trim()
        .parse()
        .unwrap();
    assert!(reaped >= 1, "{}", metrics.body);
    drop(client);
    shutdown(handle);
}

// ---------------------------------------------------------------------
// Satellite: --max-body-bytes. Oversized declared bodies get 413 with a
// JSON error body — before the body is transferred — on both paths.
// ---------------------------------------------------------------------

#[test]
fn oversized_bodies_rejected_with_413_on_both_paths() {
    for legacy in [false, true] {
        let handle = server_with(ServeConfig {
            workers: 2,
            cache_mb: 8,
            queue_cap: 0,
            max_body_bytes: 1024,
            legacy_blocking: legacy,
            ..Default::default()
        });
        // Declare a 100 MB body but send only the head: the 413 must
        // arrive immediately, proving the server rejects on the declared
        // length instead of buffering.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream
            .write_all(b"POST /solve HTTP/1.1\r\nhost: t\r\ncontent-length: 104857600\r\n\r\n")
            .unwrap();
        let frame = String::from_utf8(read_frame(&mut stream, 4096)).unwrap();
        assert!(
            frame.starts_with("HTTP/1.1 413"),
            "legacy={legacy}: {frame}"
        );
        assert!(frame.contains("\"kind\":\"too-large\""), "{frame}");
        assert!(frame.contains("connection: close"), "{frame}");

        // An in-budget request on a fresh connection still works.
        let mut client = Client::new(handle.addr());
        let small = graph_io::write_edge_list(&classic::complete(4));
        let ok = client.request("POST", "/solve?p=2,1", &small).unwrap();
        assert_eq!(ok.status, 200, "{}", ok.body);
        drop(client);
        shutdown(handle);
    }
}

// ---------------------------------------------------------------------
// Satellite: admin endpoints stay responsive while every worker is busy
// and the queue is full — they run on the reactor thread, never the pool.
// ---------------------------------------------------------------------

#[test]
fn metrics_and_debug_respond_while_workers_are_saturated() {
    let handle = server_with(ServeConfig {
        workers: 1,
        cache_mb: 8,
        queue_cap: 1,
        ..Default::default()
    });
    let addr = handle.addr();

    // Two deadline solves on distinct instances: one occupies the single
    // worker, the other fills the queue.
    let solvers: Vec<_> = (0..2)
        .map(|seed| {
            std::thread::spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let g = random::gnp_with_diameter_at_most(&mut rng, 300, 0.5, 2);
                let body = graph_io::write_edge_list(&g);
                let mut client = Client::new(addr);
                client
                    .request("POST", "/solve?p=2,1&strategy=race&deadline-ms=1500", &body)
                    .unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(400));

    // Worker busy + queue full: admin endpoints must still answer fast.
    let mut client = Client::new(addr);
    for target in ["/healthz", "/metrics", "/debug/slowlog", "/debug/traces"] {
        let started = Instant::now();
        let resp = client.request("GET", target, "").unwrap();
        assert_eq!(resp.status, 200, "{target}: {}", resp.body);
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "{target} took {:?} under saturation",
            started.elapsed()
        );
    }

    // A third solve is shed with 503 + Retry-After — and the shed
    // happens without blocking and keeps the connection usable.
    let mut rng = rand::rngs::StdRng::seed_from_u64(77);
    let g = random::gnp_with_diameter_at_most(&mut rng, 300, 0.5, 2);
    let body = graph_io::write_edge_list(&g);
    let shed = client
        .request("POST", "/solve?p=2,1&strategy=race&deadline-ms=1500", &body)
        .unwrap();
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.body.contains("\"kind\":\"overload\""), "{}", shed.body);
    let after = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(after.status, 200, "connection survives a shed");

    for j in solvers {
        let resp = j.join().unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body);
    }
    drop(client);
    shutdown(handle);
}

// ---------------------------------------------------------------------
// Tentpole: cluster mode. Two replicas consistent-hash canonical
// instance identities; non-owners proxy one hop; a soak across both
// replicas sees zero hard 5xx and live routing.
// ---------------------------------------------------------------------

fn free_addr() -> String {
    let l = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = l.local_addr().unwrap().to_string();
    drop(l);
    addr
}

#[test]
fn two_replica_cluster_routes_and_shares_the_cache() {
    let addr_a = free_addr();
    let addr_b = free_addr();
    let replicas = vec![addr_a.clone(), addr_b.clone()];
    let mk = |own: &str| {
        start(ServeConfig {
            addr: own.into(),
            workers: 2,
            cache_mb: 8,
            queue_cap: 0,
            cluster: replicas.clone(),
            ..Default::default()
        })
        .expect("bind cluster replica")
    };
    let a = mk(&addr_a);
    let b = mk(&addr_b);
    let mut via_a = Client::new(a.addr());
    let mut via_b = Client::new(b.addr());

    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut local = 0u64;
    let mut forwarded = 0u64;
    for i in 0..12 {
        let n = 10 + (i % 6);
        let g = random::gnp_with_diameter_at_most(&mut rng, n, 0.6, 2);
        let body = graph_io::write_edge_list(&g);
        let cold = via_a.request("POST", "/solve?p=2,1", &body).unwrap();
        assert_eq!(cold.status, 200, "{}", cold.body);
        match cold.header("x-dclab-routed") {
            Some("local") => local += 1,
            Some("forwarded") => forwarded += 1,
            other => panic!("missing/odd routing header {other:?}"),
        }
        // The owner cached it, so the same instance via the OTHER
        // replica is a hit — either locally owned or proxied to the
        // owner's cache — with a bit-identical report.
        let warm = via_b.request("POST", "/solve?p=2,1", &body).unwrap();
        assert_eq!(warm.status, 200, "{}", warm.body);
        assert_eq!(warm.header("x-dclab-cache"), Some("hit"), "instance {i}");
        assert_eq!(warm.body, cold.body, "instance {i} report diverged");
    }
    assert!(local > 0, "no locally-owned instances in 12 draws");
    assert!(forwarded > 0, "no forwarded instances in 12 draws");

    // Cross-replica soak: mixed corpus, several connections, no hard
    // 5xx, routing live on both sides.
    let stats = loadgen::soak(&loadgen::SoakConfig {
        addrs: vec![a.addr(), b.addr()],
        connections: 4,
        duration: Duration::from_millis(800),
        seed: 42,
        instances: 10,
    })
    .expect("soak runs");
    assert!(stats.requests > 0);
    assert_eq!(stats.transport_errors, 0);
    assert_eq!(stats.hard_5xx, 0, "{:?}", stats);
    assert_eq!(stats.unexpected, 0, "{:?}", stats);
    assert!(stats.routed_forwarded > 0, "{:?}", stats);
    assert!(stats.routed_local > 0, "{:?}", stats);

    drop(via_a);
    drop(via_b);
    shutdown(a);
    shutdown(b);
}
