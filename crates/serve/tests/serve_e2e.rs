//! End-to-end tests: a real server on an ephemeral port, a real TCP
//! client, full request/response cycles.

use std::time::Duration;

use dclab_graph::generators::classic;
use dclab_graph::io as graph_io;
use dclab_serve::loadgen::{self, Client};
use dclab_serve::server::{start, ServeConfig};
use dclab_serve::ServerHandle;

fn test_server() -> (ServerHandle, Client) {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 8,
        queue_cap: 0,
    })
    .expect("bind ephemeral port");
    let client = Client::new(handle.addr());
    (handle, client)
}

fn stop(handle: ServerHandle, client: Client) {
    drop(client);
    handle.shutdown();
    handle.join();
}

#[test]
fn healthz_and_metrics_respond() {
    let (handle, mut client) = test_server();
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("\"requests_total\":"));
    assert!(metrics.body.contains("\"cache\":{"));
    assert!(metrics.body.contains("\"solve_latency\":{"));
    stop(handle, client);
}

#[test]
fn solve_cold_then_warm_is_bit_identical() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let cold = client
        .request("POST", "/solve?p=2,1&strategy=auto", &body)
        .unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-dclab-cache"), Some("miss"));
    assert!(cold.body.contains("\"span\":9"), "λ_{{2,1}}(Petersen) = 9");
    let warm = client
        .request("POST", "/solve?p=2,1&strategy=auto", &body)
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-dclab-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "cached report is bit-identical");
    stop(handle, client);
}

#[test]
fn isomorphic_relabeling_hits_the_cache() {
    let (handle, mut client) = test_server();
    let g = classic::petersen();
    let perm = vec![5, 0, 8, 2, 9, 1, 7, 3, 6, 4];
    let h = g.relabeled(&perm);
    let first = client
        .request("POST", "/solve?p=2,1", &graph_io::write_edge_list(&g))
        .unwrap();
    assert_eq!(first.header("x-dclab-cache"), Some("miss"));
    let second = client
        .request("POST", "/solve?p=2,1", &graph_io::write_edge_list(&h))
        .unwrap();
    assert_eq!(
        second.header("x-dclab-cache"),
        Some("hit"),
        "relabeled instance must hit the canonical entry"
    );
    // Same span, and a labeling valid for the *relabeled* graph.
    assert!(second.body.contains("\"span\":9"));
    stop(handle, client);
}

#[test]
fn guard_failure_returns_422_with_json_error() {
    let (handle, mut client) = test_server();
    // n = 30 > EXACT_MAX_N with an explicit exact request → GuardError.
    let body = graph_io::write_edge_list(&classic::complete(30));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"guard\""), "{}", resp.body);
    assert!(
        resp.body.contains("exceeds the exact-solver guard"),
        "GuardError message surfaces verbatim: {}",
        resp.body
    );
    stop(handle, client);
}

#[test]
fn unsupported_and_parse_errors_are_typed() {
    let (handle, mut client) = test_server();
    // Path graph has diameter > 2: the Theorem 2 reduction refuses.
    let body = graph_io::write_edge_list(&classic::path(8));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(
        resp.body.contains("\"kind\":\"reduction\""),
        "{}",
        resp.body
    );
    // Garbage body → 400 with line-accurate parse error.
    let resp = client
        .request("POST", "/solve?p=2,1", "0 1\nnot an edge\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"kind\":\"parse\""));
    assert!(resp.body.contains("line 2"), "{}", resp.body);
    // Bad query params → 400.
    let resp = client
        .request("POST", "/solve?strategy=frobnicate", "0 1\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    stop(handle, client);
}

#[test]
fn dimacs_bodies_sniffed_and_explicit() {
    let (handle, mut client) = test_server();
    let dimacs = graph_io::write_dimacs(&classic::petersen());
    let sniffed = client.request("POST", "/solve?p=2,1", &dimacs).unwrap();
    assert_eq!(sniffed.status, 200, "{}", sniffed.body);
    let explicit = client
        .request("POST", "/solve?p=2,1&format=dimacs", &dimacs)
        .unwrap();
    assert_eq!(explicit.status, 200);
    assert_eq!(explicit.header("x-dclab-cache"), Some("hit"));
    stop(handle, client);
}

#[test]
fn batch_endpoint_solves_many_and_reports_cache_headers() {
    let (handle, mut client) = test_server();
    let a = graph_io::write_edge_list(&classic::complete(5));
    let b = graph_io::write_edge_list(&classic::petersen());
    let body = format!("{a}%%\n{b}%%\nthis is not a graph\n");
    let resp = client.request("POST", "/batch?p=2,1", &body).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-dclab-cache-hits"), Some("0"));
    assert_eq!(resp.header("x-dclab-cache-misses"), Some("2"));
    assert!(resp.body.starts_with('['));
    assert!(
        resp.body.contains("\"kind\":\"parse\""),
        "third item errored"
    );
    // Replaying the batch is all hits.
    let again = client.request("POST", "/batch?p=2,1", &body).unwrap();
    assert_eq!(again.header("x-dclab-cache-hits"), Some("2"));
    assert_eq!(again.header("x-dclab-cache-misses"), Some("0"));
    stop(handle, client);
}

#[test]
fn unknown_paths_and_methods_rejected() {
    let (handle, mut client) = test_server();
    let resp = client.request("GET", "/nope", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/solve", "").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request("POST", "/healthz", "").unwrap();
    assert_eq!(resp.status, 405);
    stop(handle, client);
}

#[test]
fn metrics_reflect_traffic_and_strategies() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::complete(8));
    for _ in 0..3 {
        let r = client
            .request("POST", "/solve?p=2,1&strategy=exact", &body)
            .unwrap();
        assert_eq!(r.status, 200);
    }
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("\"solve_requests\":3"),
        "{}",
        metrics.body
    );
    assert!(metrics.body.contains("\"hits\":2"), "{}", metrics.body);
    assert!(metrics.body.contains("\"misses\":1"), "{}", metrics.body);
    assert!(metrics.body.contains("\"exact\":1"), "one actual solve");
    stop(handle, client);
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (handle, mut client) = test_server();
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("shutting-down"));
    drop(client);
    // join() must return promptly (accept loop polls the flag).
    let start = std::time::Instant::now();
    handle.join();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "graceful shutdown took {:?}",
        start.elapsed()
    );
}

#[test]
fn loadgen_self_test_passes() {
    let summary = loadgen::self_test(Duration::from_millis(500)).expect("self test passes");
    assert!(summary.contains("\"status\":\"ok\""));
    assert!(summary.contains("\"warm_hit_rate\":1.000000"), "{summary}");
}
