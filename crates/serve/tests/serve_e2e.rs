//! End-to-end tests: a real server on an ephemeral port, a real TCP
//! client, full request/response cycles.

use std::time::Duration;

use dclab_graph::generators::classic;
use dclab_graph::io as graph_io;
use dclab_serve::loadgen::{self, Client};
use dclab_serve::server::{start, ServeConfig};
use dclab_serve::ServerHandle;

fn test_server() -> (ServerHandle, Client) {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 8,
        queue_cap: 0,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(handle.addr());
    (handle, client)
}

fn stop(handle: ServerHandle, client: Client) {
    drop(client);
    handle.shutdown();
    handle.join();
}

#[test]
fn healthz_and_metrics_respond() {
    let (handle, mut client) = test_server();
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");
    // Default /metrics is Prometheus text with its own content-type.
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "Prometheus text must not claim to be JSON"
    );
    assert!(metrics.body.contains("# TYPE dclab_requests_total counter"));
    assert!(metrics.body.contains("dclab_cache_hits_total 0"));
    assert!(metrics
        .body
        .contains("# TYPE dclab_solve_latency_seconds histogram"));
    // JSON view still available for humans and the loadgen.
    let json = client.request("GET", "/metrics?format=json", "").unwrap();
    assert_eq!(json.status, 200);
    assert_eq!(json.header("content-type"), Some("application/json"));
    assert!(json.body.contains("\"requests_total\":"));
    assert!(json.body.contains("\"cache\":{"));
    assert!(json.body.contains("\"solve_latency\":{"));
    let bad = client.request("GET", "/metrics?format=xml", "").unwrap();
    assert_eq!(bad.status, 400);
    stop(handle, client);
}

#[test]
fn solve_cold_then_warm_is_bit_identical() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let cold = client
        .request("POST", "/solve?p=2,1&strategy=auto", &body)
        .unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-dclab-cache"), Some("miss"));
    assert!(cold.body.contains("\"span\":9"), "λ_{{2,1}}(Petersen) = 9");
    let warm = client
        .request("POST", "/solve?p=2,1&strategy=auto", &body)
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-dclab-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "cached report is bit-identical");
    stop(handle, client);
}

#[test]
fn isomorphic_relabeling_hits_the_cache() {
    let (handle, mut client) = test_server();
    let g = classic::petersen();
    let perm = vec![5, 0, 8, 2, 9, 1, 7, 3, 6, 4];
    let h = g.relabeled(&perm);
    let first = client
        .request("POST", "/solve?p=2,1", &graph_io::write_edge_list(&g))
        .unwrap();
    assert_eq!(first.header("x-dclab-cache"), Some("miss"));
    let second = client
        .request("POST", "/solve?p=2,1", &graph_io::write_edge_list(&h))
        .unwrap();
    assert_eq!(
        second.header("x-dclab-cache"),
        Some("hit"),
        "relabeled instance must hit the canonical entry"
    );
    // Same span, and a labeling valid for the *relabeled* graph.
    assert!(second.body.contains("\"span\":9"));
    stop(handle, client);
}

#[test]
fn guard_failure_returns_422_with_json_error() {
    let (handle, mut client) = test_server();
    // n = 30 > EXACT_MAX_N with an explicit exact request → GuardError.
    let body = graph_io::write_edge_list(&classic::complete(30));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"guard\""), "{}", resp.body);
    assert!(
        resp.body.contains("exceeds the exact-solver guard"),
        "GuardError message surfaces verbatim: {}",
        resp.body
    );
    stop(handle, client);
}

#[test]
fn unsupported_and_parse_errors_are_typed() {
    let (handle, mut client) = test_server();
    // Path graph has diameter > 2: the Theorem 2 reduction refuses.
    let body = graph_io::write_edge_list(&classic::path(8));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(
        resp.body.contains("\"kind\":\"reduction\""),
        "{}",
        resp.body
    );
    // Garbage body → 400 with line-accurate parse error.
    let resp = client
        .request("POST", "/solve?p=2,1", "0 1\nnot an edge\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"kind\":\"parse\""));
    assert!(resp.body.contains("line 2"), "{}", resp.body);
    // Bad query params → 400.
    let resp = client
        .request("POST", "/solve?strategy=frobnicate", "0 1\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    stop(handle, client);
}

#[test]
fn dimacs_bodies_sniffed_and_explicit() {
    let (handle, mut client) = test_server();
    let dimacs = graph_io::write_dimacs(&classic::petersen());
    let sniffed = client.request("POST", "/solve?p=2,1", &dimacs).unwrap();
    assert_eq!(sniffed.status, 200, "{}", sniffed.body);
    let explicit = client
        .request("POST", "/solve?p=2,1&format=dimacs", &dimacs)
        .unwrap();
    assert_eq!(explicit.status, 200);
    assert_eq!(explicit.header("x-dclab-cache"), Some("hit"));
    stop(handle, client);
}

#[test]
fn batch_endpoint_solves_many_and_reports_cache_headers() {
    let (handle, mut client) = test_server();
    let a = graph_io::write_edge_list(&classic::complete(5));
    let b = graph_io::write_edge_list(&classic::petersen());
    let body = format!("{a}%%\n{b}%%\nthis is not a graph\n");
    let resp = client.request("POST", "/batch?p=2,1", &body).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-dclab-cache-hits"), Some("0"));
    assert_eq!(resp.header("x-dclab-cache-misses"), Some("2"));
    assert!(resp.body.starts_with('['));
    assert!(
        resp.body.contains("\"kind\":\"parse\""),
        "third item errored"
    );
    // Replaying the batch is all hits.
    let again = client.request("POST", "/batch?p=2,1", &body).unwrap();
    assert_eq!(again.header("x-dclab-cache-hits"), Some("2"));
    assert_eq!(again.header("x-dclab-cache-misses"), Some("0"));
    stop(handle, client);
}

#[test]
fn unknown_paths_and_methods_rejected() {
    let (handle, mut client) = test_server();
    let resp = client.request("GET", "/nope", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/solve", "").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request("POST", "/healthz", "").unwrap();
    assert_eq!(resp.status, 405);
    stop(handle, client);
}

#[test]
fn metrics_reflect_traffic_and_strategies() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::complete(8));
    for _ in 0..3 {
        let r = client
            .request("POST", "/solve?p=2,1&strategy=exact", &body)
            .unwrap();
        assert_eq!(r.status, 200);
    }
    let metrics = client.request("GET", "/metrics?format=json", "").unwrap();
    assert!(
        metrics.body.contains("\"solve_requests\":3"),
        "{}",
        metrics.body
    );
    assert!(metrics.body.contains("\"hits\":2"), "{}", metrics.body);
    assert!(metrics.body.contains("\"misses\":1"), "{}", metrics.body);
    assert!(metrics.body.contains("\"exact\":1"), "one actual solve");
    // The Prometheus view reports the same traffic.
    let prom = client.request("GET", "/metrics", "").unwrap();
    assert!(
        prom.body
            .contains("dclab_endpoint_requests_total{endpoint=\"solve\"} 3"),
        "{}",
        prom.body
    );
    assert!(prom.body.contains("dclab_cache_hits_total 2"));
    assert!(prom
        .body
        .contains("dclab_solves_total{strategy=\"exact\"} 1"));
    stop(handle, client);
}

/// The `oracle` query param pins the distance backend; hub- and
/// dense-backed solves return the same labeling but cache separately,
/// and hub traffic shows up in the `dclab_oracle_*` metric families.
#[test]
fn oracle_param_routes_and_is_metered() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let hub = client
        .request(
            "POST",
            "/solve?p=2,1&strategy=oracle-path&oracle=hub",
            &body,
        )
        .unwrap();
    assert_eq!(hub.status, 200, "{}", hub.body);
    assert_eq!(hub.header("x-dclab-cache"), Some("miss"));
    assert!(
        hub.body.contains("\"oracle\":{\"backend\":\"hub\""),
        "{}",
        hub.body
    );
    let dense = client
        .request(
            "POST",
            "/solve?p=2,1&strategy=oracle-path&oracle=dense",
            &body,
        )
        .unwrap();
    // A pinned-dense request is a distinct cache identity: miss, not hit.
    assert_eq!(dense.header("x-dclab-cache"), Some("miss"));
    assert!(
        dense.body.contains("\"backend\":\"dense\""),
        "{}",
        dense.body
    );
    // Identical solution either way; only the stats tail differs.
    let span_of = |b: &str| {
        b.split("\"span\":")
            .nth(1)
            .unwrap()
            .split(',')
            .next()
            .unwrap()
            .to_string()
    };
    assert_eq!(span_of(&hub.body), span_of(&dense.body));
    // Repeating the hub request hits its cache entry.
    let again = client
        .request(
            "POST",
            "/solve?p=2,1&strategy=oracle-path&oracle=hub",
            &body,
        )
        .unwrap();
    assert_eq!(again.header("x-dclab-cache"), Some("hit"));
    let prom = client.request("GET", "/metrics", "").unwrap();
    assert!(
        prom.body.contains("dclab_oracle_labels_built_total 1"),
        "{}",
        prom.body
    );
    assert!(prom
        .body
        .contains("# TYPE dclab_oracle_query_total counter"));
    assert!(!prom.body.contains("dclab_oracle_query_total 0\n"));
    let bad = client
        .request("POST", "/solve?p=2,1&oracle=quantum", &body)
        .unwrap();
    assert_eq!(bad.status, 400, "{}", bad.body);
    stop(handle, client);
}

/// A raw HTTP/1.0 exchange: write `head` + `body`, read everything until
/// the server closes or the timeout hits. Returns the raw response text
/// and whether the server closed the connection after one response.
fn raw_http_exchange(addr: std::net::SocketAddr, request: &str) -> (String, bool) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let closed = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break true, // server EOF — connection closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break false, // timeout: server is keeping it open
        }
    };
    (String::from_utf8_lossy(&buf).into_owned(), closed)
}

#[test]
fn http10_defaults_to_close() {
    let (handle, client) = test_server();
    let addr = handle.addr();
    // No Connection header: a 1.0 client expects the server to close —
    // before the fix it would hang waiting for EOF on a kept-alive socket.
    let (resp, closed) = raw_http_exchange(addr, "GET /healthz HTTP/1.0\r\nhost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("connection: close"), "{resp}");
    assert!(closed, "server must close after an HTTP/1.0 response");
    // Explicit opt-in keeps the connection open.
    let (resp, closed) = raw_http_exchange(
        addr,
        "GET /healthz HTTP/1.0\r\nhost: x\r\nConnection: keep-alive\r\n\r\n",
    );
    assert!(resp.contains("connection: keep-alive"), "{resp}");
    assert!(!closed, "keep-alive HTTP/1.0 connection must stay open");
    // HTTP/1.1 without a Connection header still defaults to keep-alive.
    let (resp, closed) = raw_http_exchange(addr, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
    assert!(resp.contains("connection: keep-alive"), "{resp}");
    assert!(!closed);
    stop(handle, client);
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (handle, mut client) = test_server();
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("shutting-down"));
    drop(client);
    // join() must return promptly (accept loop polls the flag).
    let start = std::time::Instant::now();
    handle.join();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "graceful shutdown took {:?}",
        start.elapsed()
    );
}

#[test]
fn loadgen_self_test_passes() {
    let summary = loadgen::self_test(Duration::from_millis(500)).expect("self test passes");
    assert!(summary.contains("\"status\":\"ok\""));
    assert!(summary.contains("\"warm_hit_rate\":1.000000"), "{summary}");
}

#[test]
fn deadline_solve_returns_best_incumbent_never_5xx() {
    use rand::SeedableRng;
    let (handle, mut client) = test_server();
    // A hardness-corpus instance (Griggs–Yeh reduction of G(399, ½)) whose
    // optimum encodes a Hamiltonian-path question: a 1 ms deadline cannot
    // prove optimality — the root Held–Karp bound certifies 400 but every
    // harvested incumbent lands above it. The response must still be 200
    // with a harvested (engine-validated) labeling, flagged timed_out.
    // (A plain dense G(n,p) no longer works here: greedy reaches the
    // root-bound optimum and the solve is *proved* despite the deadline.)
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let g = dclab_core::hardness::griggs_yeh_reduction(&dclab_graph::generators::random::gnp(
        &mut rng, 399, 0.5,
    ));
    let body = graph_io::write_edge_list(&g);
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=race&deadline-ms=1", &body)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"timed_out\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"strategy_requested\":\"race\""));
    // Timed-out reports still carry a certificate: the deadline-capped
    // root ascent pins the lower bound at 400 (hk-ascent rung) and the
    // report surfaces the relative gap next to it.
    assert!(resp.body.contains("\"lower_bound\":400"), "{}", resp.body);
    assert!(
        resp.body.contains("\"kind\":\"hk-ascent\""),
        "{}",
        resp.body
    );
    assert!(resp.body.contains("\"gap\":0.0"), "{}", resp.body);
    assert_eq!(resp.header("x-dclab-cache"), Some("miss"));

    // The harvest is cached under the deadline-bearing key: replaying the
    // identical request is a hit with a bit-identical report.
    let warm = client
        .request("POST", "/solve?p=2,1&strategy=race&deadline-ms=1", &body)
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-dclab-cache"), Some("hit"));
    assert_eq!(warm.body, resp.body);

    // Timeout + race-winner counters surfaced on /metrics, plus the
    // certificate-kind counter and gap histogram for the fresh solve.
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("dclab_solve_timeouts_total 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics
            .body
            .contains("dclab_bound_kind_total{kind=\"hk-ascent\"} 1"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("dclab_optimality_gap_count 1"),
        "{}",
        metrics.body
    );
    assert!(metrics
        .body
        .contains("# TYPE dclab_race_wins_total counter"));
    let race_wins: u64 = metrics
        .body
        .lines()
        .filter(|l| l.starts_with("dclab_race_wins_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(race_wins, 1, "exactly one race winner recorded");
    stop(handle, client);
}

#[test]
fn bad_deadline_param_is_a_400() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let resp = client
        .request("POST", "/solve?p=2,1&deadline-ms=soon", &body)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("bad deadline-ms"));
    stop(handle, client);
}

#[test]
fn deadline_requests_are_clamped_to_the_server_cap() {
    // A 1 ms cap turns even a generous client deadline into an instant
    // harvest — observable through the timeout counter.
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_mb: 8,
        queue_cap: 0,
        max_deadline_ms: 1,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::new(handle.addr());
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = dclab_graph::generators::random::gnp_with_diameter_at_most(&mut rng, 400, 0.5, 2);
    let body = graph_io::write_edge_list(&g);
    let resp = client
        .request(
            "POST",
            "/solve?p=2,1&strategy=heuristic&deadline-ms=600000",
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(
        resp.body.contains("\"timed_out\":true"),
        "cap not applied: {}",
        resp.body
    );
    stop(handle, client);
}

#[test]
fn request_ids_and_debug_traces() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());

    // A sane client-supplied X-Request-Id is echoed back and keys the
    // retained trace; restarts=1 keeps the heuristic single-threaded
    // (multi-restart runs fan lk spans across threads, whose *summed*
    // time may exceed the solve span's wall time) so phase totals nest
    // inside the engine's "solve" span.
    let resp = client
        .request_with_headers(
            "POST",
            "/solve?p=2,1&strategy=heuristic&restarts=1",
            &[("x-request-id", "e2e-trace-1")],
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-request-id"), Some("e2e-trace-1"));

    // The traced solve surfaced per-phase attribution in the report.
    let report = dclab_engine::json::parse(&resp.body).unwrap();
    let phases = report
        .path("stats.phases")
        .and_then(|v| v.as_arr())
        .expect("traced solve carries stats.phases");
    assert!(!phases.is_empty());
    let solve_total = phases
        .iter()
        .find(|p| p.get("name").and_then(|v| v.as_str()) == Some("solve"))
        .and_then(|p| p.get("total_us").and_then(|v| v.as_f64()))
        .expect("solve phase present");
    for p in phases {
        let name = p.get("name").and_then(|v| v.as_str()).unwrap();
        let total = p.get("total_us").and_then(|v| v.as_f64()).unwrap();
        assert!(
            total <= solve_total,
            "phase {name} ({total}µs) exceeds the enclosing solve span ({solve_total}µs)"
        );
    }

    // Requests without the header get a generated id.
    let anon = client.request("GET", "/healthz", "").unwrap();
    assert!(anon.header("x-request-id").unwrap().starts_with("req-"));
    // Hostile ids are replaced, not echoed.
    let hostile = client
        .request_with_headers("GET", "/healthz", &[("x-request-id", "a b")], "")
        .unwrap();
    assert!(hostile.header("x-request-id").unwrap().starts_with("req-"));

    // The flight recorder indexes the finished trace…
    let index = client.request("GET", "/debug/traces", "").unwrap();
    assert_eq!(index.status, 200);
    let index_json = dclab_engine::json::parse(&index.body).unwrap();
    let recent = index_json.get("recent").and_then(|v| v.as_arr()).unwrap();
    assert!(
        recent
            .iter()
            .any(|t| t.get("id").and_then(|v| v.as_str()) == Some("e2e-trace-1")),
        "{}",
        index.body
    );

    // …and serves the full span tree by request id.
    let full = client
        .request("GET", "/debug/traces/e2e-trace-1", "")
        .unwrap();
    assert_eq!(full.status, 200, "{}", full.body);
    let trace = dclab_engine::json::parse(&full.body).unwrap();
    assert_eq!(
        trace.get("label").and_then(|v| v.as_str()),
        Some("heuristic")
    );
    let spans = trace.get("spans").and_then(|v| v.as_arr()).unwrap();
    let span_names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(|v| v.as_str()))
        .collect();
    assert!(span_names.contains(&"request"), "{span_names:?}");
    assert!(span_names.contains(&"solve"), "{span_names:?}");

    // Unknown ids 404; wrong method on the debug surface is 405.
    let missing = client
        .request("GET", "/debug/traces/no-such-id", "")
        .unwrap();
    assert_eq!(missing.status, 404);
    let wrong = client.request("POST", "/debug/traces", "").unwrap();
    assert_eq!(wrong.status, 405);

    // A warm hit returns byte-identical JSON (phases come from the cached
    // report) and still records its own request trace.
    let warm = client
        .request_with_headers(
            "POST",
            "/solve?p=2,1&strategy=heuristic&restarts=1",
            &[("x-request-id", "e2e-trace-2")],
            &body,
        )
        .unwrap();
    assert_eq!(warm.header("x-dclab-cache"), Some("hit"));
    assert_eq!(warm.body, resp.body);
    let warm_trace = client
        .request("GET", "/debug/traces/e2e-trace-2", "")
        .unwrap();
    assert_eq!(warm_trace.status, 200, "{}", warm_trace.body);

    // Per-phase histograms made it to /metrics.
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert!(
        metrics
            .body
            .contains("# TYPE dclab_phase_seconds histogram"),
        "{}",
        metrics.body
    );
    assert!(metrics
        .body
        .contains("dclab_phase_seconds_count{phase=\"solve\"}"));
    stop(handle, client);
}

#[test]
fn slow_solves_hit_the_structured_log() {
    // Threshold 0: every solve is "slow", so the log line contract is
    // testable without an actually slow instance.
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_mb: 8,
        queue_cap: 0,
        slow_solve_ms: 0,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::new(handle.addr());
    let body = graph_io::write_edge_list(&classic::petersen());
    let resp = client
        .request_with_headers(
            "POST",
            "/solve?p=2,1&strategy=greedy",
            &[("x-request-id", "e2e-slow-1")],
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);

    let slowlog = client.request("GET", "/debug/slowlog", "").unwrap();
    assert_eq!(slowlog.status, 200);
    let parsed = dclab_engine::json::parse(&slowlog.body).unwrap();
    assert_eq!(
        parsed.get("slow_solve_ms").and_then(|v| v.as_f64()),
        Some(0.0)
    );
    let lines = parsed.get("lines").and_then(|v| v.as_arr()).unwrap();
    let line = lines
        .iter()
        .filter_map(|l| l.as_str())
        .find(|l| l.contains("request_id=e2e-slow-1"))
        .expect("slow-solve line for our request id");
    assert!(line.starts_with("slow-solve "), "{line}");
    assert!(line.contains("strategy=greedy"), "{line}");
    assert!(line.contains("total_us="), "{line}");
    assert!(line.contains("timed_out=false"), "{line}");
    assert!(line.contains("phases="), "{line}");
    assert!(line.contains("solve:"), "{line}");

    // The counter moved too.
    let metrics = client.request("GET", "/metrics?format=json", "").unwrap();
    let m = dclab_engine::json::parse(&metrics.body).unwrap();
    assert!(m.get("slow_solves").and_then(|v| v.as_f64()).unwrap() >= 1.0);
    stop(handle, client);
}
