//! End-to-end tests: a real server on an ephemeral port, a real TCP
//! client, full request/response cycles.

use std::time::Duration;

use dclab_graph::generators::classic;
use dclab_graph::io as graph_io;
use dclab_serve::loadgen::{self, Client};
use dclab_serve::server::{start, ServeConfig};
use dclab_serve::ServerHandle;

fn test_server() -> (ServerHandle, Client) {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 8,
        queue_cap: 0,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let client = Client::new(handle.addr());
    (handle, client)
}

fn stop(handle: ServerHandle, client: Client) {
    drop(client);
    handle.shutdown();
    handle.join();
}

#[test]
fn healthz_and_metrics_respond() {
    let (handle, mut client) = test_server();
    let health = client.request("GET", "/healthz", "").unwrap();
    assert_eq!(health.status, 200);
    assert_eq!(health.body, "{\"status\":\"ok\"}");
    // Default /metrics is Prometheus text with its own content-type.
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert_eq!(metrics.status, 200);
    assert_eq!(
        metrics.header("content-type"),
        Some("text/plain; version=0.0.4"),
        "Prometheus text must not claim to be JSON"
    );
    assert!(metrics.body.contains("# TYPE dclab_requests_total counter"));
    assert!(metrics.body.contains("dclab_cache_hits_total 0"));
    assert!(metrics
        .body
        .contains("# TYPE dclab_solve_latency_seconds histogram"));
    // JSON view still available for humans and the loadgen.
    let json = client.request("GET", "/metrics?format=json", "").unwrap();
    assert_eq!(json.status, 200);
    assert_eq!(json.header("content-type"), Some("application/json"));
    assert!(json.body.contains("\"requests_total\":"));
    assert!(json.body.contains("\"cache\":{"));
    assert!(json.body.contains("\"solve_latency\":{"));
    let bad = client.request("GET", "/metrics?format=xml", "").unwrap();
    assert_eq!(bad.status, 400);
    stop(handle, client);
}

#[test]
fn solve_cold_then_warm_is_bit_identical() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let cold = client
        .request("POST", "/solve?p=2,1&strategy=auto", &body)
        .unwrap();
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cold.header("x-dclab-cache"), Some("miss"));
    assert!(cold.body.contains("\"span\":9"), "λ_{{2,1}}(Petersen) = 9");
    let warm = client
        .request("POST", "/solve?p=2,1&strategy=auto", &body)
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-dclab-cache"), Some("hit"));
    assert_eq!(cold.body, warm.body, "cached report is bit-identical");
    stop(handle, client);
}

#[test]
fn isomorphic_relabeling_hits_the_cache() {
    let (handle, mut client) = test_server();
    let g = classic::petersen();
    let perm = vec![5, 0, 8, 2, 9, 1, 7, 3, 6, 4];
    let h = g.relabeled(&perm);
    let first = client
        .request("POST", "/solve?p=2,1", &graph_io::write_edge_list(&g))
        .unwrap();
    assert_eq!(first.header("x-dclab-cache"), Some("miss"));
    let second = client
        .request("POST", "/solve?p=2,1", &graph_io::write_edge_list(&h))
        .unwrap();
    assert_eq!(
        second.header("x-dclab-cache"),
        Some("hit"),
        "relabeled instance must hit the canonical entry"
    );
    // Same span, and a labeling valid for the *relabeled* graph.
    assert!(second.body.contains("\"span\":9"));
    stop(handle, client);
}

#[test]
fn guard_failure_returns_422_with_json_error() {
    let (handle, mut client) = test_server();
    // n = 30 > EXACT_MAX_N with an explicit exact request → GuardError.
    let body = graph_io::write_edge_list(&classic::complete(30));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert!(resp.body.contains("\"kind\":\"guard\""), "{}", resp.body);
    assert!(
        resp.body.contains("exceeds the exact-solver guard"),
        "GuardError message surfaces verbatim: {}",
        resp.body
    );
    stop(handle, client);
}

#[test]
fn unsupported_and_parse_errors_are_typed() {
    let (handle, mut client) = test_server();
    // Path graph has diameter > 2: the Theorem 2 reduction refuses.
    let body = graph_io::write_edge_list(&classic::path(8));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 422);
    assert!(
        resp.body.contains("\"kind\":\"reduction\""),
        "{}",
        resp.body
    );
    // Garbage body → 400 with line-accurate parse error.
    let resp = client
        .request("POST", "/solve?p=2,1", "0 1\nnot an edge\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("\"kind\":\"parse\""));
    assert!(resp.body.contains("line 2"), "{}", resp.body);
    // Bad query params → 400.
    let resp = client
        .request("POST", "/solve?strategy=frobnicate", "0 1\n")
        .unwrap();
    assert_eq!(resp.status, 400);
    stop(handle, client);
}

#[test]
fn dimacs_bodies_sniffed_and_explicit() {
    let (handle, mut client) = test_server();
    let dimacs = graph_io::write_dimacs(&classic::petersen());
    let sniffed = client.request("POST", "/solve?p=2,1", &dimacs).unwrap();
    assert_eq!(sniffed.status, 200, "{}", sniffed.body);
    let explicit = client
        .request("POST", "/solve?p=2,1&format=dimacs", &dimacs)
        .unwrap();
    assert_eq!(explicit.status, 200);
    assert_eq!(explicit.header("x-dclab-cache"), Some("hit"));
    stop(handle, client);
}

#[test]
fn batch_endpoint_solves_many_and_reports_cache_headers() {
    let (handle, mut client) = test_server();
    let a = graph_io::write_edge_list(&classic::complete(5));
    let b = graph_io::write_edge_list(&classic::petersen());
    let body = format!("{a}%%\n{b}%%\nthis is not a graph\n");
    let resp = client.request("POST", "/batch?p=2,1", &body).unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-dclab-cache-hits"), Some("0"));
    assert_eq!(resp.header("x-dclab-cache-misses"), Some("2"));
    assert!(resp.body.starts_with('['));
    assert!(
        resp.body.contains("\"kind\":\"parse\""),
        "third item errored"
    );
    // Replaying the batch is all hits.
    let again = client.request("POST", "/batch?p=2,1", &body).unwrap();
    assert_eq!(again.header("x-dclab-cache-hits"), Some("2"));
    assert_eq!(again.header("x-dclab-cache-misses"), Some("0"));
    stop(handle, client);
}

#[test]
fn unknown_paths_and_methods_rejected() {
    let (handle, mut client) = test_server();
    let resp = client.request("GET", "/nope", "").unwrap();
    assert_eq!(resp.status, 404);
    let resp = client.request("GET", "/solve", "").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client.request("POST", "/healthz", "").unwrap();
    assert_eq!(resp.status, 405);
    stop(handle, client);
}

#[test]
fn metrics_reflect_traffic_and_strategies() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::complete(8));
    for _ in 0..3 {
        let r = client
            .request("POST", "/solve?p=2,1&strategy=exact", &body)
            .unwrap();
        assert_eq!(r.status, 200);
    }
    let metrics = client.request("GET", "/metrics?format=json", "").unwrap();
    assert!(
        metrics.body.contains("\"solve_requests\":3"),
        "{}",
        metrics.body
    );
    assert!(metrics.body.contains("\"hits\":2"), "{}", metrics.body);
    assert!(metrics.body.contains("\"misses\":1"), "{}", metrics.body);
    assert!(metrics.body.contains("\"exact\":1"), "one actual solve");
    // The Prometheus view reports the same traffic.
    let prom = client.request("GET", "/metrics", "").unwrap();
    assert!(
        prom.body
            .contains("dclab_endpoint_requests_total{endpoint=\"solve\"} 3"),
        "{}",
        prom.body
    );
    assert!(prom.body.contains("dclab_cache_hits_total 2"));
    assert!(prom
        .body
        .contains("dclab_solves_total{strategy=\"exact\"} 1"));
    stop(handle, client);
}

/// A raw HTTP/1.0 exchange: write `head` + `body`, read everything until
/// the server closes or the timeout hits. Returns the raw response text
/// and whether the server closed the connection after one response.
fn raw_http_exchange(addr: std::net::SocketAddr, request: &str) -> (String, bool) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let closed = loop {
        match stream.read(&mut chunk) {
            Ok(0) => break true, // server EOF — connection closed
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break false, // timeout: server is keeping it open
        }
    };
    (String::from_utf8_lossy(&buf).into_owned(), closed)
}

#[test]
fn http10_defaults_to_close() {
    let (handle, client) = test_server();
    let addr = handle.addr();
    // No Connection header: a 1.0 client expects the server to close —
    // before the fix it would hang waiting for EOF on a kept-alive socket.
    let (resp, closed) = raw_http_exchange(addr, "GET /healthz HTTP/1.0\r\nhost: x\r\n\r\n");
    assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
    assert!(resp.contains("connection: close"), "{resp}");
    assert!(closed, "server must close after an HTTP/1.0 response");
    // Explicit opt-in keeps the connection open.
    let (resp, closed) = raw_http_exchange(
        addr,
        "GET /healthz HTTP/1.0\r\nhost: x\r\nConnection: keep-alive\r\n\r\n",
    );
    assert!(resp.contains("connection: keep-alive"), "{resp}");
    assert!(!closed, "keep-alive HTTP/1.0 connection must stay open");
    // HTTP/1.1 without a Connection header still defaults to keep-alive.
    let (resp, closed) = raw_http_exchange(addr, "GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n");
    assert!(resp.contains("connection: keep-alive"), "{resp}");
    assert!(!closed);
    stop(handle, client);
}

#[test]
fn shutdown_endpoint_drains_gracefully() {
    let (handle, mut client) = test_server();
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("shutting-down"));
    drop(client);
    // join() must return promptly (accept loop polls the flag).
    let start = std::time::Instant::now();
    handle.join();
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "graceful shutdown took {:?}",
        start.elapsed()
    );
}

#[test]
fn loadgen_self_test_passes() {
    let summary = loadgen::self_test(Duration::from_millis(500)).expect("self test passes");
    assert!(summary.contains("\"status\":\"ok\""));
    assert!(summary.contains("\"warm_hit_rate\":1.000000"), "{summary}");
}

#[test]
fn deadline_solve_returns_best_incumbent_never_5xx() {
    use rand::SeedableRng;
    let (handle, mut client) = test_server();
    // Big enough that a 1 ms deadline cannot possibly finish, let alone
    // prove optimality: the response must still be 200 with a harvested
    // (engine-validated) labeling, flagged timed_out.
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let g = dclab_graph::generators::random::gnp_with_diameter_at_most(&mut rng, 400, 0.5, 2);
    let body = graph_io::write_edge_list(&g);
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=race&deadline-ms=1", &body)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(resp.body.contains("\"timed_out\":true"), "{}", resp.body);
    assert!(resp.body.contains("\"strategy_requested\":\"race\""));
    assert_eq!(resp.header("x-dclab-cache"), Some("miss"));

    // The harvest is cached under the deadline-bearing key: replaying the
    // identical request is a hit with a bit-identical report.
    let warm = client
        .request("POST", "/solve?p=2,1&strategy=race&deadline-ms=1", &body)
        .unwrap();
    assert_eq!(warm.status, 200);
    assert_eq!(warm.header("x-dclab-cache"), Some("hit"));
    assert_eq!(warm.body, resp.body);

    // Timeout + race-winner counters surfaced on /metrics.
    let metrics = client.request("GET", "/metrics", "").unwrap();
    assert!(
        metrics.body.contains("dclab_solve_timeouts_total 1"),
        "{}",
        metrics.body
    );
    assert!(metrics
        .body
        .contains("# TYPE dclab_race_wins_total counter"));
    let race_wins: u64 = metrics
        .body
        .lines()
        .filter(|l| l.starts_with("dclab_race_wins_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert_eq!(race_wins, 1, "exactly one race winner recorded");
    stop(handle, client);
}

#[test]
fn bad_deadline_param_is_a_400() {
    let (handle, mut client) = test_server();
    let body = graph_io::write_edge_list(&classic::petersen());
    let resp = client
        .request("POST", "/solve?p=2,1&deadline-ms=soon", &body)
        .unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("bad deadline-ms"));
    stop(handle, client);
}

#[test]
fn deadline_requests_are_clamped_to_the_server_cap() {
    // A 1 ms cap turns even a generous client deadline into an instant
    // harvest — observable through the timeout counter.
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_mb: 8,
        queue_cap: 0,
        max_deadline_ms: 1,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let mut client = Client::new(handle.addr());
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let g = dclab_graph::generators::random::gnp_with_diameter_at_most(&mut rng, 400, 0.5, 2);
    let body = graph_io::write_edge_list(&g);
    let resp = client
        .request(
            "POST",
            "/solve?p=2,1&strategy=heuristic&deadline-ms=600000",
            &body,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(
        resp.body.contains("\"timed_out\":true"),
        "cap not applied: {}",
        resp.body
    );
    stop(handle, client);
}
