//! End-to-end tests for the persistent solution archive: a server with
//! `store_path` must survive a restart with its whole solved corpus —
//! warm boot → hit rate 1.0, zero fresh solves — and the shutdown drain
//! must seal the log so a reopened store trusts every record.

use dclab_graph::generators::classic;
use dclab_graph::io as graph_io;
use dclab_serve::loadgen::{exact_corpus, run_pass, Client};
use dclab_serve::server::{start, ServeConfig};
use dclab_store::Store;

fn temp_store_path(name: &str) -> String {
    let dir = std::env::temp_dir().join(format!("dclab-store-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path.to_str().expect("utf-8 path").to_string()
}

fn store_config(path: &str) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 16,
        queue_cap: 0,
        store_path: Some(path.to_string()),
        ..Default::default()
    }
}

/// The ISSUE 4 acceptance demo: populate via the loadgen exact corpus,
/// restart the server on the same archive, replay — the second pass is
/// hit rate 1.0 with zero fresh solves.
#[test]
fn warm_boot_replays_exact_corpus_with_hit_rate_one_and_zero_solves() {
    let path = temp_store_path("warm-boot.dcst");
    // 3 instances (n = 16, 18, 20): big enough that a fresh Held–Karp
    // solve is unmistakably expensive, small enough for debug-mode CI.
    let corpus = exact_corpus(1234, 3);

    // --- First server: every request is a fresh solve + write-behind. ---
    let h1 = start(store_config(&path)).expect("bind first server");
    let cold = run_pass(h1.addr(), &corpus).expect("cold pass");
    assert_eq!(cold.misses, cold.requests, "first pass is all misses");
    assert_eq!(cold.unexpected, 0);
    h1.shutdown();
    h1.join(); // drain seals the archive (fsync + footer)

    // --- Second server, same archive: warm boot → pure cache hits. ---
    let h2 = start(store_config(&path)).expect("bind second server");
    let warm = run_pass(h2.addr(), &corpus).expect("warm pass");
    assert_eq!(
        warm.hits, warm.requests,
        "restarted server must serve the whole corpus from the archive: {warm:?}"
    );
    assert_eq!(warm.misses, 0, "zero fresh solves after restart");
    assert!((warm.hit_rate() - 1.0).abs() < f64::EPSILON);

    // Reports served after the restart are identical to the pre-restart
    // ones (canonical round trip through the archive is lossless).
    for ((name, cold_body), (_, warm_body)) in cold.bodies.iter().zip(&warm.bodies) {
        assert_eq!(
            cold_body, warm_body,
            "report for '{name}' changed across restart"
        );
    }

    // Metrics corroborate: warm boot loaded records, no engine solve ran.
    let mut client = Client::new(h2.addr());
    let metrics = client.request("GET", "/metrics?format=json", "").unwrap();
    assert!(
        metrics.body.contains("\"store\":{\"enabled\":true"),
        "{}",
        metrics.body
    );
    assert!(
        metrics.body.contains("\"warm_boot\":3"),
        "3 archived instances warm-boot the cache: {}",
        metrics.body
    );
    assert!(
        metrics.body.contains("\"strategies\":{\"exact\":0"),
        "no fresh exact solve after restart: {}",
        metrics.body
    );
    drop(client);
    h2.shutdown();
    h2.join();
}

/// Satellite: the shutdown drain flushes the store (fsync + clean index
/// footer); a reopened store sees the last pre-shutdown solve.
#[test]
fn shutdown_drain_seals_archive_with_last_solve() {
    let path = temp_store_path("drain.dcst");
    let handle = start(store_config(&path)).expect("bind");
    let mut client = Client::new(handle.addr());
    let body = graph_io::write_edge_list(&classic::petersen());
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    let resp = client.request("POST", "/shutdown", "").unwrap();
    assert_eq!(resp.status, 200);
    drop(client);
    handle.join();

    let (store, open) = Store::open(&path).expect("reopen archive");
    assert!(open.clean_footer, "drain wrote the clean-shutdown footer");
    assert_eq!(open.torn_bytes_dropped, 0);
    assert_eq!(open.live, 1, "the pre-shutdown solve is archived");
    let (key, val) = store.iter_live().unwrap().remove(0);
    assert_eq!(key.n, 10, "Petersen has 10 vertices");
    let report = dclab_engine::binary::report_from_bytes(&val).expect("decodes");
    assert_eq!(report.solution.span, 9, "λ_{{2,1}}(Petersen) = 9");
}

/// Read-through: a record imported into the archive offline is served on
/// an LRU miss even without a warm-boot entry (server started before the
/// record existed is the inverse case — here we archive out-of-band, then
/// boot, then evince the store path by checking the metrics counter).
#[test]
fn store_hits_count_reads_that_skip_the_engine() {
    let path = temp_store_path("read-through.dcst");

    // Populate the archive out-of-band (no server involved).
    {
        let (store, _) = Store::open(&path).unwrap();
        let g = classic::complete(6);
        let p = dclab_core::pvec::PVec::l21();
        let key = dclab_serve::CacheKey::for_request(
            &g,
            &p,
            dclab_engine::Strategy::Exact,
            dclab_engine::Budget::default(),
            dclab_engine::OraclePolicy::Auto,
        );
        let report = dclab_engine::solve(
            &dclab_engine::SolveRequest::new(g, p).with_strategy(dclab_engine::Strategy::Exact),
        )
        .unwrap();
        assert!(dclab_serve::persist::store_append(&store, &key, &report).unwrap());
        store.close_clean().unwrap();
    }

    let handle = start(store_config(&path)).expect("bind");
    let mut client = Client::new(handle.addr());
    // Warm boot already loaded it → first request is a cache hit with no
    // fresh solve.
    let body = graph_io::write_edge_list(&classic::complete(6));
    let resp = client
        .request("POST", "/solve?p=2,1&strategy=exact", &body)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(resp.header("x-dclab-cache"), Some("hit"));
    let metrics = client.request("GET", "/metrics?format=json", "").unwrap();
    assert!(
        metrics.body.contains("\"strategies\":{\"exact\":0"),
        "archived record served without an engine solve: {}",
        metrics.body
    );
    drop(client);
    handle.shutdown();
    handle.join();
}
