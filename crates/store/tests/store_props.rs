//! Property tests for the archive (ISSUE 4 satellite):
//!
//! * **Round trip** — append N random reports, reopen, every value comes
//!   back byte-identical (and again after a compaction).
//! * **Torn-tail recovery** — truncate the log at *every* byte offset of
//!   the final record: open always succeeds, earlier records are intact,
//!   and only the torn record is dropped.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

use dclab_engine::{Budget, OraclePolicy, Strategy};
use dclab_store::{Store, StoreKey};

fn temp_path(tag: &str, case: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dclab-store-props-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{case}.dcst"))
}

/// A random (but case-unique) key: `idx` is baked into the p-vector so two
/// generated keys never collide within one case.
fn random_key(rng: &mut StdRng, idx: u64) -> StoreKey {
    let n = rng.random_range(2u32..16);
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.random_bool(0.3) {
                edges.push((u, v));
            }
        }
    }
    let strategies = [Strategy::Auto, Strategy::Exact, Strategy::Greedy];
    StoreKey {
        n,
        edges,
        pvec: vec![idx + 1, rng.random_range(1u64..5)],
        strategy: strategies[rng.random_range(0usize..3)],
        budget: Budget {
            node_budget: if rng.random_bool(0.5) {
                Some(rng.random_range(1u64..10_000))
            } else {
                None
            },
            restarts: None,
            lb_iters: None,
            // Exercise both key layouts: the pre-anytime format (no tail)
            // and the deadline-tagged tail.
            deadline_ms: if rng.random_bool(0.5) {
                Some(rng.random_range(1u64..100_000))
            } else {
                None
            },
        },
        // Exercise all three oracle-tail layouts (Auto omits the byte).
        oracle: [OraclePolicy::Auto, OraclePolicy::Dense, OraclePolicy::Hub]
            [rng.random_range(0usize..3)],
    }
}

fn random_val(rng: &mut StdRng) -> Vec<u8> {
    let len = rng.random_range(1usize..200);
    (0..len)
        .map(|_| rng.random_range(0u64..256) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn append_reopen_round_trip_is_byte_identical(seed in any::<u64>(), count in 1usize..12) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let path = temp_path("round-trip", seed ^ count as u64);
        let _ = std::fs::remove_file(&path);
        let mut expected = Vec::new();
        {
            let (store, _) = Store::open(&path).expect("create");
            for i in 0..count {
                let key = random_key(&mut rng, i as u64);
                let val = random_val(&mut rng);
                prop_assert!(store.append(&key, &val).expect("append"));
                expected.push((key, val));
            }
        }
        let (store, open) = Store::open(&path).expect("reopen");
        prop_assert_eq!(open.live, count as u64);
        prop_assert_eq!(open.torn_bytes_dropped, 0u64);
        for (key, val) in &expected {
            let got = store.get(key).expect("read").expect("present");
            prop_assert_eq!(&got, val);
        }
        // Compaction must preserve every byte too.
        store.compact().expect("compact");
        for (key, val) in &expected {
            let got = store.get(key).expect("read").expect("present after compact");
            prop_assert_eq!(&got, val);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_at_every_offset_recovers_earlier_records(seed in any::<u64>(), count in 1usize..6) {
        let mut rng = <StdRng as rand::SeedableRng>::seed_from_u64(seed);
        let path = temp_path("torn", seed ^ (count as u64) << 32);
        let _ = std::fs::remove_file(&path);
        let mut expected = Vec::new();
        let last_record_start;
        {
            let (store, _) = Store::open(&path).expect("create");
            let mut tail_before_last = 0;
            for i in 0..count {
                tail_before_last = store.stats().bytes;
                let key = random_key(&mut rng, i as u64);
                let val = random_val(&mut rng);
                store.append(&key, &val).expect("append");
                expected.push((key, val));
            }
            last_record_start = tail_before_last as usize;
        }
        let full = std::fs::read(&path).expect("read archive");
        let torn_path = temp_path("torn-cut", seed ^ (count as u64) << 32 ^ 1);
        // Every truncation point inside the final record (from its first
        // byte up to one short of complete).
        for cut in last_record_start..full.len() {
            std::fs::write(&torn_path, &full[..cut]).expect("write torn copy");
            let (store, open) = Store::open(&torn_path).expect("open never fails on a torn tail");
            if cut == last_record_start {
                prop_assert_eq!(open.torn_bytes_dropped, 0u64);
            } else {
                prop_assert!(open.torn_bytes_dropped > 0, "partial record dropped at cut {}", cut);
            }
            prop_assert_eq!(open.live, count as u64 - 1);
            for (key, val) in &expected[..count - 1] {
                let got = store.get(key).expect("read").expect("earlier record intact");
                prop_assert_eq!(&got, val);
            }
            prop_assert!(
                store.get(&expected[count - 1].0).expect("read").is_none(),
                "torn record must not resurface"
            );
        }
        // Truncating nothing keeps all records.
        let (_, open) = Store::open(&path).expect("reopen full");
        prop_assert_eq!(open.live, count as u64);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&torn_path);
    }
}
