//! [`StoreKey`] — the durable identity of an archived solve.
//!
//! A key is the canonical instance (vertex count + `graph::canon` canonical
//! edge list) plus the request parameters that shape the answer (p-vector,
//! strategy, budget). Two requests whose graphs are isomorphic relabelings
//! canonize to the same edge list and therefore the same key, so the
//! archive — like the serve layer's in-memory cache — stores one report per
//! instance *class*, not per byte encoding.
//!
//! Keys are compared by their encoded bytes (exact), and bucketed by an
//! FNV-1a hash of those bytes; a hash collision degrades to a linear probe
//! within the bucket, never to a wrong record.

use dclab_engine::binary::{
    get_opt_uvarint, get_u8, get_uvarint, put_opt_uvarint, put_uvarint, CodecError,
};
use dclab_engine::{Budget, OraclePolicy, Strategy};
use dclab_graph::canon::Fnv64;

/// Durable identity of one archived solve (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreKey {
    /// Canonical vertex count.
    pub n: u32,
    /// Canonical edge list (`u < v`, sorted) from `graph::canon`.
    pub edges: Vec<(u32, u32)>,
    /// The p-vector entries.
    pub pvec: Vec<u64>,
    pub strategy: Strategy,
    pub budget: Budget,
    /// Distance-backend policy of the request (`Auto` for every key
    /// written before the field existed).
    pub oracle: OraclePolicy,
}

impl StoreKey {
    /// Stable byte encoding (the archive's key payload).
    ///
    /// The budget's `deadline_ms` and the oracle policy are encoded as
    /// layered *optional tails*. The deadline (an option-tagged varint)
    /// is appended when `Some` — or when an oracle tail follows, so the
    /// layers stay unambiguous. The oracle policy byte is appended only
    /// when the policy is not `Auto`. A deadline-free `Auto` key
    /// therefore byte-matches every key written before either field
    /// existed — old archives keep hitting — and decode treats a buffer
    /// ending at `lb_iters` as `deadline_ms: None, oracle: Auto`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + 4 * self.edges.len() + 2 * self.pvec.len());
        put_uvarint(&mut buf, self.n as u64);
        put_uvarint(&mut buf, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            put_uvarint(&mut buf, u as u64);
            put_uvarint(&mut buf, v as u64);
        }
        put_uvarint(&mut buf, self.pvec.len() as u64);
        for &p in &self.pvec {
            put_uvarint(&mut buf, p);
        }
        buf.push(self.strategy.code());
        put_opt_uvarint(&mut buf, self.budget.node_budget);
        put_opt_uvarint(&mut buf, self.budget.restarts.map(|r| r as u64));
        put_opt_uvarint(&mut buf, self.budget.lb_iters.map(|i| i as u64));
        if self.budget.deadline_ms.is_some() || self.oracle != OraclePolicy::Auto {
            put_opt_uvarint(&mut buf, self.budget.deadline_ms);
        }
        if self.oracle != OraclePolicy::Auto {
            buf.push(self.oracle.code());
        }
        buf
    }

    /// Strict inverse of [`StoreKey::encode`] (whole buffer consumed).
    pub fn decode(bytes: &[u8]) -> Result<StoreKey, CodecError> {
        let pos = &mut 0usize;
        let bad = |pos: usize, msg: &str| CodecError {
            offset: pos,
            message: msg.to_string(),
        };
        let n = u32::try_from(get_uvarint(bytes, pos)?)
            .map_err(|_| bad(*pos, "vertex count not a u32"))?;
        let n_edges = get_uvarint(bytes, pos)? as usize;
        if n_edges > bytes.len() {
            return Err(bad(*pos, "edge count exceeds buffer"));
        }
        let mut edges = Vec::with_capacity(n_edges);
        for _ in 0..n_edges {
            let u = u32::try_from(get_uvarint(bytes, pos)?)
                .map_err(|_| bad(*pos, "endpoint not a u32"))?;
            let v = u32::try_from(get_uvarint(bytes, pos)?)
                .map_err(|_| bad(*pos, "endpoint not a u32"))?;
            edges.push((u, v));
        }
        let n_pvec = get_uvarint(bytes, pos)? as usize;
        if n_pvec > bytes.len() {
            return Err(bad(*pos, "p-vector length exceeds buffer"));
        }
        let mut pvec = Vec::with_capacity(n_pvec);
        for _ in 0..n_pvec {
            pvec.push(get_uvarint(bytes, pos)?);
        }
        let code = get_u8(bytes, pos)?;
        let strategy =
            Strategy::from_code(code).ok_or_else(|| bad(*pos - 1, "unknown strategy code"))?;
        let mut budget = Budget {
            node_budget: get_opt_uvarint(bytes, pos)?,
            restarts: get_opt_uvarint(bytes, pos)?.map(|r| r as usize),
            lb_iters: get_opt_uvarint(bytes, pos)?.map(|i| i as usize),
            ..Budget::default()
        };
        // Layered versioned tails: keys written before anytime solving end
        // here (deadline_ms: None, oracle: Auto); newer keys append the
        // deadline option, and oracle-pinned keys a policy byte after it.
        let mut oracle = OraclePolicy::Auto;
        if *pos < bytes.len() {
            budget.deadline_ms = get_opt_uvarint(bytes, pos)?;
            if *pos < bytes.len() {
                let code = get_u8(bytes, pos)?;
                oracle = OraclePolicy::from_code(code)
                    .ok_or_else(|| bad(*pos - 1, "unknown oracle policy code"))?;
                if oracle == OraclePolicy::Auto {
                    // Auto is canonically omitted; an explicit byte would
                    // make two byte strings decode to one key.
                    return Err(bad(*pos - 1, "non-canonical oracle tail"));
                }
            } else if budget.deadline_ms.is_none() {
                // The canonical encoding omits a None deadline unless an
                // oracle byte follows; a bare explicit None would break
                // encode∘decode = identity.
                return Err(bad(*pos - 1, "non-canonical deadline tail"));
            }
        }
        if *pos != bytes.len() {
            return Err(bad(*pos, "trailing bytes after key"));
        }
        Ok(StoreKey {
            n,
            edges,
            pvec,
            strategy,
            budget,
            oracle,
        })
    }

    /// Bucket hash of the encoded key (FNV-1a over the key bytes).
    pub fn hash(&self) -> u64 {
        hash_key_bytes(&self.encode())
    }
}

/// FNV-1a of already-encoded key bytes (the index bucket function).
pub fn hash_key_bytes(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StoreKey {
        StoreKey {
            n: 5,
            edges: vec![(0, 1), (0, 4), (2, 3)],
            pvec: vec![2, 1],
            strategy: Strategy::Auto,
            budget: Budget {
                node_budget: Some(1000),
                restarts: None,
                lb_iters: Some(0),
                ..Budget::default()
            },
            oracle: OraclePolicy::Auto,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let key = sample();
        let bytes = key.encode();
        let back = StoreKey::decode(&bytes).expect("decodes");
        assert_eq!(back, key);
        assert_eq!(back.encode(), bytes);
        assert_eq!(back.hash(), key.hash());
    }

    #[test]
    fn different_fields_change_bytes_and_hash() {
        let base = sample();
        let mut other = base.clone();
        other.strategy = Strategy::Greedy;
        assert_ne!(other.encode(), base.encode());
        assert_ne!(other.hash(), base.hash());
        let mut other = base.clone();
        other.pvec = vec![1, 1];
        assert_ne!(other.encode(), base.encode());
    }

    #[test]
    fn truncated_and_trailing_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(StoreKey::decode(&bytes[..cut]).is_err(), "prefix {cut}");
        }
        // A lone `0` tail is a non-canonical explicit-None deadline.
        let mut long = bytes.clone();
        long.push(0);
        assert!(StoreKey::decode(&long).is_err());
        // Bytes after a well-formed deadline tail are also rejected.
        let mut keyed = sample();
        keyed.budget.deadline_ms = Some(50);
        let mut long = keyed.encode();
        long.push(0);
        assert!(StoreKey::decode(&long).is_err());
    }

    /// The satellite's versioned-decode contract: archives written before
    /// `Budget::deadline_ms` existed — whose keys end at `lb_iters` — must
    /// keep decoding (as `deadline_ms: None`) and re-encode byte-for-byte,
    /// so every pre-anytime record keeps hitting.
    #[test]
    fn pre_deadline_keys_decode_and_round_trip() {
        // sample() has deadline_ms: None, so its encoding *is* the old
        // format: no tail bytes beyond lb_iters.
        let old_format_bytes = sample().encode();
        let decoded = StoreKey::decode(&old_format_bytes).expect("old key decodes");
        assert_eq!(decoded.budget.deadline_ms, None);
        assert_eq!(decoded, sample());
        assert_eq!(decoded.encode(), old_format_bytes, "byte round trip");
        assert_eq!(decoded.hash(), sample().hash());
    }

    #[test]
    fn deadline_keys_round_trip_and_differ_from_deadline_free() {
        let base = sample();
        let mut with_deadline = base.clone();
        with_deadline.budget.deadline_ms = Some(50);
        let bytes = with_deadline.encode();
        assert_eq!(bytes.len(), base.encode().len() + 2, "tag + varint tail");
        let back = StoreKey::decode(&bytes).expect("decodes");
        assert_eq!(back, with_deadline);
        assert_eq!(back.encode(), bytes);
        assert_ne!(bytes, base.encode());
        assert_ne!(with_deadline.hash(), base.hash());
    }

    /// The layered-tail contract for the oracle policy: `Auto` keys are
    /// byte-identical to the pre-oracle encoding (old archives keep
    /// hitting); pinned-backend keys append the policy byte — behind an
    /// explicit deadline option when the deadline is `None`, so the two
    /// tails never collide — and every combination round-trips.
    #[test]
    fn oracle_policy_tail_layers_over_the_deadline_tail() {
        let base = sample();
        assert_eq!(base.oracle, OraclePolicy::Auto);
        for deadline in [None, Some(50)] {
            for oracle in [OraclePolicy::Auto, OraclePolicy::Dense, OraclePolicy::Hub] {
                let mut key = base.clone();
                key.budget.deadline_ms = deadline;
                key.oracle = oracle;
                let bytes = key.encode();
                let back = StoreKey::decode(&bytes).expect("decodes");
                assert_eq!(back, key);
                assert_eq!(back.encode(), bytes, "byte round trip");
                if oracle != OraclePolicy::Auto {
                    assert_eq!(*bytes.last().unwrap(), oracle.code());
                }
            }
        }
        // Deadline-free pinned key: tail is exactly [None tag, policy].
        let mut hub = base.clone();
        hub.oracle = OraclePolicy::Hub;
        let bytes = hub.encode();
        assert_eq!(bytes.len(), base.encode().len() + 2);
        assert_ne!(hub.hash(), base.hash());
        // A dangling explicit-None deadline (no policy byte after it)
        // stays non-canonical.
        assert!(StoreKey::decode(&bytes[..bytes.len() - 1]).is_err());
        // And an explicit Auto policy byte is rejected too.
        let mut padded = base.encode();
        padded.extend_from_slice(&[0, 0]);
        assert!(StoreKey::decode(&padded).is_err());
    }
}
