//! The archive itself: an append-only write-ahead log of CRC32-framed
//! records with an in-memory index rebuilt on open.
//!
//! ## File format
//!
//! ```text
//! [8-byte magic "DCST" 0x01 0x00 0x00 0x00]
//! record*   where record = [kind u8][key_len u32 LE][val_len u32 LE]
//!                          [crc32 u32 LE][key bytes][val bytes]
//! ```
//!
//! The CRC covers everything except itself (kind, both lengths, key, val).
//! Record kinds: `1` = report (key = [`StoreKey::encode`] bytes, val =
//! binary `SolveReport`), `2` = footer (empty key; val = live-record count
//! and generation, written by [`Store::close_clean`] so a reopened archive
//! can tell a clean shutdown from a crash). Appends continue *after* a
//! footer — interior footers are skipped when the index is rebuilt and
//! dropped by compaction — so the persisted generation stamp survives a
//! crash that happens after later appends.
//!
//! ## Crash safety
//!
//! Appends are single `write(2)` calls in log order with no in-place
//! mutation, so a crash (including `kill -9`) can only leave a *torn tail*:
//! a final record whose bytes are incomplete or whose CRC fails. [`Store::open`]
//! scans the log, stops at the first invalid frame, and truncates the file
//! there — the torn record is dropped, every earlier record is intact, and
//! the archive is immediately writable again. Corruption can never
//! propagate backwards because records are never rewritten in place.
//!
//! ## Compaction and generations
//!
//! The log grows monotonically (superseded duplicates, interior footers).
//! [`Store::compact`] writes the live records to a sibling temp file,
//! fsyncs it, and atomically renames it over the archive, then swaps the
//! file handle, index, and generation stamp under the same lock that every
//! reader takes — a reader observes either generation `g` with `g`'s
//! offsets or `g+1` with `g+1`'s offsets, never a half-compacted mix. The
//! generation is persisted in the footer, so cross-process readers can
//! detect a swap too. As defense in depth, [`Store::get`] re-verifies the
//! record CRC on every read.
//!
//! One writer per archive: the store serializes all access behind a mutex
//! in-process, but does no cross-process file locking — run one writing
//! server (or CLI) per archive at a time. Concurrent read-only opens of a
//! clean archive are safe.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::crc32::Crc32;
use crate::key::{hash_key_bytes, StoreKey};

/// Archive magic: "DCST" + format version 1.
pub const MAGIC: [u8; 8] = *b"DCST\x01\x00\x00\x00";

const RECORD_HEADER_LEN: usize = 13; // kind + key_len + val_len + crc
const KIND_REPORT: u8 = 1;
const KIND_FOOTER: u8 = 2;
const FOOTER_VAL_LEN: usize = 16; // live u64 + generation u64

/// Sanity bounds: lengths beyond these are treated as corruption, not
/// allocation requests.
const MAX_KEY_LEN: u32 = 1 << 24;
const MAX_VAL_LEN: u32 = 1 << 28;

/// What [`Store::open`] found and repaired.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpenStats {
    /// Report records scanned (including superseded duplicates).
    pub records_scanned: u64,
    /// Live records after index dedup.
    pub live: u64,
    /// Records replaced by a later append of the same key.
    pub superseded: u64,
    /// Bytes dropped from a torn tail (0 on a clean log).
    pub torn_bytes_dropped: u64,
    /// The log ended with a clean-shutdown footer.
    pub clean_footer: bool,
    /// Generation stamp recovered from the footer (0 if none).
    pub generation: u64,
}

/// Point-in-time archive counters (`dclab store stats`, `/metrics`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    pub live: u64,
    /// Log length in bytes (header + records + footers).
    pub bytes: u64,
    pub generation: u64,
    pub clean_footer: bool,
    /// Appends accepted since open (deduped appends not counted).
    pub appends: u64,
    /// fsyncs since open.
    pub flushes: u64,
}

/// What [`Store::compact`] reclaimed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactStats {
    pub live: u64,
    pub bytes_before: u64,
    pub bytes_after: u64,
    pub generation: u64,
}

/// What [`Store::import`] merged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ImportStats {
    /// Live records in the source archive.
    pub scanned: u64,
    /// Records appended (key not already present).
    pub added: u64,
    /// Records skipped (key already present).
    pub skipped: u64,
}

struct IndexEntry {
    key: Vec<u8>,
    offset: u64,
    key_len: u32,
    val_len: u32,
}

impl IndexEntry {
    fn record_len(&self) -> u64 {
        RECORD_HEADER_LEN as u64 + self.key_len as u64 + self.val_len as u64
    }
}

struct Inner {
    file: File,
    /// key-bytes hash → entries whose key hashed there (collisions probe).
    index: HashMap<u64, Vec<IndexEntry>>,
    /// Next append offset (the current log length). Shutdown footers stay
    /// in place as interior records; appends go after them.
    tail: u64,
    live: u64,
    generation: u64,
    clean_footer: bool,
    appends: u64,
    flushes: u64,
}

/// The persistent solution archive (see module docs).
pub struct Store {
    path: PathBuf,
    inner: Mutex<Inner>,
}

/// One frame found by the scanner.
struct ScanRecord {
    kind: u8,
    offset: usize,
    key_start: usize,
    key_len: usize,
    val_len: usize,
}

impl ScanRecord {
    fn key_range(&self) -> std::ops::Range<usize> {
        self.key_start..self.key_start + self.key_len
    }

    fn val_range(&self) -> std::ops::Range<usize> {
        let start = self.key_start + self.key_len;
        start..start + self.val_len
    }
}

struct Scanned {
    /// Length of the valid prefix (everything after it is torn/garbage).
    valid_end: usize,
    records: Vec<ScanRecord>,
}

fn bad_data(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Walk the frames of `buf` (which must start with [`MAGIC`]); stops —
/// without error — at the first torn or corrupt frame.
fn scan(buf: &[u8]) -> std::io::Result<Scanned> {
    if buf.len() < MAGIC.len() || buf[..MAGIC.len()] != MAGIC {
        return Err(bad_data("not a dclab-store archive (bad magic)"));
    }
    let mut records = Vec::new();
    let mut pos = MAGIC.len();
    loop {
        if pos + RECORD_HEADER_LEN > buf.len() {
            break; // torn header (or exact EOF)
        }
        let kind = buf[pos];
        let key_len = u32::from_le_bytes(buf[pos + 1..pos + 5].try_into().unwrap());
        let val_len = u32::from_le_bytes(buf[pos + 5..pos + 9].try_into().unwrap());
        let crc = u32::from_le_bytes(buf[pos + 9..pos + 13].try_into().unwrap());
        if !(kind == KIND_REPORT || kind == KIND_FOOTER)
            || key_len > MAX_KEY_LEN
            || val_len > MAX_VAL_LEN
        {
            break; // corrupt frame
        }
        let payload_len = key_len as usize + val_len as usize;
        let end = pos + RECORD_HEADER_LEN + payload_len;
        if end > buf.len() {
            break; // torn payload
        }
        let mut check = Crc32::new();
        check.update(&buf[pos..pos + 9]); // kind + lengths
        check.update(&buf[pos + RECORD_HEADER_LEN..end]); // key + val
        if check.finish() != crc {
            break; // bit rot or torn overwrite
        }
        records.push(ScanRecord {
            kind,
            offset: pos,
            key_start: pos + RECORD_HEADER_LEN,
            key_len: key_len as usize,
            val_len: val_len as usize,
        });
        pos = end;
    }
    Ok(Scanned {
        valid_end: pos,
        records,
    })
}

/// Assemble one framed record.
fn frame_record(kind: u8, key: &[u8], val: &[u8]) -> Vec<u8> {
    let mut head = [0u8; 9];
    head[0] = kind;
    head[1..5].copy_from_slice(&(key.len() as u32).to_le_bytes());
    head[5..9].copy_from_slice(&(val.len() as u32).to_le_bytes());
    let mut check = Crc32::new();
    check.update(&head);
    check.update(key);
    check.update(val);
    let crc = check.finish();
    let mut buf = Vec::with_capacity(RECORD_HEADER_LEN + key.len() + val.len());
    buf.extend_from_slice(&head);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(val);
    buf
}

fn footer_record(live: u64, generation: u64) -> Vec<u8> {
    let mut val = Vec::with_capacity(FOOTER_VAL_LEN);
    val.extend_from_slice(&live.to_le_bytes());
    val.extend_from_slice(&generation.to_le_bytes());
    frame_record(KIND_FOOTER, &[], &val)
}

/// Index the report records of a scan, later appends of a key superseding
/// earlier ones. Returns `(index, live, superseded, generation, clean_footer, tail)`.
#[allow(clippy::type_complexity)]
fn build_index(buf: &[u8], scanned: &Scanned) -> (HashMap<u64, Vec<IndexEntry>>, OpenStats, u64) {
    let mut index: HashMap<u64, Vec<IndexEntry>> = HashMap::new();
    let mut stats = OpenStats::default();
    let tail = scanned.valid_end as u64;
    for rec in &scanned.records {
        if rec.kind == KIND_FOOTER {
            if rec.val_len == FOOTER_VAL_LEN {
                let val = &buf[rec.val_range()];
                let gen = u64::from_le_bytes(val[8..16].try_into().unwrap());
                stats.generation = stats.generation.max(gen);
            }
            continue;
        }
        stats.records_scanned += 1;
        let key = buf[rec.key_range()].to_vec();
        let hash = hash_key_bytes(&key);
        let entry = IndexEntry {
            key,
            offset: rec.offset as u64,
            key_len: rec.key_len as u32,
            val_len: rec.val_len as u32,
        };
        let bucket = index.entry(hash).or_default();
        if let Some(existing) = bucket.iter_mut().find(|e| e.key == entry.key) {
            *existing = entry;
            stats.superseded += 1;
        } else {
            bucket.push(entry);
        }
    }
    stats.live = index.values().map(|b| b.len() as u64).sum();
    // A footer at the exact end of the valid prefix marks a clean
    // shutdown. Appends continue *after* it — interior footers are skipped
    // by the scan and dropped at compaction — so the generation stamp the
    // footer carries survives crashes that happen mid-append later on.
    if let Some(last) = scanned.records.last() {
        let last_end = last.offset + RECORD_HEADER_LEN + last.key_len + last.val_len;
        if last.kind == KIND_FOOTER && last_end == scanned.valid_end {
            stats.clean_footer = true;
        }
    }
    (index, stats, tail)
}

impl Store {
    /// Open (or create) the archive at `path`, rebuilding the in-memory
    /// index. A torn final record is dropped by truncation; earlier records
    /// are untouched.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Store, OpenStats)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        if buf.is_empty() {
            file.write_all(&MAGIC)?;
            buf.extend_from_slice(&MAGIC);
        }
        let scanned = scan(&buf)?;
        let mut torn = 0u64;
        if scanned.valid_end < buf.len() {
            torn = (buf.len() - scanned.valid_end) as u64;
            file.set_len(scanned.valid_end as u64)?;
        }
        let (index, mut stats, tail) = build_index(&buf, &scanned);
        stats.torn_bytes_dropped = torn;
        let inner = Inner {
            file,
            index,
            tail,
            live: stats.live,
            generation: stats.generation,
            clean_footer: stats.clean_footer,
            appends: 0,
            flushes: 0,
        };
        Ok((
            Store {
                path,
                inner: Mutex::new(inner),
            },
            stats,
        ))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("store lock poisoned")
    }

    /// The archive path this store was opened on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current generation stamp (bumped by [`Store::compact`]).
    pub fn generation(&self) -> u64 {
        self.lock().generation
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.lock().live
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the report bytes for `key`. The record's CRC is re-verified
    /// on read, so a hit is never served from a damaged frame.
    pub fn get(&self, key: &StoreKey) -> std::io::Result<Option<Vec<u8>>> {
        self.get_encoded(&key.encode())
    }

    fn get_encoded(&self, key_bytes: &[u8]) -> std::io::Result<Option<Vec<u8>>> {
        let mut inner = self.lock();
        let hash = hash_key_bytes(key_bytes);
        let Some(entry) = inner
            .index
            .get(&hash)
            .and_then(|bucket| bucket.iter().find(|e| e.key == key_bytes))
        else {
            return Ok(None);
        };
        let (offset, len) = (entry.offset, entry.record_len() as usize);
        let key_len = entry.key_len as usize;
        let mut record = vec![0u8; len];
        inner.file.seek(SeekFrom::Start(offset))?;
        inner.file.read_exact(&mut record)?;
        let stored_crc = u32::from_le_bytes(record[9..13].try_into().unwrap());
        let mut check = Crc32::new();
        check.update(&record[..9]);
        check.update(&record[RECORD_HEADER_LEN..]);
        if check.finish() != stored_crc {
            return Err(bad_data(format!(
                "record at offset {offset} failed its CRC on read"
            )));
        }
        Ok(Some(record[RECORD_HEADER_LEN + key_len..].to_vec()))
    }

    /// Append `key → val`. Returns `Ok(false)` if the key is already
    /// archived (the existing record is kept — reports are deterministic,
    /// so re-appending would only grow the log).
    ///
    /// The record reaches the OS in one `write(2)` before this returns
    /// (durable against process death); call [`Store::flush`] to also
    /// survive power loss.
    pub fn append(&self, key: &StoreKey, val: &[u8]) -> std::io::Result<bool> {
        self.append_encoded(key.encode(), val)
    }

    fn append_encoded(&self, key_bytes: Vec<u8>, val: &[u8]) -> std::io::Result<bool> {
        // Enforce the same bounds the recovery scan enforces: a frame the
        // scanner would treat as corrupt must never be written, or the next
        // open would truncate it *and every record appended after it*.
        if key_bytes.len() > MAX_KEY_LEN as usize || val.len() > MAX_VAL_LEN as usize {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "record too large for the archive format (key {} bytes > {MAX_KEY_LEN} \
                     or val {} bytes > {MAX_VAL_LEN})",
                    key_bytes.len(),
                    val.len()
                ),
            ));
        }
        let mut inner = self.lock();
        let hash = hash_key_bytes(&key_bytes);
        if inner
            .index
            .get(&hash)
            .is_some_and(|bucket| bucket.iter().any(|e| e.key == key_bytes))
        {
            return Ok(false);
        }
        // A previous shutdown footer stays in place (interior footers are
        // skipped on open); the log just stops being clean.
        inner.clean_footer = false;
        let record = frame_record(KIND_REPORT, &key_bytes, val);
        let offset = inner.tail;
        inner.file.seek(SeekFrom::Start(offset))?;
        inner.file.write_all(&record)?;
        inner.tail += record.len() as u64;
        inner.live += 1;
        inner.appends += 1;
        let entry = IndexEntry {
            key_len: key_bytes.len() as u32,
            val_len: val.len() as u32,
            key: key_bytes,
            offset,
        };
        inner.index.entry(hash).or_default().push(entry);
        Ok(true)
    }

    /// fsync the log (crash-consistency down to the platters).
    pub fn flush(&self) -> std::io::Result<()> {
        let mut inner = self.lock();
        inner.file.sync_data()?;
        inner.flushes += 1;
        Ok(())
    }

    /// Clean shutdown: stamp a footer (live count + generation), fsync.
    /// Idempotent; later appends continue after the footer (it becomes an
    /// interior record, preserving the generation stamp across crashes).
    pub fn close_clean(&self) -> std::io::Result<()> {
        let mut inner = self.lock();
        if inner.clean_footer {
            inner.file.sync_data()?;
            inner.flushes += 1;
            return Ok(());
        }
        let tail = inner.tail;
        let footer = footer_record(inner.live, inner.generation);
        inner.file.seek(SeekFrom::Start(tail))?;
        inner.file.write_all(&footer)?;
        inner.file.sync_data()?;
        inner.tail += footer.len() as u64;
        inner.clean_footer = true;
        inner.flushes += 1;
        Ok(())
    }

    /// Serialize the live records (offset order) into a fresh archive
    /// image, footer included.
    fn snapshot_image(inner: &mut Inner, generation: u64) -> std::io::Result<Vec<u8>> {
        let mut entries: Vec<(u64, usize, usize)> = inner
            .index
            .values()
            .flat_map(|bucket| {
                bucket
                    .iter()
                    .map(|e| (e.offset, e.key_len as usize, e.val_len as usize))
            })
            .collect();
        entries.sort_unstable();
        let mut image = Vec::with_capacity(MAGIC.len() + inner.tail as usize);
        image.extend_from_slice(&MAGIC);
        for (offset, key_len, val_len) in entries {
            let len = RECORD_HEADER_LEN + key_len + val_len;
            let mut record = vec![0u8; len];
            inner.file.seek(SeekFrom::Start(offset))?;
            inner.file.read_exact(&mut record)?;
            image.extend_from_slice(&record);
        }
        let live = inner.live;
        image.extend_from_slice(&footer_record(live, generation));
        Ok(image)
    }

    /// Rewrite the archive to live records only and atomically swap it in:
    /// write a sibling temp file, fsync, rename over the log, bump the
    /// generation. Readers synchronize on the same lock, so no reader ever
    /// observes a half-compacted file.
    pub fn compact(&self) -> std::io::Result<CompactStats> {
        let mut inner = self.lock();
        let bytes_before = inner.tail;
        let generation = inner.generation + 1;
        let image = Self::snapshot_image(&mut inner, generation)?;
        let tmp_path = self.path.with_file_name(format!(
            "{}.compact-tmp",
            self.path
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_else(|| "archive".into())
        ));
        let mut tmp = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp_path)?;
        tmp.write_all(&image)?;
        tmp.sync_all()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // Make the rename itself durable where the platform allows it.
        if let Some(parent) = self.path.parent() {
            if let Ok(dir) = File::open(if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            }) {
                let _ = dir.sync_all();
            }
        }
        // `tmp` now *is* the archive inode; swap handle + index + stamp
        // together under the lock.
        inner.file = tmp;
        let scanned = scan(&image)?;
        let (index, stats, tail) = build_index(&image, &scanned);
        inner.index = index;
        inner.live = stats.live;
        inner.tail = tail;
        inner.generation = generation;
        inner.clean_footer = true;
        Ok(CompactStats {
            live: inner.live,
            bytes_before,
            bytes_after: inner.tail,
            generation,
        })
    }

    /// Write a standalone snapshot of the live records to `dest` (a fresh
    /// generation-0 archive with a clean footer) — the portable export
    /// format for sharing solved corpora. Returns the record count.
    pub fn export(&self, dest: impl AsRef<Path>) -> std::io::Result<u64> {
        let mut inner = self.lock();
        let image = Self::snapshot_image(&mut inner, 0)?;
        let live = inner.live;
        drop(inner);
        let mut out = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(dest.as_ref())?;
        out.write_all(&image)?;
        out.sync_all()?;
        Ok(live)
    }

    /// Merge another archive's live records into this one (keys already
    /// present are skipped). The source is only read, never repaired.
    pub fn import(&self, src: impl AsRef<Path>) -> std::io::Result<ImportStats> {
        let buf = std::fs::read(src.as_ref())?;
        let scanned = scan(&buf)?;
        // Later records supersede earlier ones, mirroring open().
        let mut live: HashMap<&[u8], &ScanRecord> = HashMap::new();
        for rec in &scanned.records {
            if rec.kind == KIND_REPORT {
                live.insert(&buf[rec.key_range()], rec);
            }
        }
        let mut stats = ImportStats {
            scanned: live.len() as u64,
            ..ImportStats::default()
        };
        let mut records: Vec<&ScanRecord> = live.into_values().collect();
        records.sort_unstable_by_key(|r| r.offset);
        for rec in records {
            let key = buf[rec.key_range()].to_vec();
            if self.append_encoded(key, &buf[rec.val_range()])? {
                stats.added += 1;
            } else {
                stats.skipped += 1;
            }
        }
        Ok(stats)
    }

    /// Decode every live record (offset order) — the warm-boot and export
    /// iteration path. The log is read back in one sequential pass (not a
    /// seek per record, which would make a large warm boot syscall-bound).
    /// Records whose key no longer decodes (foreign writer, future key
    /// version) are skipped rather than failing the boot.
    pub fn iter_live(&self) -> std::io::Result<Vec<(StoreKey, Vec<u8>)>> {
        let mut inner = self.lock();
        inner.file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::with_capacity(inner.tail as usize);
        inner.file.read_to_end(&mut buf)?;
        let mut entries: Vec<(u64, Vec<u8>, usize, usize)> = inner
            .index
            .values()
            .flat_map(|bucket| {
                bucket.iter().map(|e| {
                    (
                        e.offset,
                        e.key.clone(),
                        e.key_len as usize,
                        e.val_len as usize,
                    )
                })
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.0);
        let mut out = Vec::with_capacity(entries.len());
        for (offset, key_bytes, key_len, val_len) in entries {
            let Ok(key) = StoreKey::decode(&key_bytes) else {
                continue;
            };
            let start = offset as usize + RECORD_HEADER_LEN + key_len;
            let Some(val) = buf.get(start..start + val_len) else {
                continue;
            };
            out.push((key, val.to_vec()));
        }
        Ok(out)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.lock();
        StoreStats {
            live: inner.live,
            bytes: inner.tail,
            generation: inner.generation,
            clean_footer: inner.clean_footer,
            appends: inner.appends,
            flushes: inner.flushes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dclab_engine::{Budget, OraclePolicy, Strategy};

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dclab-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    fn key(i: u64) -> StoreKey {
        StoreKey {
            n: 4,
            edges: vec![(0, 1), (1, 2), (2, 3)],
            pvec: vec![i + 1, 1],
            strategy: Strategy::Greedy,
            budget: Budget::default(),
            oracle: OraclePolicy::Auto,
        }
    }

    #[test]
    fn append_get_reopen_round_trip() {
        let path = temp_path("round-trip.dcst");
        let _ = std::fs::remove_file(&path);
        {
            let (store, open) = Store::open(&path).unwrap();
            assert_eq!(open.live, 0);
            assert!(store.append(&key(0), b"report-zero").unwrap());
            assert!(store.append(&key(1), b"report-one").unwrap());
            assert!(!store.append(&key(0), b"ignored-dup").unwrap(), "dedup");
            assert_eq!(store.len(), 2);
            assert_eq!(store.get(&key(0)).unwrap().unwrap(), b"report-zero");
        }
        let (store, open) = Store::open(&path).unwrap();
        assert_eq!(open.live, 2);
        assert_eq!(open.torn_bytes_dropped, 0);
        assert!(!open.clean_footer, "no close_clean → no footer");
        assert_eq!(store.get(&key(1)).unwrap().unwrap(), b"report-one");
        assert_eq!(store.get(&key(9)).unwrap(), None);
    }

    #[test]
    fn close_clean_leaves_footer_and_appends_resume() {
        let path = temp_path("footer.dcst");
        let _ = std::fs::remove_file(&path);
        {
            let (store, _) = Store::open(&path).unwrap();
            store.append(&key(0), b"a").unwrap();
            store.close_clean().unwrap();
        }
        let (store, open) = Store::open(&path).unwrap();
        assert!(open.clean_footer);
        assert_eq!(open.live, 1);
        // Appending truncates the footer and keeps going.
        assert!(store.append(&key(1), b"b").unwrap());
        assert!(!store.stats().clean_footer);
        store.close_clean().unwrap();
        let (_, open) = Store::open(&path).unwrap();
        assert!(open.clean_footer);
        assert_eq!(open.live, 2);
    }

    #[test]
    fn torn_tail_is_dropped_earlier_records_intact() {
        let path = temp_path("torn.dcst");
        let _ = std::fs::remove_file(&path);
        {
            let (store, _) = Store::open(&path).unwrap();
            store.append(&key(0), b"first-report").unwrap();
            store.append(&key(1), b"second-report").unwrap();
        }
        // Tear the final record by chopping 3 bytes.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let (store, open) = Store::open(&path).unwrap();
        assert_eq!(open.live, 1, "torn record dropped");
        assert!(open.torn_bytes_dropped > 0);
        assert_eq!(store.get(&key(0)).unwrap().unwrap(), b"first-report");
        assert_eq!(store.get(&key(1)).unwrap(), None);
        // The archive is immediately writable again.
        assert!(store.append(&key(1), b"second-report").unwrap());
        assert_eq!(store.get(&key(1)).unwrap().unwrap(), b"second-report");
    }

    #[test]
    fn corrupt_mid_record_truncates_from_there() {
        let path = temp_path("bitrot.dcst");
        let _ = std::fs::remove_file(&path);
        let second_offset;
        {
            let (store, _) = Store::open(&path).unwrap();
            store.append(&key(0), b"aaaa").unwrap();
            second_offset = store.stats().bytes;
            store.append(&key(1), b"bbbb").unwrap();
            store.append(&key(2), b"cccc").unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[second_offset as usize + RECORD_HEADER_LEN] ^= 0xFF; // flip a key byte of record 2
        std::fs::write(&path, &bytes).unwrap();
        let (store, open) = Store::open(&path).unwrap();
        assert_eq!(open.live, 1, "records at and after the flip are dropped");
        assert_eq!(store.get(&key(0)).unwrap().unwrap(), b"aaaa");
    }

    #[test]
    fn compact_drops_dead_space_and_bumps_generation() {
        let path = temp_path("compact.dcst");
        let _ = std::fs::remove_file(&path);
        let (store, _) = Store::open(&path).unwrap();
        for i in 0..8 {
            store
                .append(&key(i), format!("val-{i}").as_bytes())
                .unwrap();
        }
        store.close_clean().unwrap();
        assert_eq!(store.generation(), 0);
        let stats = store.compact().unwrap();
        assert_eq!(stats.live, 8);
        assert_eq!(stats.generation, 1);
        assert_eq!(store.generation(), 1);
        for i in 0..8 {
            assert_eq!(
                store.get(&key(i)).unwrap().unwrap(),
                format!("val-{i}").as_bytes()
            );
        }
        // Reopen: generation survives via the footer.
        drop(store);
        let (store, open) = Store::open(&path).unwrap();
        assert_eq!(open.generation, 1);
        assert!(open.clean_footer);
        assert_eq!(store.len(), 8);
    }

    #[test]
    fn export_then_import_merges_without_duplicates() {
        let a_path = temp_path("exp-a.dcst");
        let b_path = temp_path("exp-b.dcst");
        let dump = temp_path("exp-dump.dcst");
        for p in [&a_path, &b_path, &dump] {
            let _ = std::fs::remove_file(p);
        }
        let (a, _) = Store::open(&a_path).unwrap();
        a.append(&key(0), b"zero").unwrap();
        a.append(&key(1), b"one").unwrap();
        assert_eq!(a.export(&dump).unwrap(), 2);
        let (b, _) = Store::open(&b_path).unwrap();
        b.append(&key(1), b"one").unwrap();
        b.append(&key(2), b"two").unwrap();
        let imported = b.import(&dump).unwrap();
        assert_eq!(imported.scanned, 2);
        assert_eq!(imported.added, 1, "only key 0 is new");
        assert_eq!(imported.skipped, 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(&key(0)).unwrap().unwrap(), b"zero");
    }

    #[test]
    fn iter_live_returns_decoded_keys_in_offset_order() {
        let path = temp_path("iter.dcst");
        let _ = std::fs::remove_file(&path);
        let (store, _) = Store::open(&path).unwrap();
        for i in 0..4 {
            store.append(&key(i), format!("v{i}").as_bytes()).unwrap();
        }
        let live = store.iter_live().unwrap();
        assert_eq!(live.len(), 4);
        for (i, (k, v)) in live.iter().enumerate() {
            assert_eq!(*k, key(i as u64));
            assert_eq!(v, format!("v{i}").as_bytes());
        }
    }

    #[test]
    fn generation_survives_a_crash_after_later_appends() {
        let path = temp_path("gen-crash.dcst");
        let _ = std::fs::remove_file(&path);
        {
            let (store, _) = Store::open(&path).unwrap();
            store.append(&key(0), b"a").unwrap();
            store.compact().unwrap();
            assert_eq!(store.generation(), 1);
            // Append after the compaction footer, then "crash" (drop with
            // no close_clean): the interior footer must keep the stamp.
            store.append(&key(1), b"b").unwrap();
        }
        let (store, open) = Store::open(&path).unwrap();
        assert!(!open.clean_footer, "crash → not clean");
        assert_eq!(open.generation, 1, "generation stamp survives the crash");
        assert_eq!(open.live, 2);
        let c = store.compact().unwrap();
        assert_eq!(c.generation, 2, "next compaction does not reuse a stamp");
    }

    #[test]
    fn oversized_records_are_rejected_not_written() {
        let path = temp_path("oversized.dcst");
        let _ = std::fs::remove_file(&path);
        let (store, _) = Store::open(&path).unwrap();
        store.append(&key(0), b"small").unwrap();
        let huge = vec![0u8; MAX_VAL_LEN as usize + 1];
        let err = store.append(&key(1), &huge).expect_err("must refuse");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        // The refusal left the log fully valid: a good record still appends
        // and a reopen sees everything.
        store.append(&key(2), b"after").unwrap();
        drop(store);
        let (_, open) = Store::open(&path).unwrap();
        assert_eq!(open.live, 2);
        assert_eq!(open.torn_bytes_dropped, 0);
    }

    #[test]
    fn non_archive_file_is_rejected() {
        let path = temp_path("not-an-archive.dcst");
        std::fs::write(&path, b"definitely not DCST magic").unwrap();
        assert!(Store::open(&path).is_err());
    }
}
