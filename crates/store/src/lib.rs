//! # dclab-store — the persistent solution archive.
//!
//! PR 2 made repeated solves of the same instance O(1) with an in-memory
//! canonical-form cache; this crate makes them O(1) *across process
//! lifetimes*. Every solved instance becomes a durable record mapping its
//! canonical identity ([`StoreKey`]: `graph::canon` canonical edges +
//! p-vector + strategy + budget) to a compact binary `SolveReport`
//! (`dclab_engine::binary`), in the spirit of hub-labeling systems that
//! treat precomputed distance answers as a queryable artifact rather than
//! a transient by-product.
//!
//! The design is a classic crash-safe WAL, std-only like the rest of the
//! workspace:
//!
//! * **Append-only log** of CRC32-framed records ([`wal`]); appends are
//!   single `write(2)` calls, so the only failure mode a crash can
//!   produce is a torn final record.
//! * **Open = recover**: the index is rebuilt by a sequential scan; a torn
//!   tail is truncated away (dropped, never mis-decoded — every frame is
//!   CRC-checked), and the archive is immediately writable again.
//! * **Snapshot compaction** ([`Store::compact`]): live records are
//!   rewritten to a temp file, fsynced, and atomically renamed over the
//!   log; a generation stamp (persisted in the clean-shutdown footer) lets
//!   readers detect the swap, and in-process readers share the index lock
//!   so they can never observe a half-compacted file.
//! * **Corpus plumbing**: [`Store::export`] emits a standalone snapshot,
//!   [`Store::import`] merges one in with key-level dedup — solved corpora
//!   are shareable artifacts.
//!
//! The serve layer warm-boots its LRU from the archive and write-behinds
//! fresh solves; `dclab solve/batch --store` populate the same file, and
//! `dclab store stats|export|import|compact` manage it.

pub mod crc32;
pub mod key;
pub mod wal;

pub use crc32::crc32;
pub use key::StoreKey;
pub use wal::{CompactStats, ImportStats, OpenStats, Store, StoreStats};
