//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven and built at
//! compile time — the integrity check framing every archive record. A torn
//! or bit-flipped record fails its CRC and is treated as end-of-log rather
//! than decoded into garbage.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC-32 (for multi-slice records).
#[derive(Clone, Copy, Debug)]
pub struct Crc32(u32);

impl Crc32 {
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = b"framed record payload".to_vec();
        let base = crc32(&data);
        for i in 0..data.len() {
            data[i] ^= 1;
            assert_ne!(crc32(&data), base, "flip at byte {i} must be detected");
            data[i] ^= 1;
        }
    }
}
