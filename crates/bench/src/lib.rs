//! Shared fixtures for the criterion benches (one bench target per
//! experiment table of `EXPERIMENTS.md`).

use dclab_core::pvec::PVec;
use dclab_graph::generators::random;
use dclab_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic diameter-2 G(n, p) fixture. Density sits comfortably
/// above the diameter-2 threshold `√(2·ln n / n)`.
pub fn diam2_graph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let density = (2.8 * (n as f64).ln() / n as f64).sqrt().clamp(0.0, 0.6);
    random::gnp_with_diameter_at_most(&mut rng, n, density.max(0.45), 2)
}

/// Deterministic connected cograph fixture.
pub fn cograph(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    random::random_connected_cograph(&mut rng, n, 0.4)
}

/// Deterministic `n`-vertex hardness-corpus instance: the Theorem 3
/// (Griggs–Yeh) reduction — complement of a random `G(n−1, ½)` plus a
/// universal vertex. Always connected with diameter ≤ 2, and adversarial
/// for exact search (its optimum encodes a Hamiltonian-path question), so
/// it is the natural stress corpus for anytime/deadline solving.
pub fn hardness_diam2(n: usize, seed: u64) -> Graph {
    assert!(n >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let g = random::gnp(&mut rng, n - 1, 0.5);
    dclab_core::hardness::griggs_yeh_reduction(&g)
}

/// The classic constraint vector.
pub fn l21() -> PVec {
    PVec::l21()
}
