//! E16 bench — the distance-oracle memory wall, measured and gated.
//!
//! The Theorem 2 pipeline materialises an `n × n` distance matrix, which
//! walls exact solves off around a few thousand vertices
//! (`dense_pipeline_bytes(50_000)` ≈ 28 GiB). The hub-label oracle route
//! replaces the matrix with 2-hop labels and point queries, and this
//! bench pins the three numbers that make that trade worth it on the
//! `smalldiam` core–periphery family (the small-diameter regime the
//! paper's reduction targets):
//!
//! * **compactness** — serialized label bytes per vertex
//!   (`oracle_bytes_per_vertex`, gated at a loose 70% by bench-gate) and
//!   the headline acceptance check that the hub footprint stays ≤ 5% of
//!   the dense `n × n` matrix it replaces;
//! * **query latency** — mean ns per point query over a pre-drawn pair
//!   schedule (`oracle_query_ns`, gated at 70%: raw wall time);
//! * **agreement** — a dense-backed and a hub-backed engine solve of the
//!   same instance must return identical labelings, spans, bounds, and
//!   query counts (quick mode, where the dense matrix still fits).
//!
//! Full mode additionally runs the end-to-end engine solve at
//! n = 50 000 — a size where the dense pipeline would need > 8 GiB and
//! only the oracle path is on the table — and checks the `Auto` policy
//! resolves to hub labels there. Writes `BENCH_oracle.json` at the
//! workspace root. `DCLAB_BENCH_QUICK=1` shrinks n to 2000 (CI smoke).

use std::time::Instant;

use dclab_core::distance::DistanceSource;
use dclab_core::pvec::PVec;
use dclab_engine::json::Obj;
use dclab_engine::{solve, OraclePolicy, SolveRequest, Strategy};
use dclab_graph::generators::random;
use dclab_oracle::{dense_matrix_bytes, dense_pipeline_bytes, HubLabels};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const CORE: usize = 64;
const SEED: u64 = 0xE16;

fn oracle_request(g: &dclab_graph::Graph, policy: OraclePolicy) -> SolveRequest {
    SolveRequest {
        graph: g.clone(),
        pvec: PVec::l21(),
        strategy: Strategy::OraclePath,
        budget: Default::default(),
        oracle: policy,
    }
}

fn main() {
    let quick = std::env::var("DCLAB_BENCH_QUICK").is_ok();
    let (n, queries) = if quick {
        (2_000usize, 200_000usize)
    } else {
        (50_000, 2_000_000)
    };

    let mut rng = StdRng::seed_from_u64(SEED);
    let g = random::core_periphery(&mut rng, n, CORE, 0.0);
    let m = g.m();

    // --- label build + compactness --------------------------------------
    let t0 = Instant::now();
    let labels = HubLabels::build(&g).expect("connected instance builds");
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let footprint = labels.footprint_bytes();
    let bytes_per_vertex = footprint as f64 / n as f64;
    let footprint_pct = footprint as f64 * 100.0 / dense_matrix_bytes(n) as f64;

    // --- point-query latency --------------------------------------------
    // Pre-drawn pair schedule so the RNG never sits inside the timed loop.
    let pairs: Vec<(u32, u32)> = (0..queries)
        .map(|_| (rng.random_range(0..n) as u32, rng.random_range(0..n) as u32))
        .collect();
    let mut checksum = 0u64;
    let t0 = Instant::now();
    for &(u, v) in &pairs {
        checksum = checksum.wrapping_add(labels.query(u as usize, v as usize) as u64);
    }
    let query_ns = t0.elapsed().as_nanos() as f64 / queries as f64;

    let mut failures: Vec<String> = Vec::new();

    // --- exactness spot-check -------------------------------------------
    // Diameter-2 family: d(u, u) = 0, d(u, v) ∈ {1, 2} otherwise. The
    // differential proptest suite covers arbitrary graphs; here we pin
    // the bench instance itself.
    for &(u, v) in pairs.iter().take(64) {
        let (u, v) = (u as usize, v as usize);
        let expect = if u == v {
            0
        } else if g.has_edge(u, v) {
            1
        } else {
            2
        };
        if labels.query(u, v) != expect {
            failures.push(format!(
                "query({u}, {v}) = {} ≠ {expect}",
                labels.query(u, v)
            ));
            break;
        }
    }

    // --- engine solve over the oracle path ------------------------------
    // Quick mode keeps the dense twin (16 MB matrix at n = 2000) as a
    // differential oracle; full mode is hub-only — the dense pipeline
    // would need dense_pipeline_bytes(n) ≈ 28 GiB.
    let t0 = Instant::now();
    let hub_report = solve(&oracle_request(&g, OraclePolicy::Hub)).expect("hub solve succeeds");
    let solve_ms = t0.elapsed().as_secs_f64() * 1e3;
    let span = hub_report.solution.span;
    let ostats = hub_report
        .stats
        .oracle
        .as_ref()
        .expect("oracle-path solve reports oracle stats");
    if ostats.backend != "hub" {
        failures.push(format!("hub solve reported backend '{}'", ostats.backend));
    }
    if quick {
        let dense_report =
            solve(&oracle_request(&g, OraclePolicy::Dense)).expect("dense solve succeeds");
        if dense_report.solution.labeling != hub_report.solution.labeling
            || dense_report.solution.span != span
        {
            failures.push("dense- and hub-backed solutions differ".into());
        }
        if dense_report.lower_bound != hub_report.lower_bound {
            failures.push("dense- and hub-backed lower bounds differ".into());
        }
        let dq = dense_report.stats.oracle.as_ref().map(|o| o.queries);
        if dq != Some(ostats.queries) {
            failures.push(format!(
                "query counts diverge across backends: dense {dq:?}, hub {}",
                ostats.queries
            ));
        }
        // The bench's pair schedule against the matrix, point by point.
        let dense = DistanceSource::build_dense(&g);
        for &(u, v) in pairs.iter().take(1024) {
            if labels.query(u as usize, v as usize) != dense.query(u as usize, v as usize) {
                failures.push(format!("hub and dense disagree at ({u}, {v})"));
                break;
            }
        }
    } else {
        // Past the memory wall `Auto` must resolve to hub labels.
        let auto_report =
            solve(&oracle_request(&g, OraclePolicy::Auto)).expect("auto solve succeeds");
        let auto_backend = auto_report.stats.oracle.as_ref().map(|o| o.backend.clone());
        if auto_backend.as_deref() != Some("hub") {
            failures.push(format!(
                "Auto policy at n={n} picked {auto_backend:?}, expected hub"
            ));
        }
        if auto_report.solution.span != span {
            failures.push("Auto- and Hub-policy spans differ".into());
        }
        if dense_pipeline_bytes(n) <= 8 << 30 {
            failures.push(format!(
                "full-mode n={n} no longer demonstrates the memory wall \
                 (dense pipeline {} GiB ≤ 8 GiB)",
                dense_pipeline_bytes(n) >> 30
            ));
        }
    }

    // --- headline acceptance: the footprint trade -----------------------
    if footprint * 20 > dense_matrix_bytes(n) {
        failures.push(format!(
            "hub footprint {footprint} B exceeds 5% of the dense matrix ({} B)",
            dense_matrix_bytes(n)
        ));
    }

    println!(
        "bench e16_oracle/smalldiam n={n} m={m}: build {build_ms:.0} ms, \
         {bytes_per_vertex:.0} B/vertex ({footprint_pct:.2}% of dense), \
         query {query_ns:.0} ns, solve {solve_ms:.0} ms span={span} \
         (checksum {checksum})"
    );

    let json = format!(
        "{}\n",
        Obj::new()
            .str("bench", "e16_oracle")
            .bool("quick", quick)
            .usize("n", n)
            .usize("m", m)
            .usize("core", CORE)
            .f64("build_ms", build_ms)
            .u64("label_entries", labels.label_entries() as u64)
            .usize("max_label_size", labels.max_label_len())
            .u64("footprint_bytes", footprint)
            .u64("dense_matrix_bytes", dense_matrix_bytes(n))
            .u64("dense_pipeline_bytes", dense_pipeline_bytes(n))
            .f64("footprint_pct_of_dense", footprint_pct)
            .f64("oracle_bytes_per_vertex", bytes_per_vertex)
            .f64("oracle_query_ns", query_ns)
            .f64("solve_ms", solve_ms)
            .u64("span", span)
            .u64("solve_queries", ostats.queries)
            .finish()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_oracle.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("e16_oracle acceptance FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
