//! E4 bench — the heuristic ladder: greedy labeling, NN construction,
//! 2-opt, 2-opt + Or-opt, and a chained-LK run, on a large diameter-2
//! instance.

use criterion::{criterion_group, criterion_main, Criterion};
use dclab_bench::{diam2_graph, l21};
use dclab_core::baseline::greedy::{greedy_labeling, GreedyOrder};
use dclab_core::reduction::reduce_to_path_tsp;
use dclab_tsp::construct::nearest_neighbor;
use dclab_tsp::lk::{chained_lk, ChainedLkConfig};
use dclab_tsp::localsearch::{local_opt, two_opt, LocalSearchConfig, TourState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_heuristics(c: &mut Criterion) {
    let p = l21();
    let n = 300;
    let g = diam2_graph(n, 4);
    let reduced = reduce_to_path_tsp(&g, &p).unwrap();
    let ext = reduced.tsp.with_dummy_city();
    let nl = ext.candidate_lists(10);
    let cfg = LocalSearchConfig::default();

    let mut group = c.benchmark_group("e4_heuristics_n300");
    group.sample_size(10);
    group.bench_function("greedy_labeling", |b| {
        b.iter(|| greedy_labeling(black_box(&g), &p, GreedyOrder::DegreeDescending))
    });
    group.bench_function("nearest_neighbor", |b| {
        b.iter(|| nearest_neighbor(black_box(&ext), 0))
    });
    group.bench_function("two_opt", |b| {
        b.iter(|| {
            let mut st = TourState::new(nearest_neighbor(&ext, 0));
            two_opt(&ext, &mut st, &nl, &cfg)
        })
    });
    group.bench_function("local_opt_2opt_oropt", |b| {
        b.iter(|| {
            let mut st = TourState::new(nearest_neighbor(&ext, 0));
            local_opt(&ext, &mut st, &nl, &cfg)
        })
    });
    group.bench_function("chained_lk_10kicks", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            chained_lk(
                &ext,
                0,
                &ChainedLkConfig {
                    kicks: 10,
                    ..ChainedLkConfig::default()
                },
                &mut rng,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
