//! E5 bench — Corollary 2 machinery: exponential subset-DP PIP vs the
//! polynomial cotree DP on cographs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dclab_bench::{cograph, diam2_graph};
use dclab_core::diam2::{solve_diam2_lpq, PipSolver};
use dclab_core::partition_paths::{cograph::cograph_path_partition, exact_path_partition};
use std::hint::black_box;

fn bench_pip(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_subset_dp");
    group.sample_size(10);
    for n in [12usize, 16, 18] {
        let g = diam2_graph(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| exact_path_partition(black_box(g)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e5_cotree_dp");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let g = cograph(n, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| cograph_path_partition(black_box(g)).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e5_full_corollary2");
    group.sample_size(10);
    let g = diam2_graph(14, 6);
    group.bench_function("subset_dp_n14", |b| {
        b.iter(|| solve_diam2_lpq(black_box(&g), 2, 1, PipSolver::SubsetDp).unwrap())
    });
    let cg = cograph(256, 6);
    group.bench_function("cotree_n256", |b| {
        b.iter(|| solve_diam2_lpq(black_box(&cg), 2, 1, PipSolver::Cotree).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_pip);
criterion_main!(benches);
