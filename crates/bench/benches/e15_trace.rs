//! E15 bench — the tracing tax, measured and gated.
//!
//! The `dclab-trace` contract is that instrumentation is free when nobody
//! is looking: a solve with no installed trace must cost the same as the
//! verbatim untraced twin (`chained_lk_untraced`, the pre-instrumentation
//! code path kept as a differential oracle), and a *live* trace may only
//! pay for its clock reads and span pushes, never perturb the search.
//!
//! On the e14 hardness corpus (n = 512 Griggs–Yeh diameter-2 instances
//! reduced to Path TSP, dummy-extended) this bench runs the identical
//! chained-LK schedule three ways per rep — untraced twin, instrumented
//! path with tracing disabled, instrumented path under an installed
//! `Trace::enabled()` — and asserts:
//!
//! * **bit-identity**: all three produce identical tours and weights for
//!   every instance (tracing must never change RNG consumption or search
//!   order);
//! * **disabled overhead ≤ 2%** of the untraced twin (median of per-rep
//!   paired ratios, so machine drift and scheduler outliers both cancel):
//!   `Trace::disabled()` performs zero clock reads, so the only residue
//!   is a thread-local read and a branch per span site;
//! * **enabled overhead < 5%**: a live trace's clock reads and span pushes
//!   stay in the noise at solve granularity.
//!
//! Writes `BENCH_trace.json` at the workspace root; bench-gate holds
//! `disabled_rounds_per_s` to the committed baseline (loose 70% — raw
//! throughput) while the overhead ratios are gated *here*, machine-
//! relatively, on every run. `DCLAB_BENCH_QUICK=1` shrinks the schedule.

use std::time::Instant;

use dclab_bench::{hardness_diam2, l21};
use dclab_core::reduction::reduce_to_path_tsp;
use dclab_engine::json::Obj;
use dclab_tsp::lk::{chained_lk_untraced, chained_lk_with_candidates, ChainedLkConfig};
use dclab_tsp::localsearch::CandidateLists;
use dclab_tsp::TspInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 512;

type Runs = Vec<(Vec<u32>, u64)>;

fn main() {
    let quick = std::env::var("DCLAB_BENCH_QUICK").is_ok();
    // A full corpus pass is only a few milliseconds, so single-rep wall
    // clocks are noise-dominated; the gates use minima over many
    // interleaved reps, which converge on the true cost.
    let (instances, kicks, reps) = if quick {
        (2usize, 10usize, 15usize)
    } else {
        (5, 30, 40)
    };

    let corpus: Vec<TspInstance> = (0..instances)
        .map(|i| {
            let g = hardness_diam2(N, 0xE15 + i as u64);
            reduce_to_path_tsp(&g, &l21())
                .expect("hardness corpus always reduces")
                .tsp
                .with_dummy_city()
        })
        .collect();
    let cfg = ChainedLkConfig {
        kicks,
        ..ChainedLkConfig::default()
    };
    let cands: Vec<CandidateLists> = corpus
        .iter()
        .map(|ext| CandidateLists::build(ext, cfg.local.neighbor_k))
        .collect();
    let rounds = instances as u64 * (kicks as u64 + 1);

    // One full pass over the corpus with fresh per-instance seeds;
    // identical RNG streams across variants.
    let run_untraced = |out: &mut Runs| {
        out.clear();
        for (i, ext) in corpus.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xE15 + i as u64);
            out.push(chained_lk_untraced(ext, 0, &cfg, &cands[i], &mut rng));
        }
    };
    let run_instrumented = |out: &mut Runs| {
        out.clear();
        for (i, ext) in corpus.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xE15 + i as u64);
            out.push(chained_lk_with_candidates(
                ext, 0, &cfg, &cands[i], &mut rng,
            ));
        }
    };

    let mut untraced_best_s = f64::INFINITY;
    let mut disabled_best_s = f64::INFINITY;
    let mut enabled_best_s = f64::INFINITY;
    // Per-rep paired ratios: the three variants run back-to-back inside
    // one rep, so each ratio compares measurements taken milliseconds
    // apart and slow drift (thermal, frequency scaling, noisy neighbors)
    // cancels; the median over reps then discards per-rep scheduler
    // outliers in either direction. The global minima only feed the
    // rounds/s headlines.
    let mut disabled_ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut enabled_ratios: Vec<f64> = Vec::with_capacity(reps);
    let mut untraced_runs: Runs = Vec::new();
    let mut disabled_runs: Runs = Vec::new();
    let mut enabled_runs: Runs = Vec::new();
    let mut spans_recorded = 0usize;
    for _ in 0..reps {
        let t0 = Instant::now();
        run_untraced(&mut untraced_runs);
        let untraced_s = t0.elapsed().as_secs_f64();
        untraced_best_s = untraced_best_s.min(untraced_s);

        let t0 = Instant::now();
        run_instrumented(&mut disabled_runs);
        let disabled_s = t0.elapsed().as_secs_f64();
        disabled_best_s = disabled_best_s.min(disabled_s);
        disabled_ratios.push(disabled_s / untraced_s);

        let trace = dclab_trace::Trace::enabled();
        let t0 = Instant::now();
        {
            let _install = trace.install();
            run_instrumented(&mut enabled_runs);
        }
        let enabled_s = t0.elapsed().as_secs_f64();
        enabled_best_s = enabled_best_s.min(enabled_s);
        enabled_ratios.push(enabled_s / untraced_s);
        spans_recorded = trace
            .finish("e15".into(), "lk".into())
            .expect("trace was enabled")
            .spans
            .len();
    }

    let median = |xs: &mut Vec<f64>| -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        xs[xs.len() / 2]
    };

    let mut failures: Vec<String> = Vec::new();

    // --- bit-identity: tracing never perturbs the search ----------------
    if disabled_runs != untraced_runs {
        failures.push("disabled-trace tours differ from the untraced twin".into());
    }
    if enabled_runs != untraced_runs {
        failures.push("live-trace tours differ from the untraced twin".into());
    }
    if spans_recorded < instances {
        failures.push(format!(
            "live trace recorded {spans_recorded} spans for {instances} instances"
        ));
    }

    // --- overhead gates (machine-relative, enforced every run) ----------
    let disabled_overhead = median(&mut disabled_ratios) - 1.0;
    let enabled_overhead = median(&mut enabled_ratios) - 1.0;
    let untraced_rounds_per_s = rounds as f64 / untraced_best_s;
    let disabled_rounds_per_s = rounds as f64 / disabled_best_s;
    let enabled_rounds_per_s = rounds as f64 / enabled_best_s;
    println!(
        "bench e15_trace/chained_lk n={N}: untraced {untraced_rounds_per_s:.1} rounds/s, \
         disabled {disabled_rounds_per_s:.1} ({:+.2}%), \
         enabled {enabled_rounds_per_s:.1} ({:+.2}%, {spans_recorded} spans)",
        disabled_overhead * 100.0,
        enabled_overhead * 100.0
    );
    if disabled_overhead > 0.02 {
        failures.push(format!(
            "disabled-trace overhead {:.2}% above the 2% bar",
            disabled_overhead * 100.0
        ));
    }
    if enabled_overhead >= 0.05 {
        failures.push(format!(
            "live-trace overhead {:.2}% at or above the 5% bar",
            enabled_overhead * 100.0
        ));
    }

    let json = format!(
        "{}\n",
        Obj::new()
            .str("bench", "e15_trace")
            .bool("quick", quick)
            .usize("n", N)
            .usize("instances", instances)
            .usize("kicks", kicks)
            .f64("untraced_rounds_per_s", untraced_rounds_per_s)
            .f64("disabled_rounds_per_s", disabled_rounds_per_s)
            .f64("enabled_rounds_per_s", enabled_rounds_per_s)
            .f64("disabled_overhead", disabled_overhead)
            .f64("enabled_overhead", enabled_overhead)
            .usize("spans_recorded", spans_recorded)
            .finish()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("e15_trace acceptance FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
