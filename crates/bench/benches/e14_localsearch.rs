//! E14 bench — flat-SoA vectorized local search vs the scalar oracle
//! pipeline, on the n = 512 hardness corpus (Griggs–Yeh diameter-2
//! instances reduced to Path TSP, the exact shape `Race` solves):
//!
//! * **chained-LK rounds/s headline**: both pipelines run the identical
//!   kick schedule (1 first descent + `kicks` re-optimizations per
//!   instance); the headline `speedup` is the wall-clock ratio of the
//!   scalar pipeline (`chained_lk_scalar`: full per-city sorts, matrix
//!   re-reads, full don't-look resets) to the SoA pipeline
//!   (`chained_lk_with_candidates`: CSR candidate lists with precomputed
//!   weights, chunked branch-free 2-opt scans, kick-local don't-look
//!   seeding). The ROADMAP acceptance bar is **≥ 3×**;
//! * **candidate build speedup**: partial-selection `CandidateLists::build`
//!   vs the full-sort `neighbor_lists`;
//! * **deadline overshoot**: a 5 ms chained-LK budget must land within
//!   10 ms of wall clock (min over attempts — the e13 symptom was ~57 ms);
//! * **quality guard**: the fast pipeline's median span must stay within
//!   10% of the scalar pipeline's (they may differ tour-by-tour: kick-local
//!   don't-look seeding explores slightly differently).
//!
//! Writes `BENCH_localsearch.json` at the workspace root (gated by
//! `dclab bench-gate` in CI) and exits non-zero on acceptance failure.
//! `DCLAB_BENCH_QUICK=1` shrinks the schedule for CI.

use std::time::Instant;

use dclab_bench::{hardness_diam2, l21};
use dclab_core::reduction::reduce_to_path_tsp;
use dclab_engine::json::Obj;
use dclab_par::Deadline;
use dclab_tsp::lk::{chained_lk_scalar, chained_lk_with_candidates, ChainedLkConfig};
use dclab_tsp::localsearch::CandidateLists;
use dclab_tsp::TspInstance;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 512;

fn median(values: &mut [u64]) -> u64 {
    values.sort_unstable();
    values[values.len() / 2]
}

fn main() {
    let quick = std::env::var("DCLAB_BENCH_QUICK").is_ok();
    let (instances, kicks, reps) = if quick {
        (2usize, 10usize, 2usize)
    } else {
        (5, 30, 3)
    };

    // The corpus LK actually sees: Theorem 3 hardness graphs reduced to
    // Path TSP, solved as cycles on the dummy-extended instance.
    let corpus: Vec<TspInstance> = (0..instances)
        .map(|i| {
            let g = hardness_diam2(N, 0xE14 + i as u64);
            reduce_to_path_tsp(&g, &l21())
                .expect("hardness corpus always reduces")
                .tsp
                .with_dummy_city()
        })
        .collect();
    let cfg = ChainedLkConfig {
        kicks,
        ..ChainedLkConfig::default()
    };
    let rounds = instances as u64 * (kicks as u64 + 1);

    let mut failures: Vec<String> = Vec::new();

    // --- headline: identical kick schedules, scalar vs SoA -------------
    let mut fast_best_s = f64::INFINITY;
    let mut scalar_best_s = f64::INFINITY;
    let mut fast_spans: Vec<u64> = Vec::new();
    let mut scalar_spans: Vec<u64> = Vec::new();
    for _ in 0..reps {
        fast_spans.clear();
        let t0 = Instant::now();
        for (i, ext) in corpus.iter().enumerate() {
            let cands = CandidateLists::build(ext, cfg.local.neighbor_k);
            let mut rng = StdRng::seed_from_u64(0xE14 + i as u64);
            let (_, w) = chained_lk_with_candidates(ext, 0, &cfg, &cands, &mut rng);
            fast_spans.push(w);
        }
        fast_best_s = fast_best_s.min(t0.elapsed().as_secs_f64());

        scalar_spans.clear();
        let t0 = Instant::now();
        for (i, ext) in corpus.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(0xE14 + i as u64);
            let (_, w) = chained_lk_scalar(ext, 0, &cfg, &mut rng);
            scalar_spans.push(w);
        }
        scalar_best_s = scalar_best_s.min(t0.elapsed().as_secs_f64());
    }
    let fast_rounds_per_s = rounds as f64 / fast_best_s;
    let scalar_rounds_per_s = rounds as f64 / scalar_best_s;
    let speedup = scalar_best_s / fast_best_s;
    println!(
        "bench e14_localsearch/chained_lk n={N}: SoA {fast_rounds_per_s:.1} rounds/s \
         vs scalar {scalar_rounds_per_s:.1} rounds/s — speedup {speedup:.2}x"
    );
    // The cross-machine floor is the bench-gate's 70% tolerance on the
    // committed baseline; here we enforce the ROADMAP bar directly (with
    // headroom for the tiny quick schedule, where fixed costs weigh more).
    let bar = if quick { 2.0 } else { 3.0 };
    if speedup < bar {
        failures.push(format!(
            "speedup {speedup:.2}x below the {bar}x acceptance bar"
        ));
    }

    // --- quality guard -------------------------------------------------
    let fast_median = median(&mut fast_spans);
    let scalar_median = median(&mut scalar_spans);
    println!(
        "bench e14_localsearch/quality: SoA median span {fast_median} \
         vs scalar {scalar_median}"
    );
    if fast_median as f64 > scalar_median as f64 * 1.10 {
        failures.push(format!(
            "SoA median span {fast_median} more than 10% above scalar {scalar_median}"
        ));
    }

    // --- candidate build: partial selection vs full sort ---------------
    let ext = &corpus[0];
    let mut build_best_s = f64::INFINITY;
    let mut sort_best_s = f64::INFINITY;
    for _ in 0..reps.max(3) {
        let t0 = Instant::now();
        let cl = CandidateLists::build(ext, 10);
        build_best_s = build_best_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&cl);
        let t0 = Instant::now();
        let nl = ext.neighbor_lists(10);
        sort_best_s = sort_best_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(&nl);
    }
    let build_speedup = sort_best_s / build_best_s;
    println!(
        "bench e14_localsearch/candidate_build n={}: partial-select {:.2} ms \
         vs full-sort {:.2} ms — {build_speedup:.2}x",
        ext.n(),
        build_best_s * 1e3,
        sort_best_s * 1e3
    );

    // --- deadline overshoot at a 5 ms budget ---------------------------
    let budget_ms = 5u64;
    let mut overshoot_best_ms = f64::INFINITY;
    for _ in 0..3 {
        let mut dcfg = cfg.clone();
        dcfg.kicks = 100_000; // budget-bound, never schedule-bound
        dcfg.local.deadline = Deadline::in_millis(budget_ms);
        let t0 = Instant::now();
        let mut rng = StdRng::seed_from_u64(1);
        // Candidate build inside the measured window — exactly what a
        // `Race` lane pays.
        let (_, w) = dclab_tsp::lk::chained_lk(&corpus[0], 0, &dcfg, &mut rng);
        std::hint::black_box(w);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        overshoot_best_ms = overshoot_best_ms.min(wall_ms - budget_ms as f64);
    }
    println!(
        "bench e14_localsearch/deadline: 5 ms budget overshoot {overshoot_best_ms:.2} ms \
         (min of 3)"
    );
    if overshoot_best_ms >= 10.0 {
        failures.push(format!(
            "deadline overshoot {overshoot_best_ms:.2} ms at a {budget_ms} ms budget (gate: < 10 ms)"
        ));
    }

    let json = format!(
        "{}\n",
        Obj::new()
            .str("bench", "e14_localsearch")
            .bool("quick", quick)
            .usize("n", N)
            .usize("instances", instances)
            .usize("kicks", kicks)
            .f64("fast_rounds_per_s", fast_rounds_per_s)
            .f64("scalar_rounds_per_s", scalar_rounds_per_s)
            .f64("speedup", speedup)
            .f64("build_speedup", build_speedup)
            .u64("fast_median_span", fast_median)
            .u64("scalar_median_span", scalar_median)
            .f64("deadline_overshoot_ms", overshoot_best_ms)
            .finish()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_localsearch.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("e14_localsearch acceptance FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
