//! E3 bench — the polynomial 1.5-approximation (Hoogeveen/Christofides)
//! across sizes, including its MST + matching + Eulerian pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dclab_bench::{diam2_graph, l21};
use dclab_core::solver::solve_approx15;
use std::hint::black_box;

fn bench_approx(c: &mut Criterion) {
    let p = l21();
    let mut group = c.benchmark_group("e3_christofides_path");
    group.sample_size(10);
    for n in [20usize, 60, 150, 400] {
        let g = diam2_graph(n, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| solve_approx15(black_box(g), &p).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
