//! E1 bench — the Theorem 2 reduction itself (`O(nm)` APSP + matrix build)
//! and the Claim 1 labeling recovery, at growing n.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dclab_bench::{diam2_graph, l21};
use dclab_core::reduction::{labeling_from_order, reduce_to_path_tsp};
use std::hint::black_box;

fn bench_reduction(c: &mut Criterion) {
    let p = l21();
    let mut group = c.benchmark_group("e1_reduce_to_path_tsp");
    group.sample_size(10);
    for n in [50usize, 200, 800] {
        let g = diam2_graph(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| reduce_to_path_tsp(black_box(g), &p).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e1_labeling_recovery");
    group.sample_size(20);
    for n in [50usize, 200, 800] {
        let g = diam2_graph(n, 1);
        let reduced = reduce_to_path_tsp(&g, &p).unwrap();
        let order: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &reduced, |b, r| {
            b.iter(|| labeling_from_order(black_box(r), &order))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reduction);
criterion_main!(benches);
