//! E12 bench — the persistent solution archive end to end:
//!
//! * **append throughput**: framed CRC32 appends of real binary-encoded
//!   reports, records/s and MB/s;
//! * **cold-open index rebuild**: time to reopen the archive and rebuild
//!   the in-memory index from a sequential scan;
//! * **warm-boot hit rate**: populate a server through the loadgen exact
//!   corpus, restart it on the same archive, replay — the second pass must
//!   be hit rate 1.0 with zero fresh solves.
//!
//! Writes machine-readable results to `BENCH_store.json` at the workspace
//! root and exits non-zero if the acceptance invariants fail.
//! `DCLAB_BENCH_QUICK=1` shrinks the sweep for CI.

use std::time::Instant;

use dclab_core::pvec::PVec;
use dclab_engine::json::Obj;
use dclab_engine::{solve, Budget, OraclePolicy, SolveRequest, Strategy};
use dclab_graph::generators::random;
use dclab_serve::loadgen::{exact_corpus, run_pass};
use dclab_serve::{start, ServeConfig};
use dclab_store::{Store, StoreKey};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dclab-e12-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn main() {
    let quick = std::env::var("DCLAB_BENCH_QUICK").is_ok();
    let appends: u64 = if quick { 2_000 } else { 20_000 };

    // A representative record: a real solved diameter-2 instance, binary
    // encoded; per-append key uniqueness comes from the p-vector.
    let mut rng = StdRng::seed_from_u64(7);
    let g = random::gnp_with_diameter_at_most(&mut rng, 24, 0.55, 2);
    let report = solve(&SolveRequest::new(g.clone(), PVec::l21()).with_strategy(Strategy::Greedy))
        .expect("solvable");
    let val = report.to_bytes();
    let canon = dclab_graph::canon::CanonicalForm::of(&g);
    let key_for = |i: u64| StoreKey {
        n: canon.n as u32,
        edges: canon.edges.clone(),
        pvec: vec![2, 1, i + 1],
        strategy: Strategy::Greedy,
        budget: Budget::default(),
        oracle: OraclePolicy::Auto,
    };

    // --- Append throughput. ---
    let path = temp_path("throughput.dcst");
    let (store, _) = Store::open(&path).expect("create archive");
    let started = Instant::now();
    for i in 0..appends {
        store.append(&key_for(i), &val).expect("append");
    }
    let append_secs = started.elapsed().as_secs_f64();
    store.flush().expect("fsync");
    let bytes = store.stats().bytes;
    let appends_per_sec = appends as f64 / append_secs.max(1e-9);
    let mb_per_sec = bytes as f64 / 1e6 / append_secs.max(1e-9);
    println!(
        "bench e12_store/append: {appends} records in {append_secs:.3}s \
         ({appends_per_sec:.0} rec/s, {mb_per_sec:.1} MB/s, {bytes} bytes)"
    );
    drop(store);

    // --- Cold-open index rebuild. ---
    let started = Instant::now();
    let (reopened, open_stats) = Store::open(&path).expect("reopen");
    let open_secs = started.elapsed().as_secs_f64();
    println!(
        "bench e12_store/cold-open: {} records indexed in {open_secs:.3}s \
         ({:.0} rec/s)",
        open_stats.live,
        open_stats.live as f64 / open_secs.max(1e-9)
    );
    let open_ok = open_stats.live == appends && open_stats.torn_bytes_dropped == 0;
    drop(reopened);

    // --- Warm-boot hit rate on the exact corpus. ---
    let serve_path = temp_path("warm-boot.dcst");
    let corpus = exact_corpus(2025, if quick { 3 } else { 6 });
    let cfg = |path: &std::path::Path| ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 64,
        queue_cap: 0,
        store_path: Some(path.to_str().expect("utf-8").to_string()),
        ..Default::default()
    };
    let h1 = start(cfg(&serve_path)).expect("bind first server");
    let cold = run_pass(h1.addr(), &corpus).expect("cold pass");
    h1.shutdown();
    h1.join();
    let boot_started = Instant::now();
    let h2 = start(cfg(&serve_path)).expect("bind second server");
    let warm_boot_secs = boot_started.elapsed().as_secs_f64();
    let warm = run_pass(h2.addr(), &corpus).expect("warm pass");
    h2.shutdown();
    h2.join();
    let warm_hit_rate = warm.hit_rate();
    println!(
        "bench e12_store/warm-boot: boot {warm_boot_secs:.3}s, \
         hit rate {warm_hit_rate:.3} ({} hits / {} requests, {} fresh solves)",
        warm.hits, warm.requests, warm.misses
    );

    let json = format!(
        "{}\n",
        Obj::new()
            .str("bench", "e12_store")
            .bool("quick", quick)
            .u64("append_records", appends)
            .f64("append_secs", append_secs)
            .f64("appends_per_sec", appends_per_sec)
            .f64("append_mb_per_sec", mb_per_sec)
            .u64("archive_bytes", bytes)
            .f64("cold_open_secs", open_secs)
            .u64("cold_open_records", open_stats.live)
            .f64("warm_boot_secs", warm_boot_secs)
            .u64("warm_requests", warm.requests)
            .u64("warm_hits", warm.hits)
            .u64("warm_fresh_solves", warm.misses)
            .f64("warm_hit_rate", warm_hit_rate)
            .finish()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    std::fs::write(path, &json).expect("write BENCH_store.json");
    println!("wrote {path}");

    // Acceptance invariants (ISSUE 4): fail loudly.
    let mut failures = Vec::new();
    if !open_ok {
        failures.push(format!(
            "cold open recovered {} of {appends} records",
            open_stats.live
        ));
    }
    if cold.misses != cold.requests {
        failures.push("first pass was not all fresh solves".into());
    }
    if warm_hit_rate < 1.0 || warm.misses > 0 {
        failures.push(format!(
            "warm-boot pass must be hit rate 1.0 with zero fresh solves \
             (got {warm_hit_rate:.3}, {} misses)",
            warm.misses
        ));
    }
    if !failures.is_empty() {
        eprintln!("e12_store FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
