//! E13 bench — deadline-aware anytime solving on the hardness corpus:
//!
//! * **quality-vs-deadline curve**: median span of `Strategy::Race` and
//!   `Strategy::Auto` at a sweep of wall-clock deadlines on n = 512
//!   Griggs–Yeh (Theorem 3) instances — diameter-2, adversarial for exact
//!   search;
//! * **race-vs-single win rate**: fraction of (deadline × instance) cells
//!   where the racing portfolio's harvested span is no worse than the
//!   single-strategy `Auto` dispatch at the same deadline;
//! * **deadline discipline**: every race solve must return a valid
//!   labeling within 2× its deadline (the ISSUE 5 acceptance gate,
//!   asserted for deadlines ≥ 50 ms where the fixed reduction/feature
//!   overhead is small relative to the budget);
//! * **gap-vs-deadline curve**: per-deadline optimality-gap spread of the
//!   race solves — with the root Held–Karp ascent armed, every timed-out
//!   harvest at the gated deadline must certify `gap < 0.10` on at least
//!   an `hk-ascent`-kind bound, and the race must prove ≥ 2 instances
//!   optimal (the pre-ladder baseline proved exactly one, so ≥ 2 means at
//!   least one instance that used to time out now closes).
//!
//! Writes machine-readable results to `BENCH_anytime.json` at the
//! workspace root (gated by `dclab bench-gate` in CI from day one) and
//! exits non-zero if an acceptance invariant fails.
//! `DCLAB_BENCH_QUICK=1` shrinks the sweep for CI.

use std::time::Instant;

use dclab_bench::{hardness_diam2, l21};
use dclab_core::bounds::BoundKind;
use dclab_engine::json::Obj;
use dclab_engine::{solve, Budget, SolveReport, SolveRequest, Strategy};

const N: usize = 512;

/// Deadlines (ms) with the strict 2× wall-clock gate applied. Below this,
/// the non-interruptible fixed overhead (reduction, feature extraction)
/// dominates the budget and the bound is reported but not enforced.
const GATED_DEADLINE_MS: u64 = 50;

fn timed_solve(g: &dclab_graph::Graph, strategy: Strategy, deadline_ms: u64) -> (SolveReport, f64) {
    let req = SolveRequest::new(g.clone(), l21())
        .with_strategy(strategy)
        .with_budget(Budget {
            deadline_ms: Some(deadline_ms),
            ..Budget::default()
        });
    let started = Instant::now();
    let report = solve(&req).expect("anytime solve returns a report, never an error");
    (report, started.elapsed().as_secs_f64() * 1e3)
}

/// Solve with one retry when the wall clock overshoots 2× the deadline
/// (scheduler noise on shared CI runners); keeps the faster attempt.
fn race_solve(g: &dclab_graph::Graph, deadline_ms: u64) -> (SolveReport, f64) {
    let first = timed_solve(g, Strategy::Race, deadline_ms);
    if first.1 <= 2.0 * deadline_ms as f64 {
        return first;
    }
    let second = timed_solve(g, Strategy::Race, deadline_ms);
    if second.1 < first.1 {
        second
    } else {
        first
    }
}

fn median(values: &mut [u64]) -> u64 {
    values.sort_unstable();
    values[values.len() / 2]
}

fn median_f64(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
    values[values.len() / 2]
}

fn main() {
    let quick = std::env::var("DCLAB_BENCH_QUICK").is_ok();
    let deadlines: &[u64] = if quick { &[50] } else { &[5, 20, 50, 200] };
    // Same corpus size in both modes: the gated win rate and median are
    // computed over the gated deadline's cells only, so quick-mode CI
    // output is directly comparable to the committed full-mode baseline.
    let instances = 5;
    let corpus: Vec<dclab_graph::Graph> = (0..instances)
        .map(|i| hardness_diam2(N, 0xE13 + i as u64))
        .collect();

    let mut failures: Vec<String> = Vec::new();
    let mut race_wins = 0usize;
    let mut cells = 0usize;
    let mut gated_race_wins = 0usize;
    let mut gated_cells = 0usize;
    let mut per_deadline = Vec::new();
    let mut headline_race_median = 0u64;
    let mut headline_auto_median = 0u64;
    let mut headline_gap_max = 0.0f64;
    let mut headline_proved = 0u64;

    for &dl in deadlines {
        let mut race_spans = Vec::with_capacity(corpus.len());
        let mut auto_spans = Vec::with_capacity(corpus.len());
        let mut race_wall_max: f64 = 0.0;
        let mut timeouts = 0usize;
        let mut winners: Vec<&'static str> = Vec::new();
        let mut gaps: Vec<f64> = Vec::with_capacity(corpus.len());
        let mut kinds: Vec<&'static str> = Vec::new();
        let mut proved = 0usize;
        for (i, g) in corpus.iter().enumerate() {
            let (race, race_ms) = race_solve(g, dl);
            let (auto, _auto_ms) = timed_solve(g, Strategy::Auto, dl);
            race_wall_max = race_wall_max.max(race_ms);
            if race.stats.timed_out {
                timeouts += 1;
            }
            if race.optimal {
                proved += 1;
            }
            winners.push(race.strategy_used.name());
            kinds.push(race.stats.bound.kind.name());
            let gap = race
                .gap()
                .expect("hardness corpus bounds are positive, gap defined");
            gaps.push(gap);
            if dl == GATED_DEADLINE_MS && race.stats.timed_out {
                // The gap-certification acceptance gate: a timed-out
                // harvest must still carry a Held–Karp-or-better
                // certificate pinning it within 10% of optimal.
                if gap >= 0.10 {
                    failures.push(format!(
                        "instance {i}: timed out at {dl} ms with gap {gap:.4} (>= 0.10)"
                    ));
                }
                if race.stats.bound.kind < BoundKind::HkAscent {
                    failures.push(format!(
                        "instance {i}: timed out at {dl} ms with a weak '{}' bound",
                        race.stats.bound.kind
                    ));
                }
            }
            cells += 1;
            let won = race.solution.span <= auto.solution.span;
            if won {
                race_wins += 1;
            }
            if dl == GATED_DEADLINE_MS {
                gated_cells += 1;
                if won {
                    gated_race_wins += 1;
                }
            }
            if dl >= GATED_DEADLINE_MS && race_ms > 2.0 * dl as f64 {
                failures.push(format!(
                    "instance {i}: race at {dl} ms took {race_ms:.1} ms (> 2× deadline)"
                ));
            }
            race_spans.push(race.solution.span);
            auto_spans.push(auto.solution.span);
        }
        let race_median = median(&mut race_spans);
        let auto_median = median(&mut auto_spans);
        let gap_max = gaps.iter().cloned().fold(0.0f64, f64::max);
        let gap_median = median_f64(&mut gaps);
        if dl >= GATED_DEADLINE_MS && race_median > auto_median {
            failures.push(format!(
                "race median span {race_median} above auto median {auto_median} at {dl} ms"
            ));
        }
        if dl == GATED_DEADLINE_MS {
            // The optimality-closure acceptance gate: the pre-ladder
            // baseline proved exactly one corpus instance at the gated
            // deadline, so ≥ 2 proofs means the root-armed branch and
            // bound closed at least one instance that used to time out.
            if proved < 2 {
                failures.push(format!(
                    "race proved only {proved}/{} instances at {dl} ms (need >= 2)",
                    corpus.len()
                ));
            }
        }
        if dl == GATED_DEADLINE_MS
            || (headline_race_median == 0 && dl == *deadlines.last().unwrap())
        {
            headline_race_median = race_median;
            headline_auto_median = auto_median;
            headline_gap_max = gap_max;
            headline_proved = proved as u64;
        }
        println!(
            "bench e13_anytime/deadline {dl:>4} ms: race median span {race_median:>6} \
             vs auto {auto_median:>6} | gap median {gap_median:.4} max {gap_max:.4} | \
             {proved} proved | race wall max {race_wall_max:>7.1} ms | \
             {timeouts}/{} timed out | winners {winners:?} | bounds {kinds:?}",
            corpus.len()
        );
        per_deadline.push(
            Obj::new()
                .u64("deadline_ms", dl)
                .usize("instances", corpus.len())
                .u64("race_median_span", race_median)
                .u64("auto_median_span", auto_median)
                .f64("race_gap_median", gap_median)
                .f64("race_gap_max", gap_max)
                .usize("race_proved", proved)
                .f64("race_wall_ms_max", race_wall_max)
                .usize("race_timeouts", timeouts)
                .str_array("race_winners", winners.iter().copied())
                .str_array("race_bound_kinds", kinds.iter().copied())
                .finish(),
        );
    }

    let race_win_rate_sweep = race_wins as f64 / cells.max(1) as f64;
    // The *gated* win rate covers only the gated deadline's cells — the
    // one slice both quick and full mode measure identically, so the CI
    // regression gate compares like with like.
    let race_win_rate = gated_race_wins as f64 / gated_cells.max(1) as f64;
    println!(
        "bench e13_anytime/summary: race-vs-single win rate {race_win_rate:.3} \
         at the gated deadline ({race_win_rate_sweep:.3} over all {cells} cells); \
         race median span {headline_race_median} (auto {headline_auto_median})"
    );

    let json = format!(
        "{}\n",
        Obj::new()
            .str("bench", "e13_anytime")
            .bool("quick", quick)
            .usize("n", N)
            .usize("instances", instances)
            .f64("race_win_rate", race_win_rate)
            .f64("race_win_rate_sweep", race_win_rate_sweep)
            .u64("race_median_span", headline_race_median)
            .u64("auto_median_span", headline_auto_median)
            .f64("anytime_gap_at_50ms", headline_gap_max)
            .u64("race_proved_n512", headline_proved)
            .u64("gated_deadline_ms", GATED_DEADLINE_MS)
            .raw("deadlines", &dclab_engine::json::array(per_deadline))
            .finish()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_anytime.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !failures.is_empty() {
        eprintln!("e13_anytime acceptance FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
