//! E8 bench — ablations: candidate-list size and don't-look bits in 2-opt;
//! matching backends (exact DP / blossom / greedy) at the sizes
//! Christofides uses them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dclab_bench::{diam2_graph, l21};
use dclab_core::reduction::reduce_to_path_tsp;
use dclab_tsp::construct::nearest_neighbor;
use dclab_tsp::localsearch::{two_opt, LocalSearchConfig, TourState};
use dclab_tsp::matching::{
    blossom::min_weight_perfect_matching_blossom, exact_dp::min_weight_perfect_matching_dp,
    greedy::greedy_min_weight_matching,
};
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let p = l21();
    let g = diam2_graph(300, 9);
    let reduced = reduce_to_path_tsp(&g, &p).unwrap();
    let ext = reduced.tsp.with_dummy_city();

    let mut group = c.benchmark_group("e8_two_opt_neighbor_k");
    group.sample_size(10);
    for k in [4usize, 10, 24] {
        let nl = ext.candidate_lists(k);
        group.bench_with_input(BenchmarkId::from_parameter(k), &nl, |b, nl| {
            b.iter(|| {
                let mut st = TourState::new(nearest_neighbor(&ext, 0));
                two_opt(
                    &ext,
                    &mut st,
                    nl,
                    &LocalSearchConfig {
                        neighbor_k: 0, // list already built
                        ..LocalSearchConfig::default()
                    },
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e8_two_opt_dont_look");
    group.sample_size(10);
    let nl = ext.candidate_lists(10);
    for dlb in [true, false] {
        group.bench_with_input(BenchmarkId::from_parameter(dlb), &dlb, |b, &dlb| {
            b.iter(|| {
                let mut st = TourState::new(nearest_neighbor(&ext, 0));
                two_opt(
                    &ext,
                    &mut st,
                    &nl,
                    &LocalSearchConfig {
                        dont_look: dlb,
                        ..LocalSearchConfig::default()
                    },
                )
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("e8_matching_backends");
    group.sample_size(10);
    let w = |a: usize, b: usize| {
        let (a, b) = (a.min(b) as u64, a.max(b) as u64);
        (a * 7919 + b * 104729) % 100 + 1
    };
    group.bench_function("exact_dp_k16", |bch| {
        bch.iter(|| min_weight_perfect_matching_dp(black_box(16), &w))
    });
    group.bench_function("blossom_k16", |bch| {
        bch.iter(|| min_weight_perfect_matching_blossom(black_box(16), &w))
    });
    group.bench_function("blossom_k64", |bch| {
        bch.iter(|| min_weight_perfect_matching_blossom(black_box(64), &w))
    });
    group.bench_function("greedy_k64", |bch| {
        bch.iter(|| greedy_min_weight_matching(black_box(64), &w))
    });
    group.bench_function("greedy_k512", |bch| {
        bch.iter(|| greedy_min_weight_matching(black_box(512), &w))
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
