//! E10 bench — the solve service end to end: cold vs. warm latency over a
//! live HTTP server, exercising the canonical-instance report cache.
//!
//! Replays the loadgen corpora against an in-process `dclab-serve` server
//! on an ephemeral port:
//!
//! * **exact corpus** (Held–Karp-range instances, `strategy=exact`): pass 1
//!   is all cache misses (real solves), pass 2 all hits. The interesting
//!   number is the warm-p50 speedup — the whole point of the cache.
//! * **mixed corpus** (several strategies, isomorphic relabelings,
//!   adversarial guard 422s): the warm pass must run ≥ 90 % hits with
//!   bit-identical report bodies.
//!
//! Writes machine-readable results to `BENCH_serve.json` at the workspace
//! root and exits non-zero if the acceptance invariants fail (warm p50 at
//! least 10× faster than cold on the exact corpus; warm hit rate ≥ 0.9).

use dclab_engine::json::{array, Obj};
use dclab_serve::loadgen::{exact_corpus, mixed_corpus, run_pass, PassStats};
use dclab_serve::{start, ServeConfig};

fn pass_json(name: &str, stats: &PassStats) -> String {
    Obj::new()
        .str("pass", name)
        .raw("stats", &stats.to_json())
        .finish()
}

fn main() {
    let handle = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        cache_mb: 64,
        queue_cap: 0,
        ..Default::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr();

    // --- Exact-strategy corpus: cold (all solves) vs. warm (all hits). ---
    let exact = exact_corpus(2024, 10);
    let cold = run_pass(addr, &exact).expect("cold exact pass");
    let warm = run_pass(addr, &exact).expect("warm exact pass");
    let (cold_p50, warm_p50) = (cold.percentile_us(0.5), warm.percentile_us(0.5));
    let speedup = cold_p50 as f64 / warm_p50.max(1) as f64;
    println!(
        "bench e10_serve/exact: cold p50 {cold_p50} us, warm p50 {warm_p50} us, \
         speedup {speedup:.1}x (hits {}/{})",
        warm.hits, warm.requests
    );

    // --- Mixed corpus: warm hit rate and bit-identical reports. ---
    let mixed = mixed_corpus(2024, 16);
    let mixed_cold = run_pass(addr, &mixed).expect("cold mixed pass");
    let mixed_warm = run_pass(addr, &mixed).expect("warm mixed pass");
    // Gated tail latency (bench-gate `serve_p99_us`): the cold mixed pass
    // exercises real solves across strategies, so its p99 notices when
    // per-request work (tracing, cache, routing) bloats the tail.
    let serve_p99_us = mixed_cold.percentile_us(0.99);
    println!(
        "bench e10_serve/mixed: warm hit rate {:.3}, cold p99 {serve_p99_us} us, unexpected {}",
        mixed_warm.hit_rate(),
        mixed_cold.unexpected + mixed_warm.unexpected
    );

    let passes = array(vec![
        pass_json("exact_cold", &cold),
        pass_json("exact_warm", &warm),
        pass_json("mixed_cold", &mixed_cold),
        pass_json("mixed_warm", &mixed_warm),
    ]);
    let json = format!(
        "{}\n",
        Obj::new()
            .str("bench", "e10_serve")
            .u64("exact_cold_p50_us", cold_p50)
            .u64("exact_warm_p50_us", warm_p50)
            .f64("exact_warm_speedup_p50", speedup)
            .f64("mixed_warm_hit_rate", mixed_warm.hit_rate())
            .u64("serve_p99_us", serve_p99_us)
            .raw("passes", &passes)
            .finish()
    );
    // Land at the workspace root regardless of the bench CWD.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &json).expect("write BENCH_serve.json");
    println!("wrote {path}");

    handle.shutdown();
    handle.join();

    // Acceptance invariants (ISSUE 2): fail loudly rather than reporting a
    // regressed cache as a passing bench.
    let mut failures = Vec::new();
    if speedup < 10.0 {
        failures.push(format!("warm p50 speedup {speedup:.1}x < 10x"));
    }
    if warm.hit_rate() < 1.0 {
        failures.push(format!(
            "exact warm pass hit rate {:.3} < 1",
            warm.hit_rate()
        ));
    }
    if mixed_warm.hit_rate() < 0.9 {
        failures.push(format!(
            "mixed warm pass hit rate {:.3} < 0.9",
            mixed_warm.hit_rate()
        ));
    }
    for ((name, cold_body), (_, warm_body)) in cold.bodies.iter().zip(&warm.bodies) {
        if cold_body != warm_body {
            failures.push(format!("report for '{name}' differs between passes"));
        }
    }
    if cold.unexpected + warm.unexpected + mixed_cold.unexpected + mixed_warm.unexpected > 0 {
        failures.push("unexpected HTTP statuses".into());
    }
    if !failures.is_empty() {
        eprintln!("e10_serve FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
